//! `cap` — command-line front end to the cost-accuracy toolkit.
//!
//! ```sh
//! cap characterize caffenet            # layer shares, prune headroom, saturation
//! cap sweep caffenet conv2             # single-layer sensitivity sweep
//! cap spec caffenet --top5 0.70        # min-time degree of pruning for a floor
//! cap explore --w 1000000 --deadline-h 10 --budget 300
//! cap allocate --w 1000000 --deadline-h 10 --budget 300
//! cap serve --load 2 --workers 2 --seed 42   # multi-tenant serving demo
//! cap serve --metrics-out metrics.prom       # + Prometheus exposition
//! CAP_OBS_PROM_ADDR=127.0.0.1:9464 cap serve --duration 5  # live scrape endpoint
//! ```

use cloud_cost_accuracy::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("spec") => cmd_spec(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("allocate") => cmd_allocate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!("usage: cap <characterize|sweep|spec|explore|allocate|serve> [args]");
            eprintln!("  characterize <caffenet|googlenet>");
            eprintln!("  sweep <caffenet|googlenet> <layer>");
            eprintln!("  spec <caffenet|googlenet> --top5 <floor> | --top1 <floor>");
            eprintln!("  explore  [--w N] [--deadline-h H] [--budget USD]");
            eprintln!("  allocate [--w N] [--deadline-h H] [--budget USD]");
            eprintln!(
                "  serve    [--load X] [--workers N] [--seed S] [--duration S] [--metrics-out FILE]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn profile_by_name(name: Option<&String>) -> AppProfile {
    match name.map(String::as_str) {
        Some("googlenet") => googlenet_profile(),
        _ => caffenet_profile(),
    }
}

fn flag(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn flag_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_characterize(args: &[String]) -> i32 {
    let profile = profile_by_name(args.first());
    println!("{} characterization", profile.name);
    println!(
        "  base: single inference {:.3} s, batched {:.2} min / 50k images, top1 {:.1}%, top5 {:.1}%",
        profile.base_single_latency_s,
        profile.base_batched_s_per_image * 50_000.0 / 60.0,
        profile.base_top1 * 100.0,
        profile.base_top5 * 100.0
    );
    println!("  single-inference layer shares:");
    for l in &profile.layers {
        if l.single_time_share >= 0.02 {
            println!("    {:<20} {:>5.1}%", l.name, l.single_time_share * 100.0);
        }
    }
    let spec = profile.uniform_spec(0.9);
    println!(
        "  uniform 90% pruning: single inference {:.3} s (headroom exists)",
        profile.single_latency_s(&spec)
    );
    0
}

fn cmd_sweep(args: &[String]) -> i32 {
    let profile = profile_by_name(args.first());
    let Some(layer) = args.get(1) else {
        eprintln!("sweep: layer name required; prunable layers:");
        for l in profile.conv_layer_names() {
            eprintln!("  {l}");
        }
        return 2;
    };
    if profile.layer(layer).is_none() {
        eprintln!("sweep: unknown layer {layer}");
        return 2;
    }
    let grid: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
    let sweep = cap_pruning::sensitivity::sweep_layer(&profile, layer, &grid);
    println!("{} / {layer}", profile.name);
    println!(
        "{:>7} {:>12} {:>8} {:>8}",
        "ratio", "time factor", "top1", "top5"
    );
    for p in &sweep.points {
        println!(
            "{:>6.0}% {:>12.3} {:>7.1}% {:>7.1}%",
            p.ratio * 100.0,
            p.time_factor,
            p.top1 * 100.0,
            p.top5 * 100.0
        );
    }
    if let Some(ss) = sweet_spot(&sweep.top5_curve(), &sweep.time_curve(), 1e-9) {
        println!(
            "sweet spot: up to {:.0}% at unchanged accuracy (time factor {:.3})",
            ss.last_ratio * 100.0,
            ss.time_factor_at_last
        );
    }
    0
}

fn cmd_spec(args: &[String]) -> i32 {
    let profile = profile_by_name(args.first());
    let floor = if let Some(f) = flag(args, "--top5") {
        cap_core::Floor::Top5(f)
    } else if let Some(f) = flag(args, "--top1") {
        cap_core::Floor::Top1(f)
    } else {
        eprintln!("spec: provide --top5 <floor> or --top1 <floor>");
        return 2;
    };
    match cap_core::min_time_spec(&profile, floor) {
        Some(r) => {
            println!(
                "min-time degree of pruning for {}: {}",
                profile.name,
                r.spec.label()
            );
            println!(
                "  time factor {:.3}, top1 {:.1}%, top5 {:.1}% ({} evaluations)",
                r.time_factor,
                r.top1 * 100.0,
                r.top5 * 100.0,
                r.evaluations
            );
            0
        }
        None => {
            eprintln!("spec: floor unreachable even unpruned");
            1
        }
    }
}

fn explore_space(w: u64) -> Vec<EvaluatedConfig> {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    evaluate_grid(&versions, &configs, w, &[48, 160, 512])
}

fn cmd_explore(args: &[String]) -> i32 {
    let w = flag(args, "--w").unwrap_or(1_000_000.0) as u64;
    let deadline_s = flag(args, "--deadline-h").unwrap_or(10.0) * 3600.0;
    let budget = flag(args, "--budget").unwrap_or(300.0);
    let evals = explore_space(w);
    let feasible: Vec<EvaluatedConfig> = evals
        .iter()
        .filter(|e| e.time_s <= deadline_s && e.cost_usd <= budget)
        .cloned()
        .collect();
    println!(
        "{} candidates, {} feasible under {:.1} h / ${budget}",
        evals.len(),
        feasible.len(),
        deadline_s / 3600.0
    );
    for (metric, name) in [
        (AccuracyMetric::Top1, "top1"),
        (AccuracyMetric::Top5, "top5"),
    ] {
        let front = frontier_indices(&feasible, metric, Objective::Cost);
        println!(
            "\n{name} cost-accuracy frontier ({} points, top 8 shown):",
            front.len()
        );
        for &i in front.iter().take(8) {
            let e = &feasible[i];
            println!(
                "  acc {:>5.1}%  ${:>7.2}  {:>5.2} h  {} on {}",
                e.accuracy(metric) * 100.0,
                e.cost_usd,
                e.time_s / 3600.0,
                e.version_label,
                e.config_label
            );
        }
    }
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    use cloud_cost_accuracy::serve::fleet;

    let load = flag(args, "--load").unwrap_or(1.0).max(0.01);
    let workers = flag(args, "--workers").unwrap_or(2.0).max(1.0) as usize;
    let seed = flag(args, "--seed").unwrap_or(42.0) as u64;
    let duration_s = flag(args, "--duration").unwrap_or(0.5).clamp(0.01, 10.0);
    let metrics_out = flag_str(args, "--metrics-out");

    // Live scrape endpoint: serve the registry exposition over plain
    // HTTP while the run executes. Opt-in via env so the default CLI
    // path never opens a socket.
    if let Ok(addr) = std::env::var("CAP_OBS_PROM_ADDR") {
        match cap_obs::spawn_exporter(&addr) {
            Ok(bound) => eprintln!("prometheus exporter listening on http://{bound}/metrics"),
            Err(e) => {
                eprintln!("serve: CAP_OBS_PROM_ADDR {addr}: {e}");
                return 1;
            }
        }
    }

    let tenants = vec![
        fleet::pruned_tenant("dense", 1, 0.0),
        fleet::pruned_tenant("pruned-60", 2, 0.6),
    ];
    let mut router = Router::new(
        RouterConfig {
            workers,
            collect_outputs: false,
            ..RouterConfig::default()
        },
        tenants,
    );
    let trace = generate_trace(
        seed,
        &[
            ArrivalPattern::Poisson {
                rate_per_s: 800.0 * load,
            },
            ArrivalPattern::Burst {
                base_per_s: 300.0 * load,
                burst_per_s: 3_000.0 * load,
                burst_every_s: 0.25,
                burst_len_s: 0.05,
            },
        ],
        duration_s,
    );
    let pool = fleet::demo_images(8);
    let report = match router.serve_trace(&trace, &[pool.clone(), pool]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve: {e}");
            return 1;
        }
    };

    println!(
        "serving demo: 2 tenants, {workers} worker(s), load x{load}, seed {seed}, {duration_s} virtual s"
    );
    println!(
        "{:<10} {:>8} {:>8} {:>6} {:>8} {:>7} {:>9} {:>9}",
        "tenant", "offered", "admit", "shed", "batches", "mean b", "p50 ms", "p99 ms"
    );
    for t in &report.tenants {
        println!(
            "{:<10} {:>8} {:>8} {:>6} {:>8} {:>7.2} {:>9.2} {:>9.2}",
            t.name,
            t.offered,
            t.admitted,
            t.shed,
            t.batches,
            t.mean_batch,
            t.p50_us as f64 / 1e3,
            t.p99_us as f64 / 1e3
        );
    }
    let p2 = by_name("p2.xlarge").expect("catalog");
    println!(
        "aggregate: {:.0} inf/s; cost/1k ${:.6} on {} (${}/h)",
        report.throughput_per_s,
        report.cost_per_1k_usd(p2.price_per_hour),
        p2.name,
        p2.price_per_hour
    );

    // Prometheus exposition of the finished run: the registry families
    // plus the per-tenant serving section (admission counters, latency
    // quantiles, error-budget standing). The file passes the strict
    // cap_obs checker — CI smoke-validates it via CAP_PROM_VALIDATE_FILE.
    if let Some(path) = metrics_out {
        let mut w = cap_obs::PromWriter::new();
        cap_obs::append_registry(&mut w, &cap_obs::metrics().snapshot());
        cloud_cost_accuracy::serve::append_serve_prometheus(&mut w, &report);
        let text = w.finish();
        if let Err(e) = cap_obs::validate_prometheus(&text) {
            eprintln!("serve: generated exposition failed validation: {e}");
            return 1;
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("serve: failed writing {path}: {e}");
            return 1;
        }
        println!("wrote {path}");
    }
    0
}

fn cmd_allocate(args: &[String]) -> i32 {
    let w = flag(args, "--w").unwrap_or(1_000_000.0) as u64;
    let deadline_s = flag(args, "--deadline-h").unwrap_or(10.0) * 3600.0;
    let budget = flag(args, "--budget").unwrap_or(300.0);
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let pool: Vec<InstanceType> = catalog()
        .into_iter()
        .flat_map(|i| std::iter::repeat_n(i, 3))
        .collect();
    match allocate(
        &versions,
        &pool,
        &AllocationRequest {
            w,
            batch: 512,
            deadline_s,
            budget_usd: budget,
            metric: AccuracyMetric::Top1,
        },
    ) {
        Some(r) => {
            let v = &versions[r.version_idx];
            println!("allocation: {} on {}", v.label(), r.config.label());
            println!(
                "  top1 {:.1}%, top5 {:.1}%, time {:.2} h, cost ${:.2} ({} evaluations)",
                v.top1 * 100.0,
                v.top5 * 100.0,
                r.time_s / 3600.0,
                r.cost_usd,
                r.evaluations
            );
            0
        }
        None => {
            eprintln!(
                "no feasible allocation under {:.1} h / ${budget}",
                deadline_s / 3600.0
            );
            1
        }
    }
}
