//! # cloud-cost-accuracy
//!
//! Reproduction of *"Characterizing the Cost-Accuracy Performance of
//! Cloud Applications"* (Rathnayake, Ramapantulu, Teo — ICPP Workshops
//! 2020): a library for quantifying and optimizing the three-way
//! trade-off between **cost**, **accuracy** and **execution time** of
//! cloud applications, with CNN inference under pruning as the worked
//! application.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tensor`] ([`cap_tensor`]) — dense/sparse linear algebra, im2col
//!   convolution, pooling.
//! * [`cnn`] ([`cap_cnn`]) — Caffe-like inference framework, Caffenet,
//!   Googlenet, trainable TinyNet.
//! * [`pruning`] ([`cap_pruning`]) — pruning algorithms, prune specs,
//!   sweet-spot detection, calibrated profiles.
//! * [`cloud`] ([`cap_cloud`]) — EC2 catalog (Table 3), GPU saturation,
//!   pricing, execution simulation (Eqs. 1–4).
//! * [`core`] ([`cap_core`]) — TAR/CAR metrics, Pareto frontiers,
//!   Algorithm 1, exhaustive baseline, characterization.
//! * [`data`] ([`cap_data`]) — synthetic labeled image datasets.
//! * [`serve`] ([`cap_serve`]) — online serving: multi-tenant queues,
//!   deadline-driven dynamic batching against latency SLOs, admission
//!   control, deterministic open-loop load generation.
//!
//! ## Quickstart
//!
//! ```
//! use cloud_cost_accuracy::prelude::*;
//!
//! // 1. A degree of pruning: conv1 and conv2 at their sweet spots.
//! let profile = caffenet_profile();
//! let spec = PruneSpec::single("conv1", 0.3).with("conv2", 0.5);
//! let version = AppVersion::from_profile(&profile, spec);
//!
//! // 2. Run 50 000 inferences on one p2.xlarge.
//! let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
//! let est = simulate(&cfg, &version.exec, 50_000, 512, Distribution::EqualSplit).unwrap();
//!
//! // 3. Quantify with the paper's metrics.
//! let tar_value = tar(est.time_s, version.top5);
//! let car_value = car(est.cost_usd, version.top5);
//! assert!(est.time_s < 19.0 * 60.0); // faster than unpruned
//! assert!(tar_value > 0.0 && car_value > 0.0);
//! ```

pub use cap_cloud as cloud;
pub use cap_cnn as cnn;
pub use cap_core as core;
pub use cap_data as data;
pub use cap_pruning as pruning;
pub use cap_serve as serve;
pub use cap_tensor as tensor;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use cap_cloud::{
        by_name, catalog, cost_usd, enumerate_configs, simulate, simulate_with, AppExecModel,
        BatchModel, Distribution, EfficiencyCurve, GpuKind, GpuScaling, InstanceType,
        MeasurementHarness, ResourceConfig,
    };
    pub use cap_cnn::{
        evaluate_topk,
        models::{caffenet, googlenet, TinyNet, WeightInit},
        run_batched, strong_scaling,
        train::Sgd,
        AccuracyReport, InferenceReport, Layer, LayerKind, Network, ParallelEngine,
    };
    pub use cap_core::{
        allocate, caffenet_version_grid, car, evaluate_all, evaluate_grid, evaluate_grid_with,
        exhaustive_search, feasible_by_budget, feasible_by_deadline, frontier_indices,
        pareto_front, pareto_indices, savings_at_best_accuracy, tar, AccuracyMetric,
        AllocationRequest, AllocationResult, AppVersion, EvaluatedConfig, ExhaustiveResult,
        Objective, ParetoFrontier, ParetoPoint,
    };
    pub use cap_data::{SyntheticImageNet, Workload};
    pub use cap_pruning::{
        apply_to_network, caffenet_profile, googlenet_profile, prune_filters_l1, prune_magnitude,
        prune_structured, sweet_spot, AppProfile, PruneAlgorithm, PruneSpec, SweetSpot,
    };
    pub use cap_serve::{
        generate_trace, ArrivalEvent, ArrivalPattern, Router, RouterConfig, ServeReport,
        ServiceModel, TenantConfig,
    };
    pub use cap_tensor::{CsrMatrix, Matrix, Tensor4};
}
