//! Offline stand-in for `rand` 0.8.
//!
//! Exposes the subset this workspace uses: `Rng::gen_range` over
//! (inclusive and half-open) integer and float ranges, plus
//! `SeedableRng::seed_from_u64`. Implementations live in the RNG crates
//! (see the `rand_chacha` shim); this crate only defines the traits and
//! the range-sampling glue.
//!
//! The float path uses the standard 53-bit (f64) / 24-bit (f32) mantissa
//! construction, so values are uniform in `[0, 1)` and range sampling is
//! a scale-and-shift — the same approach as rand's `UniformFloat`,
//! without the exactness refinements this workspace does not rely on.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait (the subset of `rand::RngCore` + `rand::Rng` used here).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from `range` (half-open or inclusive, ints or floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `[0, 1)` float (rand's `gen::<f64>()` for the types used).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 random mantissa bits / 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding trait (the `seed_from_u64` entry point used here).
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform-sampling rule (rand's `SampleUniform`).
///
/// `SampleRange` is implemented once, generically, over this trait —
/// mirroring upstream's structure. That single blanket impl matters for
/// type inference: with per-type `SampleRange` impls an unsuffixed float
/// literal in `gen_range(-1.0..1.0) * some_f32` would fall back to `f64`
/// before trait selection and fail to compile.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range that can produce uniform samples of `T` (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = rng.gen_f64() as $t;
                lo + u * (hi - lo)
            }

            // Uniform over [lo, hi]: scale a [0,1) draw onto the closed
            // interval; the endpoint bias is one ulp and irrelevant here.
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = rng.gen_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

macro_rules! impl_uint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }

            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_uint_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }

            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64 + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Rng for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = Counter(11);
        for _ in 0..1000 {
            let v: f64 = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w: f32 = r.gen_range(0.25f32..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }
}
