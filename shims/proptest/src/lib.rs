//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: range strategies,
//! `prop_map`, tuple strategies, `collection::vec`, the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** On failure the test panics with the case number;
//!   cases are deterministic per test (seeded from the test's module
//!   path + name), so failures reproduce exactly on re-run.
//! - Sampling is plain uniform (no bias toward edge cases).

use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (ChaCha8 seeded from the test name).
pub struct TestRng(rand_chacha::ChaCha8Rng);

impl TestRng {
    /// Derive a generator from a stable string key (FNV-1a hash).
    pub fn for_test(key: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(h))
    }
}

/// A generator of test inputs (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                ((self.start as $wide).wrapping_add((rng.0.next_u64() % span) as $wide)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.0.next_u64() as $t;
                }
                ((lo as $wide).wrapping_add((rng.0.next_u64() % (span + 1)) as $wide)) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.0.gen_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.0.gen_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Draws `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample_value(&self, rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification: fixed or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// An assertion failed; the test panics.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (`cases` = number of passing cases required).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim runs fewer because the
        // suite executes on a single CPU with no shrinking to amortize.
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(20).max(1000),
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (passing case #{passed}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_sample_in_bounds");
        for _ in 0..500 {
            let u = (3usize..9).sample_value(&mut rng);
            assert!((3..9).contains(&u));
            let f = (-1.0f64..1.0).sample_value(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let b = (2u8..16).sample_value(&mut rng);
            assert!((2..16).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::for_test("vec_strategy_lengths");
        let fixed = collection::vec(0.0f64..1.0, 5);
        assert_eq!(fixed.sample_value(&mut rng).len(), 5);
        let ranged = collection::vec(0u32..10, 1..20);
        for _ in 0..100 {
            let v = ranged.sample_value(&mut rng);
            assert!((1..20).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        let s = 0u64..1_000_000;
        assert_eq!(s.sample_value(&mut a), s.sample_value(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 1usize..50, v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)), "bad element in {v:?}");
        }

        #[test]
        fn mapped_strategy(y in (0u32..10).prop_map(|n| n * 2)) {
            prop_assert!(y % 2 == 0);
            prop_assert!(y < 20);
        }
    }
}
