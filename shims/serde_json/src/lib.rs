//! Offline stand-in for `serde_json`: renders and parses the `serde`
//! shim's [`Value`] tree as JSON text.
//!
//! Covers the workspace's usage: `to_string`, `to_string_pretty`,
//! `from_str`, and the `Error` type. Numbers without `.`/`e` parse as
//! integers; floats print via Rust's shortest-round-trip `{:?}` so
//! `2.0` keeps its decimal point.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is shortest-round-trip and keeps a `.0` on integral
                // values, so the reader can still tell it was a float.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pair handling for completeness.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.eat_literal("\\u")?;
                            let lo = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: count continuation bytes.
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad int `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad int `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_value_tree() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("conv1".to_string())),
            ("macs".to_string(), Value::UInt(105_415_200)),
            ("scale".to_string(), Value::Float(0.5)),
            (
                "shape".to_string(),
                Value::Seq(vec![Value::UInt(3), Value::UInt(227), Value::UInt(227)]),
            ),
            ("sparse".to_string(), Value::Bool(false)),
            ("note".to_string(), Value::Null),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn string_escapes() {
        let v = "a\"b\\c\nd\te\u{1F980}".to_string();
        let s = to_string(&v).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escape_parsing() {
        let back: String = from_str(r#""A🦀""#).unwrap();
        assert_eq!(back, "A\u{1F980}");
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Seq(vec![Value::UInt(1), Value::UInt(2)]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
