//! Offline stand-in for `serde` built around an explicit value tree.
//!
//! Instead of serde's zero-copy visitor architecture, this shim models
//! serialization as conversion to and from a [`Value`] tree — the same
//! data model JSON uses. `Serialize::to_value` and
//! `Deserialize::from_value` replace the `Serializer`/`Deserializer`
//! traits; the `serde_json` shim renders/parses the tree. Derive macros
//! (re-exported from the `serde_derive` shim) generate field-by-field
//! conversions matching serde's default representations: structs as maps,
//! one-field tuple structs as transparent newtypes, enums externally
//! tagged.
//!
//! Numeric deserialization is deliberately lenient (any of Int/UInt/Float
//! accepted with casting) because JSON round-trips erase the distinction
//! for integral floats.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order preserved).
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------- derive helpers

/// Look up a struct field in a `Value::Map` (derive-generated code).
pub fn map_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val)
            .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
        other => Err(DeError::new(format!(
            "expected map with field `{name}`, got {other:?}"
        ))),
    }
}

/// Index into a `Value::Seq` (derive-generated tuple-struct code).
pub fn seq_item(v: &Value, idx: usize) -> Result<&Value, DeError> {
    match v {
        Value::Seq(items) => items
            .get(idx)
            .ok_or_else(|| DeError::new(format!("sequence too short: no index {idx}"))),
        other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
    }
}

/// Split an externally-tagged enum value into `(variant_name, payload)`.
/// Unit variants arrive as `Str(name)` (payload `None`); data variants as
/// a single-entry map `{name: payload}`.
pub fn enum_parts(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(DeError::new(format!(
            "expected enum (string or 1-entry map), got {other:?}"
        ))),
    }
}

/// Unwrap the payload of a data-carrying enum variant.
pub fn variant_payload<'a>(
    payload: Option<&'a Value>,
    variant: &str,
) -> Result<&'a Value, DeError> {
    payload.ok_or_else(|| DeError::new(format!("variant `{variant}` expects a payload")))
}

// ------------------------------------------------------- primitive impls

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::new(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::new(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------- container impls

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output, mirroring what serde_json does with
        // its `preserve_order` feature off... which it does not; but
        // deterministic output is strictly more useful for tests.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(seq_item(v, $idx)?)?,)+))
            }
        }
    )+};
}

impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// serde's default `Duration` representation: `{"secs": u64, "nanos": u32}`.
impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(map_field(v, "secs")?)?;
        let nanos = u32::from_value(map_field(v, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&Value::Int(-7)).unwrap(), -7);
        assert_eq!(f64::from_value(&Value::Float(1.5)).unwrap(), 1.5);
        // Integral floats parsed back as ints are accepted.
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert_eq!(String::from_value(&Value::Str("x".into())).unwrap(), "x");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64, "s".to_string());
        assert_eq!(
            <(usize, f64, String)>::from_value(&t.to_value()).unwrap(),
            t
        );
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&none.to_value()).unwrap(), None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn duration_matches_serde_shape() {
        let d = Duration::new(3, 500);
        let v = d.to_value();
        assert_eq!(map_field(&v, "secs").unwrap(), &Value::UInt(3));
        assert_eq!(Duration::from_value(&v).unwrap(), d);
    }

    #[test]
    fn enum_parts_shapes() {
        let unit = Value::Str("Relu".into());
        assert_eq!(enum_parts(&unit).unwrap(), ("Relu", None));
        let data = Value::Map(vec![("Conv".to_string(), Value::UInt(3))]);
        let (tag, payload) = enum_parts(&data).unwrap();
        assert_eq!(tag, "Conv");
        assert_eq!(payload, Some(&Value::UInt(3)));
    }
}
