//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! The block function is the real ChaCha quarter-round construction
//! (Bernstein), keyed from a 64-bit seed the same simple way everywhere in
//! this workspace: the seed fills the key words. Streams are therefore
//! deterministic, high-quality and platform-independent — the properties
//! the workspace's datasets and initializers rely on — though the exact
//! values differ from the upstream `rand_chacha` crate (which seeds via
//! SplitMix and reads words in a different order). Nothing in the repo
//! asserts upstream-exact values, only per-seed determinism.

use rand::{Rng, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let lo = seed as u32;
        let hi = (seed >> 32) as u32;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        // Key: the seed words, lightly diffused so nearby seeds diverge.
        for (i, k) in state[4..12].iter_mut().enumerate() {
            let x = (lo ^ hi.rotate_left(i as u32 * 7))
                .wrapping_add(0x9e37_79b9u32.wrapping_mul(i as u32 + 1));
            *k = x ^ lo.rotate_left(i as u32 * 5) ^ hi;
        }
        let mut rng = Self {
            state,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl Rng for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_uniformish() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
