//! Offline stand-in for `criterion`.
//!
//! Same bench-authoring API (`criterion_group!`, `criterion_main!`,
//! `bench_function`, `benchmark_group`, `bench_with_input`, `iter`,
//! `iter_batched`), much simpler engine: warm up briefly, pick an
//! iteration count that makes each sample ≳1 ms, time `sample_size`
//! samples with `Instant`, and report min/median/mean per-iteration
//! times on stdout. Every result is also appended as a JSON line to
//! `target/criterion-shim.jsonl` (override with `CRITERION_SHIM_OUT`)
//! so tooling can collect numbers without scraping stdout.
//!
//! No statistical regression analysis, no HTML reports, no outlier
//! rejection — medians on a quiet machine are adequate for the
//! before/after comparisons this workspace records.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint for `iter_batched` (accepted, not acted on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier `group_name/param` for parameterized benches.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder-style sample-count override (criterion's default is 100;
    /// this shim defaults lower to keep single-CPU runs quick).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Criterion's CLI entry point — a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into_bench_id(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and `BenchmarkId` where criterion does.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Passed to the closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration sample durations, filled by `iter`/`iter_batched`.
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        std_black_box(routine());
        let estimate = t0.elapsed().max(Duration::from_nanos(1));

        let iters = iters_per_sample(estimate);
        let samples = budgeted_samples(self.sample_size, estimate, iters);
        self.samples_ns.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let dt = start.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed region, once per iteration.
        let input = setup();
        let t0 = Instant::now();
        std_black_box(routine(input));
        let estimate = t0.elapsed().max(Duration::from_nanos(1));

        let iters = iters_per_sample(estimate);
        let samples = budgeted_samples(self.sample_size, estimate, iters);
        self.samples_ns.clear();
        for _ in 0..samples {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std_black_box(routine(input));
                total += start.elapsed();
            }
            self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Enough iterations that one sample is ≳1 ms (caps timer noise).
fn iters_per_sample(estimate: Duration) -> u64 {
    let est_ns = estimate.as_nanos().max(1) as u64;
    (1_000_000 / est_ns).clamp(1, 1_000_000)
}

/// Cap total wall time per bench at ~10 s so slow model-level benches
/// (single-CPU full forwards) stay tractable; always >= 3 samples.
fn budgeted_samples(requested: usize, estimate: Duration, iters: u64) -> usize {
    let per_sample_ns = (estimate.as_nanos() as u64).saturating_mul(iters).max(1);
    let fit = (10_000_000_000u64 / per_sample_ns) as usize;
    requested.min(fit.max(3))
}

fn run_bench<F>(group: Option<&str>, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{full_id:<56} (no samples)");
        return;
    }
    let mut sorted = b.samples_ns.clone();
    sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{full_id:<56} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len()
    );
    append_jsonl(&full_id, min, median, mean, sorted.len());
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Append a machine-readable record; failures are silently ignored
/// (benches must not fail because a results file is unwritable).
fn append_jsonl(id: &str, min: f64, median: f64, mean: f64, samples: usize) {
    let path = std::env::var("CRITERION_SHIM_OUT")
        .unwrap_or_else(|_| "target/criterion-shim.jsonl".to_string());
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{samples}}}\n"
    );
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn iters_scale_with_estimate() {
        assert_eq!(iters_per_sample(Duration::from_millis(5)), 1);
        assert!(iters_per_sample(Duration::from_nanos(100)) >= 1_000);
    }
}
