//! Derive macros for the offline `serde` shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; the input `TokenStream` is parsed by hand. That is tractable
//! because the shim only needs to cover the shapes this workspace derives
//! on: non-generic structs (named or tuple fields) and non-generic enums
//! whose variants are unit, tuple, or struct-like. Anything else panics at
//! compile time with a clear message rather than miscompiling.
//!
//! Generated code targets the shim's value-tree model: `Serialize::to_value`
//! builds a `serde::Value`, `Deserialize::from_value` reads one back. JSON
//! encoding lives in the `serde_json` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (or tuple index) — types are never needed
/// because the generated code is fully type-inferred.
struct Field {
    name: String,
}

enum Body {
    /// `struct S;`
    Unit,
    /// `struct S { a: T, b: U }`
    Named(Vec<Field>),
    /// `struct S(T, U);` — field count only.
    Tuple(usize),
}

struct Variant {
    name: String,
    body: Body,
}

enum Parsed {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Parsed::Struct { name, body } => gen_struct_ser(name, body),
        Parsed::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Parsed::Struct { name, body } => gen_struct_de(name, body),
        Parsed::Enum { name, variants } => gen_enum_de(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Parsed {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Parsed::Struct { name, body }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Parsed::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Parse `a: T, b: U, ...` returning the field names. Commas inside
/// angle brackets (`BTreeMap<String, f64>`) are not separators; groups
/// (`(usize, usize)`) arrive as single token trees so need no handling.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field_name) = tt else {
            panic!("serde_derive: expected field name, got {tt:?}");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name: field_name.to_string(),
        });
    }
    fields
}

/// Count tuple-struct/variant fields: top-level commas + 1.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in stream {
        saw_any = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if !saw_any {
        0
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(vname) = tt else {
            panic!("serde_derive: expected variant name, got {tt:?}");
        };
        let body = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Body::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Body::Tuple(n)
            }
            _ => Body::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
        variants.push(Variant {
            name: vname.to_string(),
            body,
        });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_struct_ser(name: &str, body: &Body) -> String {
    let expr = match body {
        Body::Unit => "serde::Value::Null".to_string(),
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {expr} }}\n}}\n"
    )
}

fn gen_struct_de(name: &str, body: &Body) -> String {
    let expr = match body {
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: serde::Deserialize::from_value(serde::map_field(v, \"{0}\")?)?",
                        f.name
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(serde::seq_item(v, {i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{ {expr} }}\n}}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.body {
                Body::Unit => format!(
                    "{name}::{vn} => serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                Body::Tuple(1) => format!(
                    "{name}::{vn}(x0) => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Serialize::to_value(x0))]),"
                ),
                Body::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(x{i})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Value::Seq(::std::vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Body::Named(fields) => {
                    let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{0}\"), serde::Serialize::to_value({0}))",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {} }} => serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), serde::Value::Map(::std::vec![{}]))]),",
                        binds.join(", "),
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}\n",
        arms.join("\n            ")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.body {
                Body::Unit => format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"),
                Body::Tuple(1) => format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(serde::variant_payload(payload, \"{vn}\")?)?)),"
                ),
                Body::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "serde::Deserialize::from_value(serde::seq_item(serde::variant_payload(payload, \"{vn}\")?, {i})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({})),",
                        inits.join(", ")
                    )
                }
                Body::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{0}: serde::Deserialize::from_value(serde::map_field(serde::variant_payload(payload, \"{vn}\")?, \"{0}\")?)?",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                        inits.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n        let (tag, payload) = serde::enum_parts(v)?;\n        match tag {{\n            {}\n            other => ::std::result::Result::Err(serde::DeError::new(::std::format!(\"unknown variant {{other}} for {name}\"))),\n        }}\n    }}\n}}\n",
        arms.join("\n            ")
    )
}
