//! Sequential stand-in for `rayon`, for offline builds.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real `rayon` cannot be fetched. This shim exposes the exact subset
//! of the rayon API this workspace uses, implemented sequentially on top
//! of `std::iter`. Because every "parallel" iterator here *is* a standard
//! iterator, all the usual adapters (`zip`, `enumerate`, `map`,
//! `for_each`, `try_for_each`, `filter_map`, `collect`) come for free.
//!
//! Determinism note: the workspace's kernels are written so each output
//! element is owned by exactly one task, which makes the sequential and
//! parallel executions bitwise identical. Swapping the real rayon back in
//! (when a registry is available) changes wall-clock only, not results.

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

pub mod iter {
    /// `slice.par_chunks_mut(n)` — sequential chunking.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size.max(1))
        }
    }

    /// `slice.par_chunks(n)` — sequential chunking.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size.max(1))
        }
    }

    /// `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Iter = std::ops::Range<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// `collection.par_iter()`.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// Rayon's `ParallelIterator` adapters that std's `Iterator` does not
    /// already provide under the same name. Blanket-implemented for every
    /// iterator so the shim's "parallel" iterators pick them up.
    pub trait ParallelIterator: Iterator + Sized {
        /// `for_each_init(init, op)` — `init` runs once per worker in real
        /// rayon; here once per call, which preserves the buffer-reuse
        /// contract (one workspace serving many items).
        fn for_each_init<S, INIT, OP>(self, mut init: INIT, mut op: OP)
        where
            INIT: FnMut() -> S,
            OP: FnMut(&mut S, Self::Item),
        {
            let mut state = (init)();
            for item in self {
                op(&mut state, item);
            }
        }

        /// Fallible variant of [`ParallelIterator::for_each_init`].
        fn try_for_each_init<S, E, INIT, OP>(self, mut init: INIT, mut op: OP) -> Result<(), E>
        where
            INIT: FnMut() -> S,
            OP: FnMut(&mut S, Self::Item) -> Result<(), E>,
        {
            let mut state = (init)();
            for item in self {
                op(&mut state, item)?;
            }
            Ok(())
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

/// `rayon::current_num_threads()` — one worker in the sequential shim.
///
/// This reports the width of the *iterator* substrate (which executes
/// sequentially); [`scope`] spawns real OS threads and is not bounded by
/// this value.
pub fn current_num_threads() -> usize {
    1
}

/// Structured fork-join on real OS threads — the one genuinely parallel
/// primitive in this shim.
///
/// `cap-cnn`'s `ParallelEngine` needs actual concurrency (its whole
/// point is measured wall-clock speedup), so unlike the sequential
/// iterator adapters above, `scope` is backed by [`std::thread::scope`]:
/// every [`Scope::spawn`] starts a dedicated OS thread, and all threads
/// are joined before `scope` returns. Borrowed (non-`'static`) captures
/// work exactly as with rayon's scope.
///
/// API deviation from real rayon: spawned closures take no `&Scope`
/// argument (no nested spawns), so call sites write `s.spawn(|| ...)`
/// instead of `s.spawn(|_| ...)`. The workspace only uses flat fan-out.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { scope: s }))
}

/// Spawn handle passed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Run `body` on a fresh OS thread, joined when the scope ends.
    ///
    /// A panicking task propagates its panic out of [`scope`] after all
    /// sibling threads have been joined (std's scope semantics).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.scope.spawn(body);
    }
}

/// `rayon::join(a, b)` — sequential execution of both closures.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_and_try_for_each() {
        let mut out = vec![0i32; 4];
        let inputs = vec![1i32, 2, 3, 4];
        let r: Result<(), String> = out
            .par_chunks_mut(1)
            .zip(inputs.into_par_iter())
            .try_for_each(|(o, i)| {
                o[0] = i * 2;
                Ok(())
            });
        r.unwrap();
        assert_eq!(out, [2, 4, 6, 8]);
    }

    #[test]
    fn scope_spawns_real_threads_with_borrowed_state() {
        let mut slots = vec![0usize; 4];
        let main_thread = std::thread::current().id();
        let ran_elsewhere = std::sync::atomic::AtomicBool::new(false);
        crate::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let ran = &ran_elsewhere;
                s.spawn(move || {
                    *slot = i + 1;
                    if std::thread::current().id() != main_thread {
                        ran.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(slots, [1, 2, 3, 4]);
        assert!(ran_elsewhere.load(std::sync::atomic::Ordering::Relaxed));
    }

    #[test]
    fn for_each_init_reuses_state() {
        let mut inits = 0;
        (0..100).for_each_init(
            || {
                inits += 1;
                Vec::<usize>::new()
            },
            |buf, i| {
                buf.push(i);
            },
        );
        assert_eq!(inits, 1);
    }
}
