//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives.
//!
//! parking_lot's locks differ from std's in that they do not poison: a
//! panic while holding the lock leaves it usable. The shim reproduces that
//! by stripping `PoisonError` (taking the guard out of the error), which
//! matches parking_lot semantics closely enough for the weight-cache and
//! workspace-pool use in this workspace.

use std::sync::{self, PoisonError};

/// Reader–writer lock with parking_lot's non-poisoning `read`/`write` API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock owning `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard (never errors; poison is ignored).
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (never errors; poison is ignored).
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutex with parking_lot's non-poisoning `lock` API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex owning `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock (never errors; poison is ignored).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
