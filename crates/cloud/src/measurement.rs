//! Measurement methodology (§3.3): each experiment runs three times and
//! the minimum time is recorded, to suppress cloud virtualization and
//! multi-tenancy jitter.
//!
//! The simulator reproduces that methodology: a deterministic
//! pseudo-random jitter inflates each run's time, and the harness takes
//! the minimum of `runs` draws — so "measured" numbers converge to the
//! model's clean value exactly the way the paper's protocol intends.

use serde::{Deserialize, Serialize};

/// Harness applying multiplicative jitter and min-of-N selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementHarness {
    /// Number of repetitions (paper: 3).
    pub runs: u32,
    /// Maximum relative jitter per run (e.g. 0.08 = up to +8 %).
    pub max_jitter: f64,
    seed: u64,
}

impl MeasurementHarness {
    /// Paper protocol: three runs, up to +8 % virtualization jitter.
    pub fn paper_protocol(seed: u64) -> Self {
        Self {
            runs: 3,
            max_jitter: 0.08,
            seed,
        }
    }

    /// Custom protocol.
    pub fn new(runs: u32, max_jitter: f64, seed: u64) -> Self {
        Self {
            runs: runs.max(1),
            max_jitter: max_jitter.max(0.0),
            seed,
        }
    }

    /// One uniform draw in `[0, 1)` from a splitmix64 stream keyed by
    /// `(seed, experiment_id, run)`.
    fn unit(&self, experiment_id: u64, run: u32) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(experiment_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((run as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// "Measure" a clean model time: min over `runs` jittered draws.
    pub fn measure(&self, experiment_id: u64, clean_time_s: f64) -> f64 {
        (0..self.runs)
            .map(|r| clean_time_s * (1.0 + self.max_jitter * self.unit(experiment_id, r)))
            .fold(f64::INFINITY, f64::min)
    }

    /// All individual run times, in run order (for reporting).
    pub fn measure_all(&self, experiment_id: u64, clean_time_s: f64) -> Vec<f64> {
        (0..self.runs)
            .map(|r| clean_time_s * (1.0 + self.max_jitter * self.unit(experiment_id, r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn min_of_three_close_to_clean() {
        let h = MeasurementHarness::paper_protocol(42);
        let clean = 100.0;
        let measured = h.measure(7, clean);
        assert!(measured >= clean);
        assert!(measured <= clean * 1.08);
        let all = h.measure_all(7, clean);
        assert_eq!(all.len(), 3);
        assert!((measured - all.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed_and_experiment() {
        let h = MeasurementHarness::paper_protocol(1);
        assert_eq!(h.measure(3, 50.0), h.measure(3, 50.0));
        assert_ne!(h.measure(3, 50.0), h.measure(4, 50.0));
        let h2 = MeasurementHarness::paper_protocol(2);
        assert_ne!(h.measure(3, 50.0), h2.measure(3, 50.0));
    }

    #[test]
    fn more_runs_never_increase_minimum() {
        let one = MeasurementHarness::new(1, 0.1, 9);
        let ten = MeasurementHarness::new(10, 0.1, 9);
        // Same stream prefix: min over 10 ≤ the single first draw.
        assert!(ten.measure(5, 80.0) <= one.measure(5, 80.0));
    }

    proptest! {
        #[test]
        fn prop_measured_within_jitter_band(id in 0u64..1000, t in 0.1f64..1e4) {
            let h = MeasurementHarness::paper_protocol(77);
            let m = h.measure(id, t);
            prop_assert!(m >= t && m <= t * 1.08 + 1e-9);
        }
    }
}
