//! Pay-per-use pricing, pro-rated to the nearest second (§4.1.2), plus
//! the legacy per-hour billing mode as an ablation axis — billing
//! granularity changes which Pareto configurations win for short jobs.

use serde::{Deserialize, Serialize};

/// Billing granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingModel {
    /// Modern EC2: hourly price pro-rated to the second, duration
    /// rounded up to the next whole second (the paper's setting).
    PerSecond,
    /// Legacy EC2 (pre-2017): every started hour billed in full.
    PerHour,
}

/// Cost in USD of holding a resource priced at `price_per_hour` for
/// `seconds` of wall-clock time. EC2 pro-rates the hourly price to the
/// second, rounding the duration *up* to the next whole second.
pub fn cost_usd(price_per_hour: f64, seconds: f64) -> f64 {
    cost_usd_with(BillingModel::PerSecond, price_per_hour, seconds)
}

/// Cost under a specific billing model.
pub fn cost_usd_with(model: BillingModel, price_per_hour: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    match model {
        BillingModel::PerSecond => price_per_hour * seconds.ceil() / 3600.0,
        BillingModel::PerHour => price_per_hour * (seconds / 3600.0).ceil(),
    }
}

/// Cost of a set of resources held for a common duration (Eq. 1:
/// `C = T · Σ cᵢ`).
pub fn cost_usd_multi(prices_per_hour: &[f64], seconds: f64) -> f64 {
    prices_per_hour.iter().map(|&p| cost_usd(p, seconds)).sum()
}

/// Steady-state serving cost: USD per 1 000 inferences on an instance
/// priced at `price_per_hour` sustaining `inferences_per_s`.
///
/// `$/1k = price · 1000 / (rate · 3600)` — the rental meter divided by
/// the work meter. Unlike [`cost_usd`] this is a *rate* figure, not a
/// billed amount, so no per-second rounding applies; it is how the
/// serving layer prices a throughput measurement (the Perseus-style
/// "cost per 1 000 inferences" axis). Returns `f64::INFINITY` when the
/// throughput is zero or negative — a stalled server burns money for no
/// work, and an infinite cost keeps it from ever winning a Pareto
/// comparison.
///
/// ```
/// use cap_cloud::cost_per_1k_inferences;
/// // $0.90/h at 1000 inf/s → 3.6M inferences per hour → $0.00025/1k.
/// let c = cost_per_1k_inferences(0.9, 1000.0);
/// assert!((c - 0.00025).abs() < 1e-12);
/// assert!(cost_per_1k_inferences(0.9, 0.0).is_infinite());
/// ```
pub fn cost_per_1k_inferences(price_per_hour: f64, inferences_per_s: f64) -> f64 {
    if inferences_per_s <= 0.0 {
        return f64::INFINITY;
    }
    price_per_hour * 1000.0 / (inferences_per_s * 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_hour_costs_hourly_price() {
        assert!((cost_usd(0.9, 3600.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pro_rates_to_seconds() {
        // 30 minutes at $7.2/hr = $3.6.
        assert!((cost_usd(7.2, 1800.0) - 3.6).abs() < 1e-12);
    }

    #[test]
    fn rounds_partial_seconds_up() {
        let a = cost_usd(3600.0, 0.2); // billed as 1 s at $1/s
        assert!((a - 1.0).abs() < 1e-12);
        assert_eq!(cost_usd(3600.0, 1.0), cost_usd(3600.0, 0.5));
    }

    #[test]
    fn zero_or_negative_duration_is_free() {
        assert_eq!(cost_usd(10.0, 0.0), 0.0);
        assert_eq!(cost_usd(10.0, -5.0), 0.0);
    }

    #[test]
    fn per_hour_bills_started_hours() {
        assert!((cost_usd_with(BillingModel::PerHour, 0.9, 10.0) - 0.9).abs() < 1e-12);
        assert!((cost_usd_with(BillingModel::PerHour, 0.9, 3600.0) - 0.9).abs() < 1e-12);
        assert!((cost_usd_with(BillingModel::PerHour, 0.9, 3601.0) - 1.8).abs() < 1e-12);
        assert_eq!(cost_usd_with(BillingModel::PerHour, 0.9, 0.0), 0.0);
    }

    #[test]
    fn per_hour_never_cheaper_than_per_second() {
        for s in [1.0, 100.0, 1800.0, 3599.0, 3600.0, 5000.0] {
            assert!(
                cost_usd_with(BillingModel::PerHour, 2.0, s) + 1e-12
                    >= cost_usd_with(BillingModel::PerSecond, 2.0, s),
                "at {s} s"
            );
        }
    }

    #[test]
    fn multi_sums_per_resource() {
        let total = cost_usd_multi(&[0.9, 0.9, 7.2], 3600.0);
        assert!((total - 9.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_monotone_in_duration(p in 0.1f64..20.0, s1 in 0.0f64..1e5, s2 in 0.0f64..1e5) {
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(cost_usd(p, lo) <= cost_usd(p, hi) + 1e-12);
        }

        #[test]
        fn prop_rounding_overcharge_bounded(p in 0.1f64..20.0, s in 1.0f64..1e5) {
            // Billed cost never exceeds exact cost by more than one second.
            let exact = p * s / 3600.0;
            let billed = cost_usd(p, s);
            prop_assert!(billed >= exact - 1e-12);
            prop_assert!(billed <= exact + p / 3600.0 + 1e-12);
        }
    }
}
