//! Classical scaling laws — the paper's §1 frames accuracy scaling as
//! the third axis after Amdahl's fixed-workload and Gustafson's
//! fixed-time scaling. This module supplies those two baselines so the
//! examples can put all three on one chart: what resource scaling buys
//! (and costs) versus what accuracy scaling buys.

use crate::pricing::cost_usd;
use serde::{Deserialize, Serialize};

/// Amdahl's law: speedup of a workload whose parallelizable fraction is
/// `p` on `n` workers — `1 / ((1 − p) + p/n)`.
pub fn amdahl_speedup(p: f64, n: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 {
        return 0.0;
    }
    1.0 / ((1.0 - p) + p / n as f64)
}

/// Gustafson's law: scaled speedup when the problem grows with the
/// machine — `(1 − p) + p·n`.
pub fn gustafson_speedup(p: f64, n: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    (1.0 - p) + p * n as f64
}

/// Cost-time point of running a fixed workload on `n` identical
/// instances under Amdahl scaling.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Instance count.
    pub n: u32,
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Total cost, USD (all `n` instances held for the wall-clock time).
    pub cost_usd: f64,
}

/// Fixed-workload scaling curve: time shrinks by Amdahl's speedup while
/// every added instance bills for the whole (shorter) run — the
/// cost-time trade resource scaling offers, against which the paper's
/// accuracy scaling competes.
pub fn fixed_workload_curve(
    base_time_s: f64,
    parallel_fraction: f64,
    price_per_instance_hour: f64,
    max_instances: u32,
) -> Vec<ScalingPoint> {
    (1..=max_instances.max(1))
        .map(|n| {
            let time_s = base_time_s / amdahl_speedup(parallel_fraction, n);
            ScalingPoint {
                n,
                time_s,
                cost_usd: cost_usd(price_per_instance_hour * n as f64, time_s),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn amdahl_limits() {
        // Fully serial: no speedup. Fully parallel: linear.
        assert_eq!(amdahl_speedup(0.0, 64), 1.0);
        assert!((amdahl_speedup(1.0, 64) - 64.0).abs() < 1e-12);
        // Classic: 95% parallel caps at 20x.
        assert!(amdahl_speedup(0.95, u32::MAX) <= 20.0 + 1e-6);
        assert!(amdahl_speedup(0.95, 1_000_000) > 19.0);
    }

    #[test]
    fn gustafson_limits() {
        assert_eq!(gustafson_speedup(0.0, 64), 1.0);
        assert!((gustafson_speedup(1.0, 64) - 64.0).abs() < 1e-12);
        // Gustafson is always at least Amdahl for the same (p, n).
        for n in [2u32, 8, 64] {
            assert!(gustafson_speedup(0.9, n) >= amdahl_speedup(0.9, n));
        }
    }

    #[test]
    fn fixed_workload_curve_time_falls_cost_rises_when_serial_part_exists() {
        // CNN inference is embarrassingly parallel across images but the
        // per-batch pipeline keeps a small serial share.
        let curve = fixed_workload_curve(19.0 * 60.0, 0.95, 0.9, 16);
        assert_eq!(curve.len(), 16);
        for w in curve.windows(2) {
            assert!(w[1].time_s < w[0].time_s, "time monotone down");
        }
        // With a serial fraction, cost eventually rises with n.
        assert!(curve[15].cost_usd > curve[0].cost_usd);
    }

    #[test]
    fn perfectly_parallel_workload_costs_constant() {
        let curve = fixed_workload_curve(3600.0, 1.0, 1.0, 8);
        for p in &curve {
            assert!((p.cost_usd - 1.0).abs() < 0.01, "n={}: {}", p.n, p.cost_usd);
        }
    }

    proptest! {
        #[test]
        fn prop_amdahl_bounded_by_n_and_serial_limit(p in 0.0f64..1.0, n in 1u32..1000) {
            let s = amdahl_speedup(p, n);
            prop_assert!(s >= 1.0 - 1e-12);
            prop_assert!(s <= n as f64 + 1e-9);
            if p < 1.0 {
                prop_assert!(s <= 1.0 / (1.0 - p) + 1e-9);
            }
        }
    }
}
