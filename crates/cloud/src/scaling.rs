//! Classical scaling laws — the paper's §1 frames accuracy scaling as
//! the third axis after Amdahl's fixed-workload and Gustafson's
//! fixed-time scaling. This module supplies those two baselines so the
//! examples can put all three on one chart: what resource scaling buys
//! (and costs) versus what accuracy scaling buys.
//!
//! It also hosts the *calibrated* counterpart: an [`EfficiencyCurve`]
//! fitted to a measured strong-scaling profile (`cap-cnn`'s
//! `strong_scaling` over its `ParallelEngine`), which the execution
//! simulator uses instead of the paper's ideal per-GPU split — see
//! [`GpuScaling`].

use crate::pricing::cost_usd;
use serde::{Deserialize, Serialize};

/// Amdahl's law: speedup of a workload whose parallelizable fraction is
/// `p` on `n` workers — `1 / ((1 − p) + p/n)`.
pub fn amdahl_speedup(p: f64, n: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 {
        return 0.0;
    }
    1.0 / ((1.0 - p) + p / n as f64)
}

/// Gustafson's law: scaled speedup when the problem grows with the
/// machine — `(1 − p) + p·n`.
pub fn gustafson_speedup(p: f64, n: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    (1.0 - p) + p * n as f64
}

/// Cost-time point of running a fixed workload on `n` identical
/// instances under Amdahl scaling.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Instance count.
    pub n: u32,
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Total cost, USD (all `n` instances held for the wall-clock time).
    pub cost_usd: f64,
}

/// Fixed-workload scaling curve: time shrinks by Amdahl's speedup while
/// every added instance bills for the whole (shorter) run — the
/// cost-time trade resource scaling offers, against which the paper's
/// accuracy scaling competes.
pub fn fixed_workload_curve(
    base_time_s: f64,
    parallel_fraction: f64,
    price_per_instance_hour: f64,
    max_instances: u32,
) -> Vec<ScalingPoint> {
    (1..=max_instances.max(1))
        .map(|n| {
            let time_s = base_time_s / amdahl_speedup(parallel_fraction, n);
            ScalingPoint {
                n,
                time_s,
                cost_usd: cost_usd(price_per_instance_hour * n as f64, time_s),
            }
        })
        .collect()
}

/// Default calibrated parallel fraction used by
/// [`EfficiencyCurve::measured_default`].
///
/// Refreshed from the `repro --exp scalingm` strong-scaling experiment
/// on a multi-core host (see `EXPERIMENTS.md`); the Amdahl fit at this
/// value puts 8 workers at ≈6.6× (83 % efficiency) and 16 at ≈11×
/// (69 %), in line with measured multi-worker CNN serving (Perseus
/// reports 5–7× on 8 GPUs against an 8× analytic split).
pub const CALIBRATED_PARALLEL_FRACTION: f64 = 0.97;

/// Sub-linear intra-instance scaling, calibrated from measurement.
///
/// The curve is an Amdahl model with a single fitted parameter — the
/// parallel fraction `p` — chosen to reproduce a measured
/// `(workers, throughput)` strong-scaling profile. [`speedup`] and
/// [`efficiency`] then extrapolate that profile to any worker/GPU count
/// the instance catalog offers.
///
/// [`speedup`]: EfficiencyCurve::speedup
/// [`efficiency`]: EfficiencyCurve::efficiency
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyCurve {
    parallel_fraction: f64,
}

impl EfficiencyCurve {
    /// A curve with an explicit parallel fraction, clamped to `[0, 1]`.
    pub fn from_parallel_fraction(p: f64) -> Self {
        Self {
            parallel_fraction: p.clamp(0.0, 1.0),
        }
    }

    /// The checked-in calibration ([`CALIBRATED_PARALLEL_FRACTION`]).
    pub fn measured_default() -> Self {
        Self::from_parallel_fraction(CALIBRATED_PARALLEL_FRACTION)
    }

    /// Fit a curve to a measured strong-scaling profile of
    /// `(workers, images_per_second)` points.
    ///
    /// Requires a 1-worker baseline point and at least one multi-worker
    /// point; returns `None` otherwise. Each multi-worker point yields a
    /// closed-form parallel fraction (inverting Amdahl's law:
    /// `p = (1 − 1/s) / (1 − 1/n)` for measured speedup `s = rate_n /
    /// rate_1`), and the fit is their mean — an unweighted least-error
    /// compromise that is exact when the profile truly is Amdahl-shaped.
    pub fn fit(profile: &[(u32, f64)]) -> Option<Self> {
        let base = profile
            .iter()
            .find(|&&(n, r)| n == 1 && r > 0.0)
            .map(|&(_, r)| r)?;
        let mut sum = 0.0;
        let mut count = 0usize;
        for &(n, rate) in profile {
            if n <= 1 || rate <= 0.0 {
                continue;
            }
            let s = (rate / base).max(f64::MIN_POSITIVE);
            let p = (1.0 - 1.0 / s) / (1.0 - 1.0 / n as f64);
            sum += p.clamp(0.0, 1.0);
            count += 1;
        }
        if count == 0 {
            return None;
        }
        Some(Self::from_parallel_fraction(sum / count as f64))
    }

    /// The fitted parallel fraction `p`.
    pub fn parallel_fraction(&self) -> f64 {
        self.parallel_fraction
    }

    /// Speedup over one worker at `n` workers (Amdahl at the fitted `p`).
    pub fn speedup(&self, n: u32) -> f64 {
        amdahl_speedup(self.parallel_fraction, n)
    }

    /// Per-worker efficiency at `n` workers: `speedup(n) / n`, in
    /// `(0, 1]`.
    pub fn efficiency(&self, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.speedup(n) / n as f64
    }
}

/// How the execution simulator scales throughput across the GPUs of one
/// instance.
///
/// The paper's Eqs. 1–4 assume [`GpuScaling::Ideal`] — `k` GPUs are
/// exactly `k`× one GPU. Measured multi-worker execution
/// (`cap-cnn::strong_scaling`) shows sub-linear reality, captured by
/// [`GpuScaling::Calibrated`]. `Default` is the calibrated curve;
/// `Ideal` is retained as the explicit paper-fidelity mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GpuScaling {
    /// The paper's analytic split: linear in GPU count.
    Ideal,
    /// Sub-linear scaling along a measured efficiency curve.
    Calibrated(EfficiencyCurve),
}

impl Default for GpuScaling {
    fn default() -> Self {
        GpuScaling::Calibrated(EfficiencyCurve::measured_default())
    }
}

impl GpuScaling {
    /// Effective combined speedup of `n` GPUs over one.
    pub fn speedup(&self, n: u32) -> f64 {
        match self {
            GpuScaling::Ideal => n as f64,
            GpuScaling::Calibrated(curve) => curve.speedup(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn amdahl_limits() {
        // Fully serial: no speedup. Fully parallel: linear.
        assert_eq!(amdahl_speedup(0.0, 64), 1.0);
        assert!((amdahl_speedup(1.0, 64) - 64.0).abs() < 1e-12);
        // Classic: 95% parallel caps at 20x.
        assert!(amdahl_speedup(0.95, u32::MAX) <= 20.0 + 1e-6);
        assert!(amdahl_speedup(0.95, 1_000_000) > 19.0);
    }

    #[test]
    fn gustafson_limits() {
        assert_eq!(gustafson_speedup(0.0, 64), 1.0);
        assert!((gustafson_speedup(1.0, 64) - 64.0).abs() < 1e-12);
        // Gustafson is always at least Amdahl for the same (p, n).
        for n in [2u32, 8, 64] {
            assert!(gustafson_speedup(0.9, n) >= amdahl_speedup(0.9, n));
        }
    }

    #[test]
    fn fixed_workload_curve_time_falls_cost_rises_when_serial_part_exists() {
        // CNN inference is embarrassingly parallel across images but the
        // per-batch pipeline keeps a small serial share.
        let curve = fixed_workload_curve(19.0 * 60.0, 0.95, 0.9, 16);
        assert_eq!(curve.len(), 16);
        for w in curve.windows(2) {
            assert!(w[1].time_s < w[0].time_s, "time monotone down");
        }
        // With a serial fraction, cost eventually rises with n.
        assert!(curve[15].cost_usd > curve[0].cost_usd);
    }

    #[test]
    fn perfectly_parallel_workload_costs_constant() {
        let curve = fixed_workload_curve(3600.0, 1.0, 1.0, 8);
        for p in &curve {
            assert!((p.cost_usd - 1.0).abs() < 0.01, "n={}: {}", p.n, p.cost_usd);
        }
    }

    #[test]
    fn fit_recovers_exact_amdahl_profile() {
        let truth = EfficiencyCurve::from_parallel_fraction(0.93);
        let profile: Vec<(u32, f64)> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&n| (n, 100.0 * truth.speedup(n)))
            .collect();
        let fitted = EfficiencyCurve::fit(&profile).unwrap();
        assert!((fitted.parallel_fraction() - 0.93).abs() < 1e-9);
    }

    #[test]
    fn fit_requires_baseline_and_scaling_points() {
        assert!(EfficiencyCurve::fit(&[]).is_none());
        assert!(EfficiencyCurve::fit(&[(2, 100.0)]).is_none());
        assert!(EfficiencyCurve::fit(&[(1, 100.0)]).is_none());
        // A flat (no-speedup) profile fits p = 0.
        let flat = EfficiencyCurve::fit(&[(1, 100.0), (4, 100.0)]).unwrap();
        assert!(flat.parallel_fraction() < 1e-9);
    }

    #[test]
    fn calibrated_default_is_sublinear_but_monotone() {
        let c = EfficiencyCurve::measured_default();
        assert!(c.speedup(1) == 1.0);
        assert!(c.speedup(8) > 6.0 && c.speedup(8) < 7.0);
        assert!(c.speedup(16) > 10.0 && c.speedup(16) < 12.0);
        assert!(c.efficiency(16) < c.efficiency(8));
        assert!(c.efficiency(8) < c.efficiency(1) + 1e-12);
    }

    #[test]
    fn gpu_scaling_modes_diverge_beyond_one_gpu() {
        let ideal = GpuScaling::Ideal;
        let cal = GpuScaling::default();
        assert_eq!(ideal.speedup(1), 1.0);
        assert!((cal.speedup(1) - 1.0).abs() < 1e-12);
        assert!(cal.speedup(8) < ideal.speedup(8));
    }

    proptest! {
        #[test]
        fn prop_fit_roundtrip(p in 0.0f64..1.0) {
            let truth = EfficiencyCurve::from_parallel_fraction(p);
            let profile: Vec<(u32, f64)> =
                [1u32, 2, 8].iter().map(|&n| (n, 50.0 * truth.speedup(n))).collect();
            let fitted = EfficiencyCurve::fit(&profile).unwrap();
            prop_assert!((fitted.parallel_fraction() - p).abs() < 1e-6);
        }

        #[test]
        fn prop_amdahl_bounded_by_n_and_serial_limit(p in 0.0f64..1.0, n in 1u32..1000) {
            let s = amdahl_speedup(p, n);
            prop_assert!(s >= 1.0 - 1e-12);
            prop_assert!(s <= n as f64 + 1e-9);
            if p < 1.0 {
                prop_assert!(s <= 1.0 / (1.0 - p) + 1e-9);
            }
        }
    }
}
