//! Execution simulation — the paper's analytical model (Eqs. 1–4).
//!
//! Given an application's reference-GPU timing, a resource configuration
//! and a workload of `W` images:
//!
//! * Eq. 4 distributes images across instances (`Wᵢ = W / |R|`) — the
//!   paper's equal split; a throughput-proportional mode is provided as
//!   an extension and used by the allocation algorithm's workload
//!   distribution step.
//! * Eqs. 2–3 give per-instance time: `n = Wᵢ / b` batches at the
//!   batch-saturation rate of the instance's GPUs.
//! * Eq. 1 gives cost: `C = T · Σ cᵢ` with per-second pro-rating.
//!
//! Multi-GPU instance throughput uses a [`GpuScaling`] model. The
//! default is the *calibrated* sub-linear efficiency curve (fitted to
//! the measured strong-scaling profile of the implemented framework's
//! `ParallelEngine`); the paper's ideal `k`-GPUs-are-`k`× split is
//! retained as the explicit [`GpuScaling::Ideal`] paper-fidelity mode —
//! pass it to [`simulate_with`] when reproducing the paper's figures.

use crate::config::ResourceConfig;
use crate::gpu::BatchModel;
use crate::instance::InstanceType;
use crate::pricing::cost_usd;
use crate::scaling::GpuScaling;
use serde::{Deserialize, Serialize};

/// Reference-GPU (K80) timing of one application version (one degree of
/// pruning). Produced upstream from a calibrated profile or a real
/// measurement; consumed here hardware-independently.
///
/// ```
/// use cap_cloud::{by_name, simulate, AppExecModel, Distribution, ResourceConfig};
///
/// // Unpruned Caffenet: 19 min per 50 000 images saturated on a K80,
/// // 0.09 s single-inference latency (the paper's §4.2 anchors).
/// let app = AppExecModel {
///     s_per_image_batched_ref: 19.0 * 60.0 / 50_000.0,
///     single_latency_ref: 0.09,
/// };
///
/// // One p2.xlarge (one K80) infers the ImageNet validation set in ≈19 min.
/// let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
/// let est = simulate(&cfg, &app, 50_000, 512, Distribution::EqualSplit).unwrap();
/// assert!((est.time_s / 60.0 - 19.0).abs() < 1.0);
/// assert!(est.cost_usd > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppExecModel {
    /// Seconds per image at saturated batch on the reference K80.
    pub s_per_image_batched_ref: f64,
    /// Single-inference latency on the reference K80, seconds.
    pub single_latency_ref: f64,
}

impl AppExecModel {
    /// Batch-throughput curve of this application on one GPU of `kind`.
    pub fn batch_model(&self, kind: crate::instance::GpuKind) -> BatchModel {
        let f = kind.relative_throughput();
        BatchModel::new(
            f / self.s_per_image_batched_ref,
            f / self.single_latency_ref,
        )
    }

    /// Throughput of a whole instance under the default (calibrated)
    /// GPU-scaling model, images/s.
    pub fn instance_rate(&self, inst: &InstanceType, gpus_used: u32, batch_per_gpu: u32) -> f64 {
        self.instance_rate_with(inst, gpus_used, batch_per_gpu, &GpuScaling::default())
    }

    /// Throughput of a whole instance under an explicit scaling model.
    ///
    /// `GpuScaling::Ideal` reproduces the paper's analytic assumption
    /// (`k` GPUs = `k`× one GPU); the calibrated curve applies the
    /// measured sub-linear multi-worker speedup instead.
    pub fn instance_rate_with(
        &self,
        inst: &InstanceType,
        gpus_used: u32,
        batch_per_gpu: u32,
        scaling: &GpuScaling,
    ) -> f64 {
        let gpus = gpus_used.min(inst.gpus);
        let batch = batch_per_gpu.min(inst.max_batch_per_gpu());
        self.batch_model(inst.gpu).rate(batch) * scaling.speedup(gpus)
    }
}

/// Workload distribution policy across instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// The paper's Eq. 4: every instance receives `W / |R|` images.
    EqualSplit,
    /// Extension: images proportional to instance throughput, so all
    /// instances finish together (no straggler).
    Proportional,
}

/// Result of simulating one execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionEstimate {
    /// Total wall-clock inference time `T` (Eq. 2: the slowest instance).
    pub time_s: f64,
    /// Total cost `C` (Eq. 1, per-second pro-rated).
    pub cost_usd: f64,
    /// Per-instance `(name, images, time_s)` in configuration order.
    pub per_instance: Vec<(String, u64, f64)>,
}

/// Simulate inferring `w` images on `config` under the default
/// (calibrated sub-linear) GPU-scaling model.
///
/// `batch_per_gpu` is the parallel-inference count per GPU (the paper
/// uses ≥300 for saturation, §4.2.3); all GPUs of every instance are
/// used. Returns `None` for an empty configuration or zero workload
/// capacity. For the paper's ideal per-GPU split, call [`simulate_with`]
/// with [`GpuScaling::Ideal`].
pub fn simulate(
    config: &ResourceConfig,
    app: &AppExecModel,
    w: u64,
    batch_per_gpu: u32,
    distribution: Distribution,
) -> Option<ExecutionEstimate> {
    simulate_with(
        config,
        app,
        w,
        batch_per_gpu,
        distribution,
        &GpuScaling::default(),
    )
}

/// [`simulate`] with an explicit multi-GPU scaling model.
pub fn simulate_with(
    config: &ResourceConfig,
    app: &AppExecModel,
    w: u64,
    batch_per_gpu: u32,
    distribution: Distribution,
    scaling: &GpuScaling,
) -> Option<ExecutionEstimate> {
    if config.is_empty() || batch_per_gpu == 0 {
        return None;
    }
    let instances: Vec<&InstanceType> = config.iter_instances().collect();
    let rates: Vec<f64> = instances
        .iter()
        .map(|i| app.instance_rate_with(i, i.gpus, batch_per_gpu, scaling))
        .collect();
    if rates.iter().any(|&r| r <= 0.0) {
        return None;
    }
    let shares: Vec<u64> = match distribution {
        Distribution::EqualSplit => {
            let k = instances.len() as u64;
            let base = w / k;
            let rem = (w % k) as usize;
            (0..instances.len())
                .map(|i| base + if i < rem { 1 } else { 0 })
                .collect()
        }
        Distribution::Proportional => {
            let total_rate: f64 = rates.iter().sum();
            let mut shares: Vec<u64> = rates
                .iter()
                .map(|r| ((w as f64) * r / total_rate).floor() as u64)
                .collect();
            // Hand out the rounding remainder to the fastest instances.
            let mut assigned: u64 = shares.iter().sum();
            let mut order: Vec<usize> = (0..shares.len()).collect();
            order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).unwrap());
            let mut oi = 0;
            while assigned < w {
                shares[order[oi % order.len()]] += 1;
                assigned += 1;
                oi += 1;
            }
            shares
        }
    };
    let per_instance: Vec<(String, u64, f64)> = instances
        .iter()
        .zip(shares.iter().zip(rates.iter()))
        .map(|(inst, (&wi, &rate))| (inst.name.clone(), wi, wi as f64 / rate))
        .collect();
    let time_s = per_instance
        .iter()
        .map(|(_, _, t)| *t)
        .fold(0.0_f64, f64::max);
    // Eq. 1: all resources are held until the slowest finishes.
    let cost = cost_usd(config.total_price_per_hour(), time_s);
    Some(ExecutionEstimate {
        time_s,
        cost_usd: cost,
        per_instance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{by_name, catalog};

    /// Unpruned Caffenet: 19 min / 50 000 images saturated, 0.09 s single.
    fn caffenet_exec() -> AppExecModel {
        AppExecModel {
            s_per_image_batched_ref: 19.0 * 60.0 / 50_000.0,
            single_latency_ref: 0.09,
        }
    }

    #[test]
    fn single_p2_xlarge_matches_19_minutes() {
        let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        let est = simulate(
            &cfg,
            &caffenet_exec(),
            50_000,
            512,
            Distribution::EqualSplit,
        )
        .unwrap();
        assert!(
            (est.time_s / 60.0 - 19.0).abs() < 0.6,
            "time {} min",
            est.time_s / 60.0
        );
        // Cost ≈ 19/60 h × $0.9.
        assert!((est.cost_usd - 19.0 / 60.0 * 0.9).abs() < 0.01);
    }

    #[test]
    fn more_gpus_scale_throughput_ideally_in_paper_fidelity_mode() {
        let app = caffenet_exec();
        let one = simulate_with(
            &ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
            &GpuScaling::Ideal,
        )
        .unwrap();
        let eight = simulate_with(
            &ResourceConfig::of(by_name("p2.8xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
            &GpuScaling::Ideal,
        )
        .unwrap();
        let speedup = one.time_s / eight.time_s;
        assert!((speedup - 8.0).abs() < 0.2, "speedup {speedup}");
    }

    #[test]
    fn default_multi_gpu_scaling_is_sublinear() {
        // The calibrated curve (the default) shows the measured reality:
        // 8 GPUs land well short of 8x, but still far above 1x.
        let app = caffenet_exec();
        let one = simulate(
            &ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
        )
        .unwrap();
        let eight = simulate(
            &ResourceConfig::of(by_name("p2.8xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
        )
        .unwrap();
        let speedup = one.time_s / eight.time_s;
        assert!(speedup > 5.0 && speedup < 7.5, "speedup {speedup}");
        // Single-GPU estimates are identical under both models.
        let one_ideal = simulate_with(
            &ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
            &GpuScaling::Ideal,
        )
        .unwrap();
        assert!((one.time_s - one_ideal.time_s).abs() < 1e-9);
    }

    #[test]
    fn calibrated_efficiency_feeds_through_from_fitted_profile() {
        // A curve fitted to a measured strong-scaling profile plugs
        // straight into the simulator.
        let app = caffenet_exec();
        let profile = [(1u32, 50.0), (2, 95.0), (4, 170.0), (8, 280.0)];
        let curve = crate::scaling::EfficiencyCurve::fit(&profile).unwrap();
        let est = simulate_with(
            &ResourceConfig::of(by_name("p2.8xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
            &GpuScaling::Calibrated(curve),
        )
        .unwrap();
        let ideal = simulate_with(
            &ResourceConfig::of(by_name("p2.8xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
            &GpuScaling::Ideal,
        )
        .unwrap();
        assert!(est.time_s > ideal.time_s, "calibrated must be slower");
        assert!(est.time_s < ideal.time_s * 2.0, "but not wildly so");
    }

    #[test]
    fn m60_faster_than_k80_per_gpu() {
        let app = caffenet_exec();
        let p2 = simulate(
            &ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1),
            &app,
            50_000,
            512,
            Distribution::EqualSplit,
        )
        .unwrap();
        let g3 = simulate(
            &ResourceConfig::of(by_name("g3.4xlarge").unwrap(), 1),
            &app,
            50_000,
            341,
            Distribution::EqualSplit,
        )
        .unwrap();
        let ratio = p2.time_s / g3.time_s;
        assert!((ratio - 2.0).abs() < 0.15, "M60/K80 ratio {ratio}");
    }

    #[test]
    fn equal_split_straggles_on_heterogeneous_config() {
        let app = caffenet_exec();
        let mut cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        cfg.add(by_name("p2.8xlarge").unwrap(), 1);
        let eq = simulate(&cfg, &app, 100_000, 512, Distribution::EqualSplit).unwrap();
        let prop = simulate(&cfg, &app, 100_000, 512, Distribution::Proportional).unwrap();
        // Equal split: the 1-GPU instance is the straggler; proportional
        // finishes strictly faster.
        assert!(
            prop.time_s < eq.time_s * 0.75,
            "{} vs {}",
            prop.time_s,
            eq.time_s
        );
        // Both assign all images.
        let total_eq: u64 = eq.per_instance.iter().map(|(_, w, _)| w).sum();
        let total_prop: u64 = prop.per_instance.iter().map(|(_, w, _)| w).sum();
        assert_eq!(total_eq, 100_000);
        assert_eq!(total_prop, 100_000);
    }

    #[test]
    fn proportional_split_balances_finish_times() {
        let app = caffenet_exec();
        let mut cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        cfg.add(by_name("p2.16xlarge").unwrap(), 1);
        let est = simulate(&cfg, &app, 1_000_000, 512, Distribution::Proportional).unwrap();
        let times: Vec<f64> = est.per_instance.iter().map(|(_, _, t)| *t).collect();
        let spread = (times[0] - times[1]).abs() / est.time_s;
        assert!(spread < 0.01, "finish-time spread {spread}");
    }

    #[test]
    fn empty_config_or_zero_batch_is_none() {
        let app = caffenet_exec();
        assert!(simulate(
            &ResourceConfig::empty(),
            &app,
            100,
            512,
            Distribution::EqualSplit
        )
        .is_none());
        let cfg = ResourceConfig::of(catalog()[0].clone(), 1);
        assert!(simulate(&cfg, &app, 100, 0, Distribution::EqualSplit).is_none());
    }

    #[test]
    fn small_batch_slower_than_saturated() {
        let app = caffenet_exec();
        let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        let small = simulate(&cfg, &app, 50_000, 8, Distribution::EqualSplit).unwrap();
        let sat = simulate(&cfg, &app, 50_000, 512, Distribution::EqualSplit).unwrap();
        assert!(small.time_s > 1.5 * sat.time_s);
    }

    #[test]
    fn equal_split_time_set_by_slowest_instance() {
        let app = caffenet_exec();
        let mut cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        cfg.add(by_name("p2.16xlarge").unwrap(), 2);
        let est = simulate(&cfg, &app, 300_000, 512, Distribution::EqualSplit).unwrap();
        // All three instances get 100k images; the single-GPU instance is
        // the straggler and defines T (Eq. 2's max).
        let slowest = est
            .per_instance
            .iter()
            .map(|(_, _, t)| *t)
            .fold(0.0_f64, f64::max);
        assert_eq!(est.time_s, slowest);
        let xl = est
            .per_instance
            .iter()
            .find(|(n, _, _)| n == "p2.xlarge")
            .unwrap();
        assert_eq!(est.time_s, xl.2);
    }

    #[test]
    fn proportional_adding_instance_never_slower() {
        let app = caffenet_exec();
        let mut prev_time = f64::INFINITY;
        let mut cfg = ResourceConfig::empty();
        for _ in 0..4 {
            cfg.add(by_name("p2.xlarge").unwrap(), 1);
            let est = simulate(&cfg, &app, 400_000, 512, Distribution::Proportional).unwrap();
            assert!(
                est.time_s <= prev_time + 1e-6,
                "{} > {prev_time}",
                est.time_s
            );
            prev_time = est.time_s;
        }
    }

    #[test]
    fn huge_workload_does_not_overflow() {
        let app = caffenet_exec();
        let cfg = ResourceConfig::of(by_name("p2.16xlarge").unwrap(), 1);
        let est = simulate(
            &cfg,
            &app,
            u64::MAX / 1_000_000,
            512,
            Distribution::EqualSplit,
        )
        .unwrap();
        assert!(est.time_s.is_finite() && est.time_s > 0.0);
        assert!(est.cost_usd.is_finite());
    }

    #[test]
    fn zero_workload_costs_nothing() {
        let app = caffenet_exec();
        let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        let est = simulate(&cfg, &app, 0, 512, Distribution::EqualSplit).unwrap();
        assert_eq!(est.time_s, 0.0);
        assert_eq!(est.cost_usd, 0.0);
    }
}
