//! GPU batch-saturation model — Figure 5's measurement in closed form.
//!
//! A GPU only reaches peak inference throughput when enough inferences
//! run in parallel. The paper measures time for a fixed workload against
//! the number of parallel inferences and finds saturation near 300 on a
//! K80 (Figure 5). We model per-GPU throughput as
//!
//! ```text
//! rate(b) = saturated_rate · (c + (1 − c) · (1 − e^(−b/τ)))
//! ```
//!
//! where `c = single_rate / saturated_rate` anchors the `b = 1` point and
//! `τ` sets the saturation scale (`τ = 75` puts ~98 % of peak at
//! `b = 300`).

use serde::{Deserialize, Serialize};

/// Default saturation scale: ≈98 % of peak at 300 parallel inferences.
pub const DEFAULT_TAU: f64 = 75.0;

/// Batch-size throughput curve of one application on one GPU.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchModel {
    /// Throughput at full saturation, images/second.
    pub saturated_rate: f64,
    /// Throughput at batch size 1 (the reciprocal of single-inference
    /// latency), images/second.
    pub single_rate: f64,
    /// Saturation scale τ.
    pub tau: f64,
}

impl BatchModel {
    /// Build from saturated and single-inference rates with the default τ.
    pub fn new(saturated_rate: f64, single_rate: f64) -> Self {
        Self {
            saturated_rate,
            single_rate,
            tau: DEFAULT_TAU,
        }
    }

    /// Throughput in images/second at `batch` parallel inferences.
    pub fn rate(&self, batch: u32) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let c = (self.single_rate / self.saturated_rate).clamp(0.0, 1.0);
        let fill = 1.0 - (-(batch as f64) / self.tau).exp();
        self.saturated_rate * (c + (1.0 - c) * fill)
    }

    /// Time in seconds to infer `w` images at `batch` parallel inferences.
    pub fn time_s(&self, w: u64, batch: u32) -> f64 {
        if w == 0 {
            return 0.0;
        }
        w as f64 / self.rate(batch)
    }

    /// Smallest batch size reaching `fraction` of saturated throughput —
    /// the experiment of §4.2.3 in closed form.
    pub fn saturation_batch(&self, fraction: f64) -> u32 {
        let c = (self.single_rate / self.saturated_rate).clamp(0.0, 1.0);
        if fraction <= c {
            return 1;
        }
        if fraction >= 1.0 {
            return u32::MAX;
        }
        // fraction = c + (1-c)(1 - e^{-b/tau})  =>  b = -tau ln(1 - (fraction-c)/(1-c))
        let inner = 1.0 - (fraction - c) / (1.0 - c);
        (-self.tau * inner.ln()).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Caffenet on K80: 19 min per 50 000 images saturated, 0.09 s single.
    fn caffenet_k80() -> BatchModel {
        BatchModel::new(50_000.0 / (19.0 * 60.0), 1.0 / 0.09)
    }

    #[test]
    fn rate_at_one_is_single_rate() {
        let m = caffenet_k80();
        // At b=1 the fill term is tiny; rate ≈ single rate.
        assert!((m.rate(1) - m.single_rate).abs() / m.single_rate < 0.05);
    }

    #[test]
    fn saturates_near_300_as_in_fig5() {
        let m = caffenet_k80();
        let b95 = m.saturation_batch(0.95);
        assert!((150..=350).contains(&b95), "95% saturation at batch {b95}");
        // Beyond 300 the gain is marginal.
        assert!(m.rate(2000) / m.rate(300) < 1.03);
    }

    #[test]
    fn rate_monotone_in_batch() {
        let m = caffenet_k80();
        let mut prev = 0.0;
        for b in [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2000] {
            let r = m.rate(b);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn time_for_fixed_workload_decreases_then_flattens() {
        // The Figure 5 curve: y = time for W images, x = parallel inferences.
        let m = caffenet_k80();
        let t1 = m.time_s(50_000, 1);
        let t300 = m.time_s(50_000, 300);
        let t2000 = m.time_s(50_000, 2000);
        assert!(t1 > 2.0 * t300, "batching should at least halve time");
        assert!((t300 - t2000) / t300 < 0.03, "flat beyond saturation");
        // Saturated time ≈ 19 minutes.
        assert!((t2000 / 60.0 - 19.0).abs() < 0.6);
    }

    #[test]
    fn zero_cases() {
        let m = caffenet_k80();
        assert_eq!(m.rate(0), 0.0);
        assert_eq!(m.time_s(0, 128), 0.0);
    }

    #[test]
    fn saturation_batch_edges() {
        let m = caffenet_k80();
        assert_eq!(m.saturation_batch(0.0), 1);
        assert_eq!(m.saturation_batch(1.0), u32::MAX);
    }

    proptest! {
        #[test]
        fn prop_rate_bounded_by_saturated(b in 1u32..5000) {
            let m = caffenet_k80();
            let r = m.rate(b);
            prop_assert!(r > 0.0 && r <= m.saturated_rate + 1e-9);
        }

        #[test]
        fn prop_saturation_batch_consistent(frac in 0.1f64..0.99) {
            let m = caffenet_k80();
            let b = m.saturation_batch(frac);
            prop_assert!(m.rate(b) >= frac * m.saturated_rate - 1e-6);
            if b > 1 {
                prop_assert!(m.rate(b - 1) < frac * m.saturated_rate + 1e-6);
            }
        }
    }
}
