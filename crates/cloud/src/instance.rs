//! The cloud resource catalog — Table 3 of the paper, verbatim.

use serde::{Deserialize, Serialize};

/// GPU silicon families present in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// NVIDIA K80 (Kepler), 2 496 parallel cores — p2 family.
    K80,
    /// NVIDIA M60 (Maxwell), 2 048 parallel cores — g3 family.
    M60,
}

impl GpuKind {
    /// Parallel processing core count (§4.1.2).
    pub fn cores(&self) -> u32 {
        match self {
            GpuKind::K80 => 2496,
            GpuKind::M60 => 2048,
        }
    }

    /// Inference throughput relative to the K80 reference.
    ///
    /// The M60's newer architecture outruns its lower core count; the
    /// factor is calibrated so the g3/p2 CAR ratio matches Figure 12
    /// (g3 ≈ 0.61× the CAR of p2 despite a higher per-GPU price).
    pub fn relative_throughput(&self) -> f64 {
        match self {
            GpuKind::K80 => 1.0,
            GpuKind::M60 => 2.0,
        }
    }

    /// Marketing name.
    pub fn name(&self) -> &'static str {
        match self {
            GpuKind::K80 => "NVIDIA K80",
            GpuKind::M60 => "NVIDIA M60",
        }
    }
}

/// One EC2 instance type (a row of Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// API name, e.g. `p2.xlarge`.
    pub name: String,
    /// vCPU count.
    pub vcpus: u32,
    /// Number of (virtual) GPUs attached.
    pub gpus: u32,
    /// Host memory, GB.
    pub mem_gb: u32,
    /// Total GPU memory, GB.
    pub gpu_mem_gb: u32,
    /// On-demand price, $/hour (Oregon region, as in the paper).
    pub price_per_hour: f64,
    /// GPU silicon.
    pub gpu: GpuKind,
}

impl InstanceType {
    /// Price per GPU-hour — constant within a family ($0.90 for p2,
    /// $1.14 for g3), which is why Figure 12's CAR is flat within a
    /// resource category.
    pub fn price_per_gpu_hour(&self) -> f64 {
        self.price_per_hour / self.gpus as f64
    }

    /// Instance family prefix (`p2` / `g3`).
    pub fn family(&self) -> &str {
        self.name.split('.').next().unwrap_or(&self.name)
    }

    /// Maximum parallel inferences (batch size) per GPU, bounded by GPU
    /// memory; comfortably above the ~300 saturation point of Figure 5.
    pub fn max_batch_per_gpu(&self) -> u32 {
        // ~12 GB K80 board fits ~512 concurrent 224×224×3 inferences of
        // Caffenet-sized activations; scale linearly with per-GPU memory.
        let per_gpu_mem = self.gpu_mem_gb as f64 / self.gpus as f64;
        ((per_gpu_mem / 12.0) * 512.0).round() as u32
    }
}

/// The six-type catalog of Table 3.
pub fn catalog() -> Vec<InstanceType> {
    let row = |name: &str, vcpus, gpus, mem_gb, gpu_mem_gb, price, gpu| InstanceType {
        name: name.to_string(),
        vcpus,
        gpus,
        mem_gb,
        gpu_mem_gb,
        price_per_hour: price,
        gpu,
    };
    vec![
        row("p2.xlarge", 4, 1, 61, 12, 0.9, GpuKind::K80),
        row("p2.8xlarge", 32, 8, 488, 96, 7.2, GpuKind::K80),
        row("p2.16xlarge", 64, 16, 732, 192, 14.4, GpuKind::K80),
        row("g3.4xlarge", 16, 1, 122, 8, 1.14, GpuKind::M60),
        row("g3.8xlarge", 32, 2, 244, 16, 2.28, GpuKind::M60),
        row("g3.16xlarge", 64, 4, 488, 32, 4.56, GpuKind::M60),
    ]
}

/// Look up a catalog entry by name.
pub fn by_name(name: &str) -> Option<InstanceType> {
    catalog().into_iter().find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table3() {
        let cat = catalog();
        assert_eq!(cat.len(), 6);
        let p2x = &cat[0];
        assert_eq!(p2x.name, "p2.xlarge");
        assert_eq!(
            (p2x.vcpus, p2x.gpus, p2x.mem_gb, p2x.gpu_mem_gb),
            (4, 1, 61, 12)
        );
        assert_eq!(p2x.price_per_hour, 0.9);
        assert_eq!(p2x.gpu, GpuKind::K80);
        let g316 = by_name("g3.16xlarge").unwrap();
        assert_eq!((g316.vcpus, g316.gpus, g316.price_per_hour), (64, 4, 4.56));
        assert_eq!(g316.gpu, GpuKind::M60);
    }

    #[test]
    fn per_gpu_price_constant_within_family() {
        for inst in catalog() {
            let expect = match inst.family() {
                "p2" => 0.9,
                "g3" => 1.14,
                other => panic!("unexpected family {other}"),
            };
            assert!(
                (inst.price_per_gpu_hour() - expect).abs() < 1e-9,
                "{}",
                inst.name
            );
        }
    }

    #[test]
    fn gpu_core_counts_match_spec() {
        assert_eq!(GpuKind::K80.cores(), 2496);
        assert_eq!(GpuKind::M60.cores(), 2048);
        assert!(GpuKind::M60.relative_throughput() > GpuKind::K80.relative_throughput());
    }

    #[test]
    fn max_batch_exceeds_saturation_point() {
        // Figure 5: saturation near 300 parallel inferences; every
        // catalog GPU must admit at least that.
        for inst in catalog() {
            assert!(
                inst.max_batch_per_gpu() >= 300,
                "{}: {}",
                inst.name,
                inst.max_batch_per_gpu()
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("p3.2xlarge").is_none());
    }
}
