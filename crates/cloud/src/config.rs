//! Resource configurations `R` and enumeration of the configuration
//! space `G` (Table 2 symbols).

use crate::instance::InstanceType;
use serde::{Deserialize, Serialize};

/// A cloud resource configuration: a multiset of instances, stored as
/// `(instance type, count)` pairs in catalog order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// Instance types with their allocated counts (counts ≥ 1).
    pub entries: Vec<(InstanceType, u32)>,
}

impl ResourceConfig {
    /// Empty configuration.
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Configuration of `count` instances of a single type.
    pub fn of(instance: InstanceType, count: u32) -> Self {
        let mut c = Self::empty();
        c.add(instance, count);
        c
    }

    /// Add `count` instances of a type (merging with an existing entry).
    pub fn add(&mut self, instance: InstanceType, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(i, _)| i.name == instance.name)
        {
            e.1 += count;
        } else {
            self.entries.push((instance, count));
        }
    }

    /// Total number of instances `|R|`.
    pub fn instance_count(&self) -> u32 {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// True if no instances are allocated.
    pub fn is_empty(&self) -> bool {
        self.instance_count() == 0
    }

    /// Total GPUs across all instances.
    pub fn total_gpus(&self) -> u32 {
        self.entries.iter().map(|(i, n)| i.gpus * n).sum()
    }

    /// Combined hourly price `Σ cᵢ` (Eq. 1).
    pub fn total_price_per_hour(&self) -> f64 {
        self.entries
            .iter()
            .map(|(i, n)| i.price_per_hour * *n as f64)
            .sum()
    }

    /// Iterate individual instances (flattening counts).
    pub fn iter_instances(&self) -> impl Iterator<Item = &InstanceType> {
        self.entries
            .iter()
            .flat_map(|(i, n)| std::iter::repeat_n(i, *n as usize))
    }

    /// Short label, e.g. `2×p2.xlarge+1×p2.8xlarge`.
    pub fn label(&self) -> String {
        if self.is_empty() {
            return "∅".to_string();
        }
        self.entries
            .iter()
            .map(|(i, n)| format!("{n}x{}", i.name))
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Enumerate every configuration drawing 0..=`max_per_type` instances of
/// each given type, excluding the empty configuration.
///
/// This is the exponential space the paper's §4.5.3 complexity argument
/// refers to: its size is `(max_per_type + 1)^types − 1`.
pub fn enumerate_configs(types: &[InstanceType], max_per_type: u32) -> Vec<ResourceConfig> {
    let mut out = Vec::new();
    let mut counts = vec![0u32; types.len()];
    loop {
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == types.len() {
                return out;
            }
            if counts[i] < max_per_type {
                counts[i] += 1;
                for c in counts.iter_mut().take(i) {
                    *c = 0;
                }
                break;
            }
            i += 1;
        }
        let mut cfg = ResourceConfig::empty();
        for (t, &n) in types.iter().zip(counts.iter()) {
            if n > 0 {
                cfg.add(t.clone(), n);
            }
        }
        out.push(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::catalog;

    #[test]
    fn add_merges_same_type() {
        let cat = catalog();
        let mut c = ResourceConfig::of(cat[0].clone(), 2);
        c.add(cat[0].clone(), 1);
        c.add(cat[1].clone(), 1);
        assert_eq!(c.entries.len(), 2);
        assert_eq!(c.instance_count(), 4);
        assert_eq!(c.total_gpus(), 3 + 8);
    }

    #[test]
    fn price_sums_eq1_style() {
        let cat = catalog();
        let mut c = ResourceConfig::of(cat[0].clone(), 3); // 3 × $0.9
        c.add(cat[3].clone(), 1); // $1.14
        assert!((c.total_price_per_hour() - (2.7 + 1.14)).abs() < 1e-9);
    }

    #[test]
    fn enumeration_count_is_exponential_formula() {
        let cat = catalog();
        // Paper Figure 9 setup: 3 p2 types, up to 3 instances each
        // -> 4^3 − 1 = 63 resource configurations.
        let p2: Vec<InstanceType> = cat.into_iter().filter(|i| i.family() == "p2").collect();
        let cfgs = enumerate_configs(&p2, 3);
        assert_eq!(cfgs.len(), 63);
        assert!(cfgs.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn enumeration_distinct() {
        let cat = catalog();
        let cfgs = enumerate_configs(&cat[..2], 2);
        assert_eq!(cfgs.len(), 8);
        let labels: std::collections::HashSet<String> = cfgs.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn iter_instances_flattens_counts() {
        let cat = catalog();
        let c = ResourceConfig::of(cat[0].clone(), 3);
        assert_eq!(c.iter_instances().count(), 3);
    }

    #[test]
    fn label_formats() {
        let cat = catalog();
        let mut c = ResourceConfig::of(cat[0].clone(), 2);
        c.add(cat[1].clone(), 1);
        assert_eq!(c.label(), "2xp2.xlarge+1xp2.8xlarge");
        assert_eq!(ResourceConfig::empty().label(), "∅");
    }
}
