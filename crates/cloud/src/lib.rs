//! # cap-cloud
//!
//! Cloud resource simulator standing in for the paper's Amazon EC2
//! testbed. The paper's own modelling layer is analytic (Eqs. 1–4 over
//! measured batch times); this crate supplies that layer plus the
//! resource substrate it needs:
//!
//! * [`instance`] — the Table 3 catalog: six GPU instance types from the
//!   p2 (NVIDIA K80) and g3 (NVIDIA M60) families, with vCPU/GPU/memory
//!   specs and hourly prices.
//! * [`gpu`] — a GPU batch-saturation model calibrated to Figure 5
//!   (throughput saturates near 300 parallel inferences on a K80).
//! * [`pricing`] — pay-per-use cost, pro-rated to the nearest second as
//!   EC2 bills (§4.1.2).
//! * [`config`] — resource configurations `R` (multisets of instances)
//!   and bounded enumeration of the configuration space `G`.
//! * [`execsim`] — execution simulation: distribute `W` images over a
//!   configuration (Eq. 4), compute inference time (Eqs. 2–3) and cost
//!   (Eq. 1).
//! * [`measurement`] — the paper's §3.3 methodology: run each experiment
//!   three times under simulated virtualization jitter, record the
//!   minimum.
//! * [`scaling`] — Amdahl/Gustafson baselines plus the measured
//!   [`EfficiencyCurve`]: multi-GPU instance throughput defaults to a
//!   calibrated sub-linear model, with the paper's ideal split retained
//!   as [`GpuScaling::Ideal`] (paper-fidelity mode).

#![warn(missing_docs)]

pub mod config;
pub mod execsim;
pub mod gpu;
pub mod instance;
pub mod measurement;
pub mod pricing;
pub mod scaling;

pub use config::{enumerate_configs, ResourceConfig};
pub use execsim::{simulate, simulate_with, AppExecModel, Distribution, ExecutionEstimate};
pub use gpu::BatchModel;
pub use instance::{by_name, catalog, GpuKind, InstanceType};
pub use measurement::MeasurementHarness;
pub use pricing::{cost_per_1k_inferences, cost_usd, cost_usd_with, BillingModel};
pub use scaling::{
    amdahl_speedup, fixed_workload_curve, gustafson_speedup, EfficiencyCurve, GpuScaling,
    ScalingPoint, CALIBRATED_PARALLEL_FRACTION,
};
