//! Data-parallel inference engine — measured multi-worker execution.
//!
//! The paper's cost model (Eqs. 1–4) assumes a batched workload divides
//! cleanly across GPUs and instances; [`crate::inference::run_batched`]
//! gave us the single-worker measurement. This module adds the parallel
//! counterpart: a [`ParallelEngine`] shards the *chunk sequence* of a
//! batched workload across a fixed pool of OS threads (via the
//! `rayon::scope` fork-join primitive), so strong-scaling efficiency can
//! be measured rather than assumed, and fed back into `cap-cloud`'s
//! execution simulator as a calibrated efficiency curve.
//!
//! # Determinism
//!
//! Output ordering and *values* are bitwise-identical to the sequential
//! path. The engine reproduces exactly the chunk boundaries
//! `run_batched` would use (`batch`-sized, trailing partial chunk
//! as-is), assigns each worker a contiguous run of chunks, and every
//! output image is written by exactly one worker into its own disjoint
//! slice of the result. Per-worker state — the staging chunk tensor and
//! the [`ForwardArena`] — is checked out of an engine-owned pool, so
//! workers share no mutable state and repeat runs reuse the grown
//! buffers (the zero-allocation steady state of the sequential path,
//! times the worker count).
//!
//! The bitwise-equality claim is demonstrated in the
//! [`ParallelEngine::run_batched`] doctest and verified property-based
//! in `crates/cnn/tests/parallel_parity.rs`, with the sequential
//! arena-vs-allocating half covered by `crates/cnn/tests/arena_parity.rs`.

use crate::inference::ThroughputReport;
use crate::network::{ForwardArena, Network};
use cap_obs::{NoopTracer, SpanInfo, SpanScope, Tracer};
use cap_tensor::{Tensor4, TensorResult};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock account of one worker's share of a parallel run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Worker index in `0..engine.workers()`.
    pub worker: usize,
    /// Chunks (forward passes) this worker executed.
    pub chunks: usize,
    /// Images this worker produced outputs for.
    pub images: usize,
    /// Seconds the worker spent inside its chunk loop.
    pub busy_s: f64,
}

/// Merged result of a parallel batched run: the overall throughput plus
/// the per-worker breakdown it was assembled from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Whole-run throughput, directly comparable with the report
    /// returned by [`crate::inference::run_batched`].
    pub throughput: ThroughputReport,
    /// One entry per engine worker, including idle workers (zero chunks)
    /// when there were more workers than chunks.
    pub workers: Vec<WorkerReport>,
}

impl InferenceReport {
    /// Fraction of total worker-seconds actually spent computing:
    /// `Σ busy / (wall · workers)`. 1.0 is perfect strong scaling; the
    /// gap to 1.0 is load imbalance plus spawn/join overhead.
    pub fn parallel_efficiency(&self) -> f64 {
        let wall = self.throughput.wall_s;
        if wall <= 0.0 || self.workers.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy_s).sum();
        (busy / (wall * self.workers.len() as f64)).min(1.0)
    }

    /// The critical-path worker time (slowest worker's busy seconds).
    pub fn critical_path_s(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_s).fold(0.0, f64::max)
    }
}

/// What one worker hands back at join: its reusable state plus either
/// `(images_done, busy_s)` or the first error it hit.
type WorkerOutcome = (WorkerState, TensorResult<(usize, f64)>);

/// Per-worker reusable state: the staging chunk and the activation arena.
struct WorkerState {
    chunk: Tensor4,
    arena: ForwardArena,
}

impl Default for WorkerState {
    fn default() -> Self {
        Self {
            chunk: Tensor4::zeros(0, 0, 0, 0),
            arena: ForwardArena::new(),
        }
    }
}

/// A fixed-width data-parallel executor for batched inference.
///
/// The engine owns no network — it is a reusable harness that runs any
/// [`Network`] over any image set. Worker state (chunk buffers and
/// [`ForwardArena`]s) is pooled inside the engine, so a long-lived
/// engine reaches the same zero-allocation steady state per worker that
/// the sequential driver reaches globally.
///
/// ```
/// use cap_cnn::layer::ReluLayer;
/// use cap_cnn::{run_batched, Network, ParallelEngine};
/// use cap_tensor::Tensor4;
///
/// let mut net = Network::new("id", (2, 4, 4));
/// net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
/// let images = Tensor4::from_fn(5, 2, 4, 4, |n, c, h, w| (n + c + h + w) as f32 - 4.0);
///
/// let engine = ParallelEngine::new(2);
/// let (par, report) = engine.run_batched(&net, &images, 2).unwrap();
/// let (seq, _) = run_batched(&net, &images, 2).unwrap();
/// assert_eq!(par, seq); // bitwise-identical, in order
/// assert_eq!(report.workers.len(), 2);
/// ```
pub struct ParallelEngine {
    workers: usize,
    pool: Mutex<Vec<WorkerState>>,
}

impl ParallelEngine {
    /// An engine with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// An engine sized to the host's available hardware parallelism.
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run inference over `images` in batches of `batch`, sharded across
    /// the engine's workers.
    ///
    /// Returns per-image outputs in input order — bitwise-identical to
    /// [`crate::inference::run_batched`] on the same network, images and
    /// batch size — plus an [`InferenceReport`] merging the whole-run
    /// throughput with per-worker timing. The doctest below demonstrates
    /// the bitwise equality; the property-based suites in
    /// `crates/cnn/tests/parallel_parity.rs` (engine vs sequential
    /// driver, arbitrary shapes/batches/worker counts) and
    /// `crates/cnn/tests/arena_parity.rs` (arena path vs the allocating
    /// path) pin it down across the input space.
    ///
    /// ```
    /// use cap_cnn::layer::ReluLayer;
    /// use cap_cnn::{run_batched, Network, ParallelEngine};
    /// use cap_tensor::Tensor4;
    ///
    /// let mut net = Network::new("id", (1, 3, 3));
    /// net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
    /// let images = Tensor4::from_fn(7, 1, 3, 3, |n, _, h, w| (n + h * w) as f32 - 3.5);
    ///
    /// let (seq, _) = run_batched(&net, &images, 3).unwrap();
    /// for workers in 1..=4 {
    ///     let (par, _) = ParallelEngine::new(workers).run_batched(&net, &images, 3).unwrap();
    ///     assert_eq!(par, seq); // bitwise equal, not approximately equal
    /// }
    /// ```
    pub fn run_batched(
        &self,
        net: &Network,
        images: &Tensor4,
        batch: usize,
    ) -> TensorResult<(Vec<Vec<f32>>, InferenceReport)> {
        self.run_batched_traced(net, images, batch, &NoopTracer)
    }

    /// [`ParallelEngine::run_batched`] with observability hooks: every
    /// worker reports one [`SpanScope::Worker`] span covering its chunk
    /// loop (`index` = worker id, `shape` = `[images, chunks, batch, 0]`),
    /// and each forward pass inside the worker emits the usual per-layer
    /// spans via [`Network::forward_into_traced`] — all into the shared
    /// `tracer`, which therefore must tolerate concurrent reporting (a
    /// [`cap_obs::CollectingTracer`] or [`cap_obs::FlightRecorder`]
    /// does).
    ///
    /// Workers run on fresh OS threads (the `rayon::scope` shim spawns
    /// one per worker), and recording tracers stamp each span with the
    /// reporting thread's [`cap_obs::current_tid`] — so in a collected
    /// trace every worker's spans land on their own thread track, with
    /// the per-layer spans nested inside that worker's
    /// [`SpanScope::Worker`] span by time containment.
    ///
    /// With [`NoopTracer`] this is exactly [`ParallelEngine::run_batched`]:
    /// the no-op instrumentation monomorphizes away.
    pub fn run_batched_traced<T: Tracer>(
        &self,
        net: &Network,
        images: &Tensor4,
        batch: usize,
        tracer: &T,
    ) -> TensorResult<(Vec<Vec<f32>>, InferenceReport)> {
        let n = images.n();
        let batch = batch.max(1);
        let n_chunks = n.div_ceil(batch);
        let active = self.workers.min(n_chunks);

        // Contiguous chunk ranges per active worker, balanced to within
        // one chunk: the first `n_chunks % active` workers take one extra.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(active);
        if let (Some(per), Some(extra)) =
            (n_chunks.checked_div(active), n_chunks.checked_rem(active))
        {
            let mut c = 0;
            for w in 0..active {
                let take = per + usize::from(w < extra);
                ranges.push((c, c + take));
                c += take;
            }
        }

        let mut outputs: Vec<Vec<f32>> = vec![Vec::new(); n];
        // Disjoint per-worker output slices (chunk ranges are contiguous
        // in image space).
        let mut parts: Vec<&mut [Vec<f32>]> = Vec::with_capacity(active);
        let mut rest: &mut [Vec<f32>] = &mut outputs;
        for &(c0, c1) in &ranges {
            let img_span = (c1 * batch).min(n) - c0 * batch;
            let (head, tail) = rest.split_at_mut(img_span);
            parts.push(head);
            rest = tail;
        }

        let states: Vec<WorkerState> = {
            let mut pool = self.pool.lock();
            (0..active)
                .map(|_| pool.pop().unwrap_or_default())
                .collect()
        };
        let mut results: Vec<Option<WorkerOutcome>> = (0..active).map(|_| None).collect();

        let start = Instant::now();
        rayon::scope(|s| {
            for (w, (((slot, out_slice), mut state), &(c0, c1))) in results
                .iter_mut()
                .zip(parts)
                .zip(states)
                .zip(ranges.iter())
                .enumerate()
            {
                s.spawn(move || {
                    let r = run_chunk_range(
                        net, images, batch, c0, c1, &mut state, out_slice, w, tracer,
                    );
                    *slot = Some((state, r));
                });
            }
        });
        let wall_s = start.elapsed().as_secs_f64();

        let mut worker_reports = Vec::with_capacity(self.workers);
        let mut first_err = None;
        {
            let mut pool = self.pool.lock();
            for (w, slot) in results.into_iter().enumerate() {
                let (state, outcome) = slot.expect("scope joins every spawned worker");
                pool.push(state);
                match outcome {
                    Ok((images_done, busy_s)) => worker_reports.push(WorkerReport {
                        worker: w,
                        chunks: ranges[w].1 - ranges[w].0,
                        images: images_done,
                        busy_s,
                    }),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Idle workers (more workers than chunks) appear with zero work
        // so reports always have `self.workers` entries.
        for w in active..self.workers {
            worker_reports.push(WorkerReport {
                worker: w,
                chunks: 0,
                images: 0,
                busy_s: 0.0,
            });
        }

        Ok((
            outputs,
            InferenceReport {
                throughput: ThroughputReport {
                    images: n,
                    batch,
                    wall_s,
                    images_per_s: if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
                },
                workers: worker_reports,
            },
        ))
    }

    /// Serving hand-off: execute one already-formed batch (`chunk` is
    /// the batch, images along `n`) and return its per-image outputs.
    ///
    /// This is the entry point the `cap-serve` router dispatches
    /// through: the router owns batch formation (queues, deadlines,
    /// admission), the engine owns execution. The call checks out one
    /// pooled `WorkerState` — sharing the same arena pool as
    /// [`ParallelEngine::run_batched`] — so a long-lived serving
    /// process reaches the usual zero-allocation steady state once the
    /// pool has seen the largest batch shape in flight.
    ///
    /// Outputs are bitwise-identical to running the same images through
    /// [`crate::inference::run_batched`] in any batch grouping (the
    /// repo-wide batching-invariance contract); the serving parity test
    /// in `crates/serve/tests/serve_parity.rs` pins this down
    /// end-to-end.
    ///
    /// ```
    /// use cap_cnn::layer::ReluLayer;
    /// use cap_cnn::{run_batched, Network, ParallelEngine};
    /// use cap_tensor::Tensor4;
    ///
    /// let mut net = Network::new("id", (1, 3, 3));
    /// net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
    /// let batch = Tensor4::from_fn(4, 1, 3, 3, |n, _, h, w| (n + h * w) as f32 - 3.5);
    ///
    /// let engine = ParallelEngine::new(2);
    /// let out = engine.run_chunk(&net, &batch).unwrap();
    /// let (seq, _) = run_batched(&net, &batch, 4).unwrap();
    /// assert_eq!(out, seq);
    /// ```
    pub fn run_chunk(&self, net: &Network, chunk: &Tensor4) -> TensorResult<Vec<Vec<f32>>> {
        let mut state = {
            let mut pool = self.pool.lock();
            pool.pop().unwrap_or_default()
        };
        let result = match net.forward_into(chunk, &mut state.arena) {
            Ok(y) => Ok((0..chunk.n()).map(|j| y.image(j).to_vec()).collect()),
            Err(e) => Err(e),
        };
        self.pool.lock().push(state);
        result
    }
}

/// One worker's loop: execute chunks `c0..c1`, writing per-image outputs
/// into `out` (indexed relative to the range's first image). Reports one
/// [`SpanScope::Worker`] span covering the whole loop to `tracer`.
#[allow(clippy::too_many_arguments)]
fn run_chunk_range<T: Tracer>(
    net: &Network,
    images: &Tensor4,
    batch: usize,
    c0: usize,
    c1: usize,
    state: &mut WorkerState,
    out: &mut [Vec<f32>],
    worker: usize,
    tracer: &T,
) -> TensorResult<(usize, f64)> {
    let n = images.n();
    let (c, h, w) = (images.c(), images.h(), images.w());
    let base = c0 * batch;
    // Mark this thread as a data-parallel worker for the duration of
    // its chunk loop: `DagMode::Auto` then keeps the forward passes
    // below sequential instead of stacking node-parallel threads on
    // top of the engine's (`CAP_CNN_DAG=on` still overrides).
    let _dag_guard = crate::dag::EngineWorkerGuard::enter();
    let busy = Instant::now();
    let mut images_done = 0usize;
    for chunk_idx in c0..c1 {
        let i = chunk_idx * batch;
        let take = batch.min(n - i);
        state.chunk.resize(take, c, h, w);
        for j in 0..take {
            state
                .chunk
                .image_mut(j)
                .copy_from_slice(images.image(i + j));
        }
        let y = net.forward_into_traced(&state.chunk, &mut state.arena, tracer)?;
        for j in 0..take {
            out[i - base + j] = y.image(j).to_vec();
        }
        images_done += take;
    }
    let elapsed = busy.elapsed();
    if tracer.enabled() {
        tracer.span_exit(
            &SpanInfo {
                scope: SpanScope::Worker,
                name: "worker",
                kind: "",
                shape: [images_done, c1 - c0, batch, 0],
                index: worker,
            },
            elapsed,
        );
    }
    Ok((images_done, elapsed.as_secs_f64()))
}

/// Measured strong-scaling profile: run the same `batch`-sized workload
/// under each worker count and report `(workers, images_per_s)`.
///
/// This is the engine-side measurement that calibrates
/// `cap-cloud`'s efficiency curve (`EfficiencyCurve::fit` over the
/// returned series): the simulator's per-GPU ideal split is replaced by
/// the sub-linear speedup actually observed here. Protocol per §3.3 of
/// the paper: warm-up run at the measured configuration, then three
/// timed runs keeping the fastest.
pub fn strong_scaling(
    net: &Network,
    images: &Tensor4,
    batch: usize,
    worker_counts: &[usize],
) -> TensorResult<Vec<(usize, f64)>> {
    worker_counts
        .iter()
        .map(|&wc| {
            let engine = ParallelEngine::new(wc);
            // Warm-up faults weights in and grows the per-worker arenas.
            let _ = engine.run_batched(net, images, batch)?;
            let mut best = 0.0_f64;
            for _ in 0..3 {
                let (_, report) = engine.run_batched(net, images, batch)?;
                best = best.max(report.throughput.images_per_s);
            }
            Ok((wc, best))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::run_batched;
    use crate::layer::{ConvLayer, PoolLayer, PoolMode, ReluLayer};
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    fn small_net() -> Network {
        let mut net = Network::new("t", (2, 8, 8));
        let p = Conv2dParams::new(2, 4, 3, 1, 1);
        net.add_sequential(Box::new(
            ConvLayer::new("c1", p, xavier_uniform(4, 18, 3), vec![0.0; 4]).unwrap(),
        ))
        .unwrap();
        net.add_sequential(Box::new(ReluLayer::new("r1"))).unwrap();
        net.add_sequential(Box::new(PoolLayer::new("p1", PoolMode::Max, 2, 0, 2)))
            .unwrap();
        net
    }

    fn images(n: usize) -> Tensor4 {
        Tensor4::from_fn(n, 2, 8, 8, |i, c, h, w| {
            ((i * 5 + c * 3 + h + w) % 7) as f32 - 3.0
        })
    }

    #[test]
    fn matches_sequential_bitwise() {
        let net = small_net();
        let imgs = images(10);
        let (seq, _) = run_batched(&net, &imgs, 3).unwrap();
        for workers in [1, 2, 3, 4] {
            let engine = ParallelEngine::new(workers);
            let (par, _) = engine.run_batched(&net, &imgs, 3).unwrap();
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn report_accounts_every_chunk_and_image() {
        let net = small_net();
        let imgs = images(11);
        let engine = ParallelEngine::new(3);
        let (out, report) = engine.run_batched(&net, &imgs, 2).unwrap();
        assert_eq!(out.len(), 11);
        assert_eq!(report.workers.len(), 3);
        let chunks: usize = report.workers.iter().map(|w| w.chunks).sum();
        let images: usize = report.workers.iter().map(|w| w.images).sum();
        assert_eq!(chunks, 6); // ceil(11/2)
        assert_eq!(images, 11);
        assert!(report.throughput.images_per_s > 0.0);
        let eff = report.parallel_efficiency();
        assert!((0.0..=1.0).contains(&eff), "efficiency {eff}");
        assert!(report.critical_path_s() <= report.throughput.wall_s * 1.5);
    }

    #[test]
    fn more_workers_than_images_still_exact() {
        let net = small_net();
        let imgs = images(2);
        let (seq, _) = run_batched(&net, &imgs, 1).unwrap();
        let engine = ParallelEngine::new(8);
        let (par, report) = engine.run_batched(&net, &imgs, 1).unwrap();
        assert_eq!(par, seq);
        assert_eq!(report.workers.len(), 8);
        assert_eq!(report.workers.iter().filter(|w| w.chunks > 0).count(), 2);
    }

    #[test]
    fn zero_images_is_empty_run() {
        let net = small_net();
        let imgs = images(0);
        let engine = ParallelEngine::new(4);
        let (out, report) = engine.run_batched(&net, &imgs, 4).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.throughput.images, 0);
        assert!(report.workers.iter().all(|w| w.chunks == 0));
    }

    #[test]
    fn engine_state_pool_recycles_across_runs() {
        let net = small_net();
        let imgs = images(8);
        let engine = ParallelEngine::new(2);
        let (a, _) = engine.run_batched(&net, &imgs, 2).unwrap();
        // Second run draws the same worker states back out of the pool.
        let (b, _) = engine.run_batched(&net, &imgs, 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.pool.lock().len(), 2);
    }

    #[test]
    fn wrong_input_shape_propagates_error() {
        let net = small_net();
        let bad = Tensor4::zeros(4, 3, 8, 8);
        let engine = ParallelEngine::new(2);
        assert!(engine.run_batched(&net, &bad, 2).is_err());
    }

    #[test]
    fn strong_scaling_reports_all_counts() {
        let net = small_net();
        let imgs = images(12);
        let series = strong_scaling(&net, &imgs, 4, &[1, 2]).unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|&(_, r)| r > 0.0));
    }
}
