//! # cap-cnn
//!
//! A Caffe-like CNN inference framework built on [`cap_tensor`], providing
//! the application substrate of the paper: Caffenet (Table 1 / Figure 1)
//! and Googlenet, executed layer by layer with per-layer wall-clock
//! timing — the instrument behind the paper's Figure 3 measurement.
//!
//! * [`layer`] — the [`Layer`] trait and every layer type
//!   the two models need (convolution with a sparse fast path for pruned
//!   weights, inner product, ReLU, max/avg pooling, LRN, channel concat,
//!   dropout, softmax).
//! * [`network`] — a DAG executor with topological scheduling and a
//!   timing collector.
//! * [`fusion`] — the `CAP_TENSOR_FUSION` mode governing the executor's
//!   graph-level `conv → relu` / `fc → relu` fusion pass (bitwise
//!   identical either way; `auto` fuses).
//! * [`models`] — Caffenet, Googlenet and the small trainable `TinyNet`.
//! * [`accuracy`] — top-1 / top-5 metrics as defined in §3.2.2 of the
//!   paper.
//! * [`train`] — SGD with momentum and backprop for the TinyNet path, so
//!   accuracy-vs-pruning curves can be *measured*, not just modelled.
//! * [`parallel`] — the data-parallel inference engine: a worker pool
//!   sharding batched workloads with bitwise-deterministic outputs, and
//!   the strong-scaling measurement that calibrates `cap-cloud`'s
//!   efficiency curve.
//! * [`dag`] — intra-network DAG-parallel execution for batch-1
//!   latency: the `CAP_CNN_DAG` mode, the explicit [`DagExecutor`], and
//!   the [`CriticalPathReport`] latency-floor analyzer (bitwise
//!   identical to the sequential schedule either way).

#![warn(missing_docs)]

pub mod accuracy;
pub mod dag;
pub mod fusion;
pub mod inference;
pub mod layer;
pub mod models;
pub mod network;
pub mod parallel;
pub mod train;

pub use accuracy::{evaluate_topk, AccuracyReport};
pub use dag::{CriticalPathReport, DagExecutor, DagMode};
pub use fusion::FusionMode;
pub use inference::{parallel_scaling, run_and_score, run_batched, ThroughputReport};
pub use layer::{Layer, LayerKind};
pub use network::{ForwardArena, ForwardRecord, LayerTiming, Network, NodeId};
pub use parallel::{strong_scaling, InferenceReport, ParallelEngine, WorkerReport};

// Observability vocabulary (tracers, span scopes) used by the traced
// entry points, re-exported so callers need not name `cap_obs` directly.
pub use cap_obs::{
    CollectingTracer, DagSummary, FlightRecorder, NoopTracer, ProfileReport, TeeTracer, Tracer,
};
