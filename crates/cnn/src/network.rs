//! DAG network executor with per-layer wall-clock timing.
//!
//! A [`Network`] is a directed acyclic graph of layers. Nodes are added in
//! topological order (each node may only reference earlier nodes or the
//! network input), which is how Caffe prototxts are written too. The
//! executor runs nodes in insertion order, records per-layer durations,
//! and frees intermediate activations as soon as their last consumer has
//! run — Googlenet at batch 32 would otherwise hold hundreds of MB.

use crate::dag::{self, DagMode};
use crate::fusion::{self, FusionMode};
use crate::layer::{ChwShape, Layer, LayerKind};
use cap_obs::{NoopTracer, SpanInfo, SpanScope, Tracer};
use cap_tensor::{CalibrationMethod, Matrix, ShapeError, Tensor4, TensorResult};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identifier of a node within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Sentinel input reference: the network's input tensor.
pub const INPUT: NodeId = NodeId(usize::MAX);

struct Node {
    layer: Box<dyn Layer>,
    inputs: Vec<NodeId>,
}

/// One unit of work in a fusion [`Plan`]: run node `node`, optionally
/// absorbing the ReLU node `fused_relu` into its kernel epilogue.
struct ExecStep {
    node: usize,
    fused_relu: Option<usize>,
}

/// Cached execution schedule for [`Network::forward_into_traced`].
///
/// Built once per `(network, fusion mode)` pair by pattern-matching
/// `conv → relu` / `fc → relu` chains; a fused ReLU node disappears as
/// a step and its output aliases its producer's arena slot
/// (`slot_of`), so the ReLU's own activation buffer is never sized —
/// the arena high-water mark drops by exactly those activations.
struct Plan {
    steps: Vec<ExecStep>,
    /// Arena slot holding node `i`'s output (fused ReLUs alias their
    /// producer's slot; every other node owns its own slot).
    slot_of: Vec<usize>,
    /// Number of fused producer→ReLU pairs, published to the
    /// `fused_layers` gauge.
    fused_count: u64,
    /// Step-level dependency graph: `succs[s]` lists the steps that
    /// consume step `s`'s output (deduplicated). Drives the DAG
    /// scheduler's indegree handoff.
    succs: Vec<Vec<usize>>,
    /// Initial indegree per step — the number of *distinct producer
    /// steps* it waits on (the network input counts as always-ready).
    indeg: Vec<u32>,
    /// Maximum number of steps sharing a dependency depth: the branch
    /// parallelism available to the DAG scheduler. 1 for a pure chain,
    /// 4 inside a Googlenet inception module. `DagMode::Auto` engages
    /// the parallel scheduler only when this exceeds 1.
    width: usize,
}

impl Plan {
    /// Derive the step-level dependency graph (`succs`, `indeg`,
    /// `width`) from the chosen steps. A fused ReLU is *inside* its
    /// producer's step, so consumers of either node depend on that one
    /// step; duplicate edges (a concat reading one producer twice)
    /// collapse to a single indegree count.
    fn finalize(&mut self, nodes: &[Node]) {
        let n_steps = self.steps.len();
        // Node index → the step whose execution produces its output.
        let mut step_of_node = vec![0usize; nodes.len()];
        for (s, step) in self.steps.iter().enumerate() {
            step_of_node[step.node] = s;
            if let Some(r) = step.fused_relu {
                step_of_node[r] = s;
            }
        }
        self.succs = vec![Vec::new(); n_steps];
        self.indeg = vec![0u32; n_steps];
        let mut level = vec![0usize; n_steps];
        let mut deps: Vec<usize> = Vec::new();
        for (s, step) in self.steps.iter().enumerate() {
            deps.clear();
            for &inp in &nodes[step.node].inputs {
                if inp != INPUT {
                    deps.push(step_of_node[self.slot_of[inp.0]]);
                }
            }
            deps.sort_unstable();
            deps.dedup();
            for &d in &deps {
                self.succs[d].push(s);
                self.indeg[s] += 1;
                level[s] = level[s].max(level[d] + 1);
            }
        }
        let mut per_level = vec![0usize; n_steps + 1];
        let mut width = 0;
        for &l in &level {
            per_level[l] += 1;
            width = width.max(per_level[l]);
        }
        self.width = width;
    }
}

/// Shared mutable view of the arena's slot vector, handed to the DAG
/// scheduler's worker threads (and, for code unity, the sequential
/// loop).
///
/// Safety rests on three invariants, upheld by every user:
/// 1. the `Vec<Tensor4>` is pre-sized before the pointer is taken and
///    never resized while it is live (individual tensors may grow their
///    *own* heap buffers — that never moves the outer vector);
/// 2. each plan step is executed by exactly one thread, which is the
///    only writer of that step's slot, ever;
/// 3. a step runs only after all its producers' completion decrements
///    (`AcqRel` on the indegree atomics, or the queue mutex), so
///    producer slots are fully written and quiescent when read.
#[derive(Clone, Copy)]
struct SlotsPtr {
    ptr: *mut Tensor4,
}

// SAFETY: see the struct docs — exclusive-writer and handoff-ordering
// invariants make cross-thread sharing of the raw pointer sound.
unsafe impl Send for SlotsPtr {}
unsafe impl Sync for SlotsPtr {}

/// Shared state of one DAG-parallel pass: the ready queue plus the
/// indegree handoff counters.
struct DagRun {
    /// Steps whose dependencies are all satisfied, awaiting a worker.
    queue: Mutex<VecDeque<usize>>,
    /// Signalled on every push, on abort, and when the pass completes.
    ready: Condvar,
    /// Per-step countdown of unfinished producers; the worker that
    /// decrements one to zero owns (or enqueues) that step.
    indeg: Vec<AtomicU32>,
    /// Steps not yet completed; 0 means the pass is done.
    remaining: AtomicUsize,
    /// Set on the first kernel error; workers drain and exit.
    abort: AtomicBool,
    /// The first error observed (kernel errors are all shape errors and
    /// deterministic, so "first" is stable in practice).
    failed: Mutex<Option<ShapeError>>,
    /// Queue round-trips, flushed to `dag_queue_pushes` once per pass.
    pushes: AtomicU64,
    /// Steps run via the chained fast path (a finishing worker directly
    /// executes the first successor it made ready), flushed to
    /// `dag_chained_steps`.
    chained: AtomicU64,
}

/// Span kind tag for a fused step: the producer's tag plus the ReLU it
/// absorbed, so profiles show `conv+relu` / `fc+relu` rows and the
/// per-layer report can mark them fused.
fn fused_kind_tag(kind: LayerKind) -> &'static str {
    match kind {
        LayerKind::Convolution => "conv+relu",
        LayerKind::InnerProduct => "fc+relu",
        _ => "fused+relu",
    }
}

/// Wall-clock duration attributed to one layer during a forward pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Layer name.
    pub name: String,
    /// Layer kind tag (`conv`, `fc`, ...).
    pub kind: String,
    /// Time spent inside `Layer::forward`.
    pub duration: Duration,
}

/// Result of a timed forward pass.
#[derive(Debug)]
pub struct ForwardRecord {
    /// Final output tensor (the last node's output).
    pub output: Tensor4,
    /// Per-layer durations in execution order.
    pub timings: Vec<LayerTiming>,
}

impl ForwardRecord {
    /// Total time across all layers.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }

    /// Fraction of total time spent in each layer, in execution order.
    /// Returns `(name, kind, fraction)` triples; fractions sum to 1.
    pub fn time_distribution(&self) -> Vec<(String, String, f64)> {
        let total = self.total_time().as_secs_f64();
        self.timings
            .iter()
            .map(|t| {
                let f = if total > 0.0 {
                    t.duration.as_secs_f64() / total
                } else {
                    0.0
                };
                (t.name.clone(), t.kind.clone(), f)
            })
            .collect()
    }
}

/// Reusable per-node activation storage for repeated forward passes.
///
/// [`Network::forward_into`] keeps one output tensor per node alive in
/// here; after the first pass every buffer has reached its steady-state
/// high-water mark and subsequent passes (same batch size) allocate
/// nothing. The trade-off versus [`Network::forward_timed`] is peak
/// memory: the arena retains *all* activations instead of freeing them
/// after their last consumer, which is the right call for the modest
/// batch sizes the batched-inference driver uses.
#[derive(Default)]
pub struct ForwardArena {
    slots: Vec<Tensor4>,
}

impl ForwardArena {
    /// Create an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes live across all activation slots (lower bound on what
    /// the arena retains; buffer capacity never shrinks below this).
    pub fn reserved_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|t| std::mem::size_of_val(t.as_slice()))
            .sum()
    }
}

/// A CNN expressed as a DAG of layers with a single input and a single
/// output (the last node).
pub struct Network {
    name: String,
    input_shape: ChwShape,
    nodes: Vec<Node>,
    by_name: HashMap<String, NodeId>,
    /// Cached fusion execution plan, keyed by the [`FusionMode`] that
    /// built it; invalidated whenever a layer is added. `Arc` so a
    /// forward pass clones a pointer out of the lock, not the plan.
    plan_cache: RwLock<Option<(FusionMode, Arc<Plan>)>>,
}

impl Network {
    /// Create an empty network for per-image input shape `(c, h, w)`.
    pub fn new(name: impl Into<String>, input_shape: ChwShape) -> Self {
        Self {
            name: name.into(),
            input_shape,
            nodes: Vec::new(),
            by_name: HashMap::new(),
            plan_cache: RwLock::new(None),
        }
    }

    /// Network name (e.g. `caffenet`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-image input shape `(c, h, w)`.
    pub fn input_shape(&self) -> ChwShape {
        self.input_shape
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a layer whose inputs are earlier nodes (or [`INPUT`]).
    ///
    /// Validates acyclicity (inputs must precede this node) and shape
    /// compatibility, and returns the new node's id.
    pub fn add_layer(&mut self, layer: Box<dyn Layer>, inputs: &[NodeId]) -> TensorResult<NodeId> {
        let id = NodeId(self.nodes.len());
        for &inp in inputs {
            if inp != INPUT && inp.0 >= id.0 {
                return Err(ShapeError::new(format!(
                    "network {}: node {} references later node {}",
                    self.name,
                    layer.name(),
                    inp.0
                )));
            }
        }
        if self.by_name.contains_key(layer.name()) {
            return Err(ShapeError::new(format!(
                "network {}: duplicate layer name {}",
                self.name,
                layer.name()
            )));
        }
        // Shape-check the whole prefix up to and including this layer.
        let in_shapes = self.resolve_shapes(inputs)?;
        layer.out_shape(&in_shapes)?;
        self.by_name.insert(layer.name().to_string(), id);
        self.nodes.push(Node {
            layer,
            inputs: inputs.to_vec(),
        });
        // The fusion plan is a function of the node list; rebuild lazily.
        *self.plan_cache.write() = None;
        Ok(id)
    }

    /// Append a layer consuming the previous node's output (or the network
    /// input if this is the first layer) — the common sequential case.
    pub fn add_sequential(&mut self, layer: Box<dyn Layer>) -> TensorResult<NodeId> {
        let prev = if self.nodes.is_empty() {
            INPUT
        } else {
            NodeId(self.nodes.len() - 1)
        };
        self.add_layer(layer, &[prev])
    }

    fn resolve_shapes(&self, inputs: &[NodeId]) -> TensorResult<Vec<ChwShape>> {
        inputs
            .iter()
            .map(|&id| {
                if id == INPUT {
                    Ok(self.input_shape)
                } else {
                    self.shape_of(id)
                }
            })
            .collect()
    }

    /// Per-image output shape of node `id`, derived by walking the DAG.
    pub fn shape_of(&self, id: NodeId) -> TensorResult<ChwShape> {
        if id == INPUT {
            return Ok(self.input_shape);
        }
        // Compute shapes for all nodes up to `id` (cheap: pure arithmetic).
        let mut shapes: Vec<ChwShape> = Vec::with_capacity(id.0 + 1);
        for node in &self.nodes[..=id.0] {
            let in_shapes: Vec<ChwShape> = node
                .inputs
                .iter()
                .map(|&i| {
                    if i == INPUT {
                        self.input_shape
                    } else {
                        shapes[i.0]
                    }
                })
                .collect();
            shapes.push(node.layer.out_shape(&in_shapes)?);
        }
        Ok(shapes[id.0])
    }

    /// Per-image output shape of the network (last node).
    pub fn output_shape(&self) -> TensorResult<ChwShape> {
        if self.nodes.is_empty() {
            return Ok(self.input_shape);
        }
        self.shape_of(NodeId(self.nodes.len() - 1))
    }

    /// Look up a node id by layer name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Immutable access to a layer by name.
    pub fn layer(&self, name: &str) -> Option<&dyn Layer> {
        self.node_id(name).map(|id| self.nodes[id.0].layer.as_ref())
    }

    /// Mutable access to a layer by name (used by pruning to swap weights).
    pub fn layer_mut(&mut self, name: &str) -> Option<&mut (dyn Layer + 'static)> {
        let id = self.node_id(name)?;
        Some(self.nodes[id.0].layer.as_mut())
    }

    /// Iterate layer names in execution order.
    pub fn layer_names(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(|n| n.layer.name())
    }

    /// Names of all layers of a given kind, in execution order. The paper
    /// prunes `kind == Convolution` layers only.
    pub fn layers_of_kind(&self, kind: LayerKind) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|n| n.layer.kind() == kind)
            .map(|n| n.layer.name().to_string())
            .collect()
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.layer.param_count()).sum()
    }

    /// Total MACs per image, summed across layers.
    pub fn macs_per_image(&self) -> TensorResult<u64> {
        let mut shapes: Vec<ChwShape> = Vec::with_capacity(self.nodes.len());
        let mut total = 0u64;
        for node in &self.nodes {
            let in_shapes: Vec<ChwShape> = node
                .inputs
                .iter()
                .map(|&i| {
                    if i == INPUT {
                        self.input_shape
                    } else {
                        shapes[i.0]
                    }
                })
                .collect();
            total += node.layer.macs_per_image(&in_shapes)?;
            shapes.push(node.layer.out_shape(&in_shapes)?);
        }
        Ok(total)
    }

    /// Per-layer MACs per image, `(name, kind, macs)` in execution order.
    pub fn macs_by_layer(&self) -> TensorResult<Vec<(String, LayerKind, u64)>> {
        let mut shapes: Vec<ChwShape> = Vec::with_capacity(self.nodes.len());
        let mut out = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let in_shapes: Vec<ChwShape> = node
                .inputs
                .iter()
                .map(|&i| {
                    if i == INPUT {
                        self.input_shape
                    } else {
                        shapes[i.0]
                    }
                })
                .collect();
            out.push((
                node.layer.name().to_string(),
                node.layer.kind(),
                node.layer.macs_per_image(&in_shapes)?,
            ));
            shapes.push(node.layer.out_shape(&in_shapes)?);
        }
        Ok(out)
    }

    /// Run a forward pass, returning only the output tensor.
    ///
    /// ```
    /// use cap_cnn::layer::{PoolLayer, PoolMode, ReluLayer};
    /// use cap_cnn::Network;
    /// use cap_tensor::Tensor4;
    ///
    /// // relu → 2×2 max-pool over a 4-channel 8×8 input.
    /// let mut net = Network::new("demo", (4, 8, 8));
    /// net.add_sequential(Box::new(ReluLayer::new("relu"))).unwrap();
    /// net.add_sequential(Box::new(PoolLayer::new("pool", PoolMode::Max, 2, 0, 2)))
    ///     .unwrap();
    ///
    /// let x = Tensor4::from_fn(2, 4, 8, 8, |n, c, h, w| (n + c + h + w) as f32 - 8.0);
    /// let y = net.forward(&x).unwrap();
    /// assert_eq!(y.shape(), (2, 4, 4, 4));
    /// assert!(y.as_slice().iter().all(|&v| v >= 0.0)); // ReLU ran
    /// ```
    pub fn forward(&self, input: &Tensor4) -> TensorResult<Tensor4> {
        Ok(self.forward_timed(input)?.output)
    }

    /// Run a forward pass and record per-layer wall-clock durations —
    /// the measurement behind Figure 3.
    pub fn forward_timed(&self, input: &Tensor4) -> TensorResult<ForwardRecord> {
        if input.c() != self.input_shape.0
            || input.h() != self.input_shape.1
            || input.w() != self.input_shape.2
        {
            return Err(ShapeError::new(format!(
                "network {}: input shape {:?}, expected {:?}",
                self.name,
                (input.c(), input.h(), input.w()),
                self.input_shape
            )));
        }
        if self.nodes.is_empty() {
            return Ok(ForwardRecord {
                output: input.clone(),
                timings: Vec::new(),
            });
        }
        // Last consumer index per node so activations free eagerly.
        let mut last_use = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &inp in &node.inputs {
                if inp != INPUT {
                    last_use[inp.0] = i;
                }
            }
        }
        let mut activations: Vec<Option<Tensor4>> = (0..self.nodes.len()).map(|_| None).collect();
        let mut timings = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let input_refs: Vec<&Tensor4> = node
                .inputs
                .iter()
                .map(|&id| {
                    if id == INPUT {
                        input
                    } else {
                        activations[id.0]
                            .as_ref()
                            .expect("topological order guarantees producer ran and is retained")
                    }
                })
                .collect();
            let start = Instant::now();
            let out = node.layer.forward(&input_refs)?;
            timings.push(LayerTiming {
                name: node.layer.name().to_string(),
                kind: node.layer.kind().tag().to_string(),
                duration: start.elapsed(),
            });
            activations[i] = Some(out);
            // Drop activations nobody will read again.
            for (j, slot) in activations.iter_mut().enumerate().take(i) {
                if last_use[j] <= i && j != self.nodes.len() - 1 {
                    *slot = None;
                }
            }
        }
        let output = activations
            .pop()
            .flatten()
            .expect("last node output retained");
        Ok(ForwardRecord { output, timings })
    }

    /// Run a forward pass through a reusable activation arena — the
    /// zero-allocation steady-state path behind batched inference.
    ///
    /// Returns a reference to the output tensor, which lives in the
    /// arena (clone it if it must outlive the next pass). Layers write
    /// into per-node tensors retained across calls via
    /// [`Layer::forward_into`]; for purely sequential networks run on
    /// pre-packed dense weights, repeat passes at a fixed batch size
    /// perform no heap allocation at all (the fusion plan is built on
    /// the first pass and cached).
    ///
    /// This entry point honors the graph-level fusion pass (see
    /// [`crate::fusion`]): under `CAP_TENSOR_FUSION=auto` (the default)
    /// or `on`, eligible `conv → relu` / `fc → relu` chains execute as
    /// single fused steps, bitwise identical to the unfused schedule.
    /// [`Network::forward_timed`] always runs unfused — it is the
    /// per-layer measurement instrument, and fusing would blend the
    /// ReLU's time into its producer.
    pub fn forward_into<'a>(
        &self,
        input: &Tensor4,
        arena: &'a mut ForwardArena,
    ) -> TensorResult<&'a Tensor4> {
        self.forward_into_traced(input, arena, &NoopTracer)
    }

    /// [`Network::forward_into`] with observability hooks: one
    /// [`SpanScope::Layer`] span per executed step (tagged with the
    /// layer's name, kind tag and output NCHW shape) plus one enclosing
    /// [`SpanScope::Forward`] span, reported to `tracer`. A fused
    /// producer→ReLU pair is one step: its span carries the producer's
    /// name and a `conv+relu` / `fc+relu` kind tag, and the absorbed
    /// ReLU node emits no span of its own.
    ///
    /// Passing [`NoopTracer`] (what [`Network::forward_into`] does) is
    /// free: the monomorphized no-op path contains no clock reads and no
    /// allocation, preserving the zero-allocation steady state — the
    /// allocator-counting test in `tests/zero_alloc.rs` pins this down.
    /// Always-on metrics (`forward_passes`, `batch_sizes`,
    /// `arena_bytes` in [`cap_obs::metrics()`]) are single relaxed
    /// atomics; per-layer and whole-pass latency histograms fill only
    /// while [`cap_obs::timing_enabled()`] is on.
    ///
    /// ```
    /// use cap_cnn::layer::ReluLayer;
    /// use cap_cnn::network::{ForwardArena, Network};
    /// use cap_obs::{CollectingTracer, ProfileReport, SpanScope};
    /// use cap_tensor::Tensor4;
    ///
    /// let mut net = Network::new("demo", (1, 2, 2));
    /// net.add_sequential(Box::new(ReluLayer::new("relu"))).unwrap();
    ///
    /// let tracer = CollectingTracer::new();
    /// let mut arena = ForwardArena::new();
    /// let x = Tensor4::zeros(3, 1, 2, 2);
    /// net.forward_into_traced(&x, &mut arena, &tracer).unwrap();
    ///
    /// let spans = tracer.take_spans();
    /// assert_eq!(spans.iter().filter(|s| s.scope == SpanScope::Layer).count(), 1);
    /// assert_eq!(spans[0].name, "relu");
    /// assert_eq!(spans[0].shape, [3, 1, 2, 2]);
    /// let report = ProfileReport::from_spans("demo", &spans);
    /// assert_eq!(report.layers().len(), 1);
    /// ```
    pub fn forward_into_traced<'a, T: Tracer>(
        &self,
        input: &Tensor4,
        arena: &'a mut ForwardArena,
        tracer: &T,
    ) -> TensorResult<&'a Tensor4> {
        self.forward_into_traced_impl(input, arena, tracer, None)
    }

    /// [`crate::DagExecutor`] entry point: run the DAG-parallel
    /// scheduler unconditionally with an explicit worker-count cap,
    /// ignoring the process-wide [`DagMode`].
    pub(crate) fn forward_dag_traced<'a, T: Tracer>(
        &self,
        input: &Tensor4,
        arena: &'a mut ForwardArena,
        tracer: &T,
        workers: usize,
    ) -> TensorResult<&'a Tensor4> {
        self.forward_into_traced_impl(input, arena, tracer, Some(workers))
    }

    /// Input references of node `i` (possibly [`INPUT`]), in
    /// declaration order. The critical-path analyzer walks the DAG
    /// through this.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn inputs_of(&self, i: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[i].inputs.iter().copied()
    }

    /// Build the execution schedule for `mode`.
    ///
    /// A ReLU node `r` is fused into its producer `p` when the pair is
    /// adjacent in execution order (`r = p + 1`), `r`'s only input is
    /// `p`, `p` opts in via [`Layer::supports_relu_fusion`], and `p` is
    /// consumed by nothing but `r` — otherwise another consumer would
    /// observe pre-ReLU activations that no longer exist anywhere.
    fn build_plan(&self, mode: FusionMode) -> Plan {
        let n = self.nodes.len();
        let mut slot_of: Vec<usize> = (0..n).collect();
        if !mode.enabled() {
            let mut plan = Plan {
                steps: (0..n)
                    .map(|i| ExecStep {
                        node: i,
                        fused_relu: None,
                    })
                    .collect(),
                slot_of,
                fused_count: 0,
                succs: Vec::new(),
                indeg: Vec::new(),
                width: 0,
            };
            plan.finalize(&self.nodes);
            return plan;
        }
        let mut consumers = vec![0usize; n];
        for node in &self.nodes {
            for &inp in &node.inputs {
                if inp != INPUT {
                    consumers[inp.0] += 1;
                }
            }
        }
        let mut steps = Vec::with_capacity(n);
        let mut fused_count = 0u64;
        let mut i = 0;
        while i < n {
            let fusible = i + 1 < n && {
                let relu = &self.nodes[i + 1];
                relu.layer.kind() == LayerKind::Relu
                    && relu.inputs.as_slice() == [NodeId(i)]
                    && self.nodes[i].layer.supports_relu_fusion()
                    && consumers[i] == 1
            };
            if fusible {
                steps.push(ExecStep {
                    node: i,
                    fused_relu: Some(i + 1),
                });
                slot_of[i + 1] = i;
                fused_count += 1;
                i += 2;
            } else {
                steps.push(ExecStep {
                    node: i,
                    fused_relu: None,
                });
                i += 1;
            }
        }
        let mut plan = Plan {
            steps,
            slot_of,
            fused_count,
            succs: Vec::new(),
            indeg: Vec::new(),
            width: 0,
        };
        plan.finalize(&self.nodes);
        plan
    }

    /// Fetch (or build and cache) the plan for the current fusion mode.
    fn plan(&self, mode: FusionMode) -> Arc<Plan> {
        if let Some((m, p)) = self.plan_cache.read().as_ref() {
            if *m == mode {
                return Arc::clone(p);
            }
        }
        let built = Arc::new(self.build_plan(mode));
        *self.plan_cache.write() = Some((mode, Arc::clone(&built)));
        built
    }

    /// Decide whether this pass runs on the DAG scheduler, and with how
    /// many workers (`None` = the sequential schedule). `explicit` is
    /// the [`crate::DagExecutor`] override, which always schedules; the
    /// process-wide [`DagMode`] governs otherwise. Worker counts are
    /// clamped to the plan's width — extra workers would only park on
    /// the queue.
    fn dag_worker_count(&self, plan: &Plan, explicit: Option<usize>) -> Option<usize> {
        let width = plan.width.max(1);
        if let Some(w) = explicit {
            return Some(w.clamp(1, width));
        }
        match dag::selected() {
            DagMode::Off => None,
            DagMode::On => Some(dag::host_parallelism().clamp(1, width)),
            DagMode::Auto => {
                // Engage only where it can pay: real branch parallelism,
                // more than one core, and not already inside a
                // data-parallel engine worker (node-parallelism on top of
                // data-parallelism would oversubscribe the host).
                if plan.width > 1 && !dag::in_engine_worker() && dag::host_parallelism() > 1 {
                    Some(dag::host_parallelism().min(plan.width))
                } else {
                    None
                }
            }
        }
    }

    fn forward_into_traced_impl<'a, T: Tracer>(
        &self,
        input: &Tensor4,
        arena: &'a mut ForwardArena,
        tracer: &T,
        dag_workers: Option<usize>,
    ) -> TensorResult<&'a Tensor4> {
        if input.c() != self.input_shape.0
            || input.h() != self.input_shape.1
            || input.w() != self.input_shape.2
        {
            return Err(ShapeError::new(format!(
                "network {}: input shape {:?}, expected {:?}",
                self.name,
                (input.c(), input.h(), input.w()),
                self.input_shape
            )));
        }
        let metrics = cap_obs::metrics();
        metrics.forward_passes.inc();
        metrics.batch_sizes.record(input.n() as u64);
        // One relaxed load; both observability channels off is the
        // common case and costs exactly this branch.
        let timing = cap_obs::timing_enabled();
        let observing = tracer.enabled() || timing;
        let pass_start = if observing {
            Some(Instant::now())
        } else {
            None
        };

        let slots = self.nodes.len().max(1);
        if arena.slots.len() < slots {
            arena
                .slots
                .resize_with(slots, || Tensor4::zeros(0, 0, 0, 0));
        }
        if self.nodes.is_empty() {
            metrics.fused_layers.set(0);
            let (n, c, h, w) = input.shape();
            let out = &mut arena.slots[0];
            out.resize(n, c, h, w);
            out.as_mut_slice().copy_from_slice(input.as_slice());
            return Ok(&arena.slots[0]);
        }
        // Execute the fusion plan for the current mode. Fused ReLU nodes
        // are no steps of their own: their producer runs
        // `forward_into_fused` and their arena slot stays zero-sized.
        let plan = self.plan(fusion::selected());
        metrics.fused_layers.set(plan.fused_count);
        match self.dag_worker_count(&plan, dag_workers) {
            Some(workers) => {
                metrics.dag_parallel_passes.inc();
                metrics.dag_workers.set(workers as u64);
                self.run_plan_dag(&plan, input, arena, tracer, workers, observing, timing)?;
            }
            None => {
                metrics.dag_workers.set(0);
                let slots = SlotsPtr {
                    ptr: arena.slots.as_mut_ptr(),
                };
                for s in 0..plan.steps.len() {
                    // Contract of `exec_plan_step` holds trivially: one
                    // thread, steps in topological order, no resize.
                    self.exec_plan_step(&plan, s, input, slots, tracer, observing, timing)?;
                }
            }
        }
        let out_slot = plan.slot_of[self.nodes.len() - 1];
        metrics
            .arena_bytes
            .record_max(arena.reserved_bytes() as u64);
        if let Some(t0) = pass_start {
            let elapsed = t0.elapsed();
            if timing {
                metrics
                    .forward_latency_us
                    .record(elapsed.as_micros() as u64);
            }
            if tracer.enabled() {
                let (n, c, h, w) = arena.slots[out_slot].shape();
                tracer.span_exit(
                    &SpanInfo {
                        scope: SpanScope::Forward,
                        name: &self.name,
                        kind: "",
                        shape: [n, c, h, w],
                        index: 0,
                    },
                    elapsed,
                );
            }
        }
        Ok(&arena.slots[out_slot])
    }

    /// Execute plan step `s`: run its node's kernel (with the fused
    /// ReLU epilogue when planned) into the step's arena slot, emitting
    /// the layer span/timing when observability is on. Identical code
    /// serves the sequential loop and every DAG worker — which is the
    /// mechanical reason scheduling cannot change output bits.
    ///
    /// Unchecked contract (callers): exclusive access to slot
    /// `plan.steps[s].node`, producer slots fully written and no longer
    /// mutated, arena slot vector not resized while `slots` is live —
    /// see [`SlotsPtr`].
    #[allow(clippy::too_many_arguments)]
    fn exec_plan_step<T: Tracer>(
        &self,
        plan: &Plan,
        s: usize,
        input: &Tensor4,
        slots: SlotsPtr,
        tracer: &T,
        observing: bool,
        timing: bool,
    ) -> TensorResult<()> {
        let step = &plan.steps[s];
        let i = step.node;
        let node = &self.nodes[i];
        let node_start = if observing {
            Some(Instant::now())
        } else {
            None
        };
        // SAFETY: slot `i` is this step's own (exclusive by contract).
        let out = unsafe { &mut *slots.ptr.add(i) };
        let resolve = |id: NodeId| -> &Tensor4 {
            if id == INPUT {
                input
            } else {
                // SAFETY: producer slots are fully written, quiescent,
                // and distinct from slot `i` (`slot_of[id] <= id < i`
                // by topological order).
                unsafe { &*slots.ptr.add(plan.slot_of[id.0]).cast_const() }
            }
        };
        let fused = step.fused_relu.is_some();
        match node.inputs.as_slice() {
            // The common sequential case stays allocation-free; only
            // multi-input joins (concat) gather refs into a Vec.
            [only] if fused => node.layer.forward_into_fused(&[resolve(*only)], out)?,
            [only] => node.layer.forward_into(&[resolve(*only)], out)?,
            many => {
                let refs: Vec<&Tensor4> = many.iter().map(|&id| resolve(id)).collect();
                if fused {
                    node.layer.forward_into_fused(&refs, out)?;
                } else {
                    node.layer.forward_into(&refs, out)?;
                }
            }
        }
        if let Some(t0) = node_start {
            let elapsed = t0.elapsed();
            let (n, c, h, w) = out.shape();
            if timing {
                cap_obs::metrics()
                    .layer_time_us
                    .record(elapsed.as_micros() as u64);
            }
            if tracer.enabled() {
                tracer.span_exit(
                    &SpanInfo {
                        scope: SpanScope::Layer,
                        name: node.layer.name(),
                        kind: if fused {
                            fused_kind_tag(node.layer.kind())
                        } else {
                            node.layer.kind().tag()
                        },
                        shape: [n, c, h, w],
                        index: s,
                    },
                    elapsed,
                );
            }
        }
        Ok(())
    }

    /// Run the plan on the ready-queue DAG scheduler with `workers`
    /// threads (the calling thread is one of them, so `workers == 1`
    /// spawns nothing and degenerates to a queue-ordered sequential
    /// pass).
    #[allow(clippy::too_many_arguments)]
    fn run_plan_dag<T: Tracer>(
        &self,
        plan: &Plan,
        input: &Tensor4,
        arena: &mut ForwardArena,
        tracer: &T,
        workers: usize,
        observing: bool,
        timing: bool,
    ) -> TensorResult<()> {
        let n_steps = plan.steps.len();
        let run = DagRun {
            queue: Mutex::new(VecDeque::with_capacity(n_steps)),
            ready: Condvar::new(),
            indeg: plan.indeg.iter().map(|&d| AtomicU32::new(d)).collect(),
            remaining: AtomicUsize::new(n_steps),
            abort: AtomicBool::new(false),
            failed: Mutex::new(None),
            pushes: AtomicU64::new(0),
            chained: AtomicU64::new(0),
        };
        {
            // Seed the queue with every dependency-free step (at minimum
            // the first node, whose only input is the network input).
            let mut q = run.queue.lock().unwrap();
            for (s, &d) in plan.indeg.iter().enumerate() {
                if d == 0 {
                    q.push_back(s);
                }
            }
            run.pushes.store(q.len() as u64, Ordering::Relaxed);
        }
        let slots = SlotsPtr {
            ptr: arena.slots.as_mut_ptr(),
        };
        let run_ref = &run;
        // Captures only shared refs + Copy values, so the closure is
        // itself Copy and can seed every worker.
        let work =
            move || self.dag_worker_loop(plan, input, slots, tracer, run_ref, observing, timing);
        rayon::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(work);
            }
            work();
        });
        let metrics = cap_obs::metrics();
        metrics
            .dag_queue_pushes
            .add(run.pushes.load(Ordering::Relaxed));
        metrics
            .dag_chained_steps
            .add(run.chained.load(Ordering::Relaxed));
        if let Some(e) = run.failed.lock().unwrap().take() {
            return Err(e);
        }
        debug_assert_eq!(run.remaining.load(Ordering::Acquire), 0);
        Ok(())
    }

    /// One DAG worker: pop ready steps, execute, release successors.
    /// Exits when the pass completes or aborts.
    #[allow(clippy::too_many_arguments)]
    fn dag_worker_loop<T: Tracer>(
        &self,
        plan: &Plan,
        input: &Tensor4,
        slots: SlotsPtr,
        tracer: &T,
        run: &DagRun,
        observing: bool,
        timing: bool,
    ) {
        loop {
            // Park until a step is ready, the pass is done, or aborted.
            let step = {
                let mut q = run.queue.lock().unwrap();
                loop {
                    if run.abort.load(Ordering::Acquire)
                        || run.remaining.load(Ordering::Acquire) == 0
                    {
                        return;
                    }
                    if let Some(s) = q.pop_front() {
                        break s;
                    }
                    q = run.ready.wait(q).unwrap();
                }
            };
            // Chained fast path: after finishing a step, directly run
            // the first successor it made ready — the backbone chain of
            // a branchy net never round-trips through the queue.
            let mut next = Some(step);
            while let Some(s) = next.take() {
                if run.abort.load(Ordering::Relaxed) {
                    return;
                }
                if let Err(e) =
                    self.exec_plan_step(plan, s, input, slots, tracer, observing, timing)
                {
                    let mut failed = run.failed.lock().unwrap();
                    if failed.is_none() {
                        *failed = Some(e);
                    }
                    drop(failed);
                    run.abort.store(true, Ordering::Release);
                    run.ready.notify_all();
                    return;
                }
                // Handoff: the slot write above happens-before any
                // consumer via the AcqRel decrement chain (release
                // sequence) — or the queue mutex, on the push path.
                for &succ in &plan.succs[s] {
                    if run.indeg[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                        if next.is_none() {
                            run.chained.fetch_add(1, Ordering::Relaxed);
                            next = Some(succ);
                        } else {
                            run.queue.lock().unwrap().push_back(succ);
                            run.pushes.fetch_add(1, Ordering::Relaxed);
                            run.ready.notify_one();
                        }
                    }
                }
                if run.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last step overall: wake every parked worker. Taking
                    // the lock orders the decrement before their re-check,
                    // so no waiter can miss it.
                    drop(run.queue.lock().unwrap());
                    run.ready.notify_all();
                }
            }
        }
    }

    /// Activation-range calibration pass for the int8 execution path.
    ///
    /// Runs one forward pass over `input` (a representative calibration
    /// batch), handing every layer the activations it is about to
    /// consume via [`Layer::observe_input`] so weighted layers can
    /// derive and store their input-activation scale with `method`.
    /// Returns the pass's output tensor, so the caller can reuse it
    /// (e.g. to score the calibration batch).
    ///
    /// Call this while the process precision is f32: the observed
    /// ranges are then exact. Calibrating under int8 still works — the
    /// layers observe the (approximate) int8-path activations — but
    /// adds quantization noise to the scales for no benefit. A network
    /// that is never calibrated remains correct on the int8 path; each
    /// weighted layer just falls back to a per-call max-abs estimate,
    /// trading a scan of its input for the missing calibration.
    pub fn calibrate(&self, input: &Tensor4, method: CalibrationMethod) -> TensorResult<Tensor4> {
        if input.c() != self.input_shape.0
            || input.h() != self.input_shape.1
            || input.w() != self.input_shape.2
        {
            return Err(ShapeError::new(format!(
                "network {}: calibration input shape {:?}, expected {:?}",
                self.name,
                (input.c(), input.h(), input.w()),
                self.input_shape
            )));
        }
        if self.nodes.is_empty() {
            return Ok(input.clone());
        }
        let mut last_use = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &inp in &node.inputs {
                if inp != INPUT {
                    last_use[inp.0] = i;
                }
            }
        }
        let mut activations: Vec<Option<Tensor4>> = (0..self.nodes.len()).map(|_| None).collect();
        for (i, node) in self.nodes.iter().enumerate() {
            let input_refs: Vec<&Tensor4> = node
                .inputs
                .iter()
                .map(|&id| {
                    if id == INPUT {
                        input
                    } else {
                        activations[id.0]
                            .as_ref()
                            .expect("topological order guarantees producer ran and is retained")
                    }
                })
                .collect();
            node.layer.observe_input(&input_refs, method);
            let out = node.layer.forward(&input_refs)?;
            activations[i] = Some(out);
            for (j, slot) in activations.iter_mut().enumerate().take(i) {
                if last_use[j] <= i && j != self.nodes.len() - 1 {
                    *slot = None;
                }
            }
        }
        Ok(activations
            .pop()
            .flatten()
            .expect("last node output retained"))
    }

    /// Replace the weights of layer `name` (pruning entry point).
    pub fn set_layer_weights(&mut self, name: &str, weights: Matrix) -> TensorResult<()> {
        match self.layer_mut(name) {
            Some(l) => l.set_weights(weights),
            None => Err(ShapeError::new(format!(
                "network {}: no layer named {}",
                self.name, name
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConcatLayer, ConvLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer};
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    fn tiny_sequential() -> Network {
        let mut net = Network::new("tiny", (3, 8, 8));
        let p = Conv2dParams::new(3, 4, 3, 1, 1);
        net.add_sequential(Box::new(
            ConvLayer::new("conv1", p, xavier_uniform(4, 27, 1), vec![0.0; 4]).unwrap(),
        ))
        .unwrap();
        net.add_sequential(Box::new(ReluLayer::new("relu1")))
            .unwrap();
        net.add_sequential(Box::new(PoolLayer::new("pool1", PoolMode::Max, 2, 0, 2)))
            .unwrap();
        net
    }

    #[test]
    fn sequential_shapes_propagate() {
        let net = tiny_sequential();
        assert_eq!(net.output_shape().unwrap(), (4, 4, 4));
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn forward_produces_expected_shape() {
        let net = tiny_sequential();
        let x = Tensor4::from_fn(2, 3, 8, 8, |n, c, h, w| ((n + c + h + w) % 3) as f32 - 1.0);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), (2, 4, 4, 4));
    }

    #[test]
    fn forward_timed_records_all_layers() {
        let net = tiny_sequential();
        let x = Tensor4::zeros(1, 3, 8, 8);
        let rec = net.forward_timed(&x).unwrap();
        assert_eq!(rec.timings.len(), 3);
        assert_eq!(rec.timings[0].name, "conv1");
        assert_eq!(rec.timings[0].kind, "conv");
        let dist = rec.time_distribution();
        let total: f64 = dist.iter().map(|(_, _, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dag_with_concat_branches() {
        // input -> convA \
        //                  concat -> softmax-ready shape checks
        // input -> convB /
        let mut net = Network::new("branchy", (3, 4, 4));
        let p = Conv2dParams::new(3, 2, 1, 0, 1);
        let a = net
            .add_layer(
                Box::new(ConvLayer::new("a", p, xavier_uniform(2, 3, 2), vec![0.0; 2]).unwrap()),
                &[INPUT],
            )
            .unwrap();
        let b = net
            .add_layer(
                Box::new(ConvLayer::new("b", p, xavier_uniform(2, 3, 3), vec![0.0; 2]).unwrap()),
                &[INPUT],
            )
            .unwrap();
        net.add_layer(Box::new(ConcatLayer::new("cat")), &[a, b])
            .unwrap();
        assert_eq!(net.output_shape().unwrap(), (4, 4, 4));
        let x = Tensor4::from_fn(1, 3, 4, 4, |_, c, h, w| (c + h + w) as f32 * 0.1);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 4, 4, 4));
    }

    #[test]
    fn rejects_duplicate_names_and_forward_refs() {
        let mut net = Network::new("bad", (3, 4, 4));
        net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
        assert!(net.add_sequential(Box::new(ReluLayer::new("r"))).is_err());
        assert!(net
            .add_layer(Box::new(ReluLayer::new("r2")), &[NodeId(5)])
            .is_err());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let net = tiny_sequential();
        let x = Tensor4::zeros(1, 3, 9, 9);
        assert!(net.forward(&x).is_err());
    }

    #[test]
    fn rejects_shape_incompatible_layer_at_add_time() {
        let mut net = Network::new("bad", (3, 4, 4));
        // Softmax needs 1x1 spatial but out_shape passes anything through;
        // use a conv with wrong in_channels instead.
        let p = Conv2dParams::new(5, 2, 1, 0, 1);
        let r = ConvLayer::new("c", p, xavier_uniform(2, 5, 4), vec![0.0; 2]).unwrap();
        assert!(net.add_sequential(Box::new(r)).is_err());
        // A softmax directly on spatial input is caught at forward time.
        let mut net2 = Network::new("s", (3, 1, 1));
        net2.add_sequential(Box::new(SoftmaxLayer::new("prob")))
            .unwrap();
        let y = net2.forward(&Tensor4::zeros(1, 3, 1, 1)).unwrap();
        assert_eq!(y.shape(), (1, 3, 1, 1));
    }

    #[test]
    fn set_layer_weights_by_name() {
        let mut net = tiny_sequential();
        let zeros = Matrix::zeros(4, 27);
        net.set_layer_weights("conv1", zeros).unwrap();
        assert_eq!(net.layer("conv1").unwrap().weight_sparsity(), 1.0);
        assert!(net.set_layer_weights("nope", Matrix::zeros(1, 1)).is_err());
        assert!(net.set_layer_weights("relu1", Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn layers_of_kind_filters() {
        let net = tiny_sequential();
        assert_eq!(net.layers_of_kind(LayerKind::Convolution), vec!["conv1"]);
        assert_eq!(net.layers_of_kind(LayerKind::Pooling), vec!["pool1"]);
    }

    #[test]
    fn macs_accounting() {
        let net = tiny_sequential();
        let by_layer = net.macs_by_layer().unwrap();
        assert_eq!(by_layer.len(), 3);
        // conv: 4 out * 8*8 spatial * 3 in * 9 taps.
        assert_eq!(by_layer[0].2, 4 * 64 * 27);
        assert_eq!(net.macs_per_image().unwrap(), 4 * 64 * 27);
    }
}
