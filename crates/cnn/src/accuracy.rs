//! Top-1 / Top-5 accuracy metrics (paper §3.2.2).

use cap_tensor::ops::top_k_indices;
use cap_tensor::{Matrix, ShapeError, Tensor4, TensorResult};
use serde::{Deserialize, Serialize};

/// Accuracy over an evaluated batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Fraction of samples whose highest-probability class is the label.
    pub top1: f64,
    /// Fraction of samples whose label is among the 5 highest classes.
    pub top5: f64,
    /// Number of samples evaluated.
    pub n: usize,
}

impl AccuracyReport {
    /// Merge two reports (weighted by sample count).
    pub fn merge(&self, other: &AccuracyReport) -> AccuracyReport {
        let n = self.n + other.n;
        if n == 0 {
            return AccuracyReport {
                top1: 0.0,
                top5: 0.0,
                n: 0,
            };
        }
        AccuracyReport {
            top1: (self.top1 * self.n as f64 + other.top1 * other.n as f64) / n as f64,
            top5: (self.top5 * self.n as f64 + other.top5 * other.n as f64) / n as f64,
            n,
        }
    }
}

/// Compute top-1/top-5 accuracy from a `batch × classes` score matrix
/// (probabilities or logits — only the ordering matters) and labels.
pub fn evaluate_topk(scores: &Matrix, labels: &[usize]) -> TensorResult<AccuracyReport> {
    if scores.rows() != labels.len() {
        return Err(ShapeError::new(format!(
            "evaluate_topk: {} rows vs {} labels",
            scores.rows(),
            labels.len()
        )));
    }
    let classes = scores.cols();
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(ShapeError::new(format!(
            "evaluate_topk: label {bad} out of range for {classes} classes"
        )));
    }
    let mut top1_hits = 0usize;
    let mut top5_hits = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let top = top_k_indices(scores.row(r), 5);
        if top.first() == Some(&label) {
            top1_hits += 1;
        }
        if top.contains(&label) {
            top5_hits += 1;
        }
    }
    let n = labels.len();
    Ok(AccuracyReport {
        top1: top1_hits as f64 / n.max(1) as f64,
        top5: top5_hits as f64 / n.max(1) as f64,
        n,
    })
}

/// Convenience: evaluate a network-output tensor (`batch × classes × 1 × 1`).
pub fn evaluate_topk_tensor(output: &Tensor4, labels: &[usize]) -> TensorResult<AccuracyReport> {
    if output.h() != 1 || output.w() != 1 {
        return Err(ShapeError::new(
            "evaluate_topk_tensor: expected 1x1 spatial output",
        ));
    }
    evaluate_topk(&output.to_matrix(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> Matrix {
        // 3 samples, 6 classes.
        Matrix::from_vec(
            3,
            6,
            vec![
                0.1, 0.5, 0.2, 0.1, 0.05, 0.05, // argmax 1
                0.3, 0.1, 0.1, 0.1, 0.2, 0.2, // argmax 0
                0.0, 0.1, 0.2, 0.3, 0.25, 0.15, // argmax 3
            ],
        )
        .unwrap()
    }

    #[test]
    fn top1_counts_exact_hits() {
        let r = evaluate_topk(&scores(), &[1, 0, 3]).unwrap();
        assert_eq!(r.top1, 1.0);
        assert_eq!(r.top5, 1.0);
        assert_eq!(r.n, 3);
    }

    #[test]
    fn top5_more_lenient_than_top1() {
        // Label 5 for sample 0 is rank 5 (last of top-5? values 0.5,0.2,0.1,0.1,0.05,0.05
        // -> top5 indices are 1,2,0,3,4; label 5 excluded).
        let r = evaluate_topk(&scores(), &[2, 4, 4]).unwrap();
        assert_eq!(r.top1, 0.0);
        assert_eq!(r.top5, 1.0);
        assert!(r.top5 >= r.top1);
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(evaluate_topk(&scores(), &[1, 0]).is_err());
        assert!(evaluate_topk(&scores(), &[1, 0, 6]).is_err());
    }

    #[test]
    fn merge_weights_by_count() {
        let a = AccuracyReport {
            top1: 1.0,
            top5: 1.0,
            n: 1,
        };
        let b = AccuracyReport {
            top1: 0.0,
            top5: 0.5,
            n: 3,
        };
        let m = a.merge(&b);
        assert_eq!(m.n, 4);
        assert!((m.top1 - 0.25).abs() < 1e-9);
        assert!((m.top5 - 0.625).abs() < 1e-9);
    }

    #[test]
    fn tensor_wrapper_requires_1x1() {
        let t = Tensor4::zeros(2, 3, 2, 2);
        assert!(evaluate_topk_tensor(&t, &[0, 1]).is_err());
    }
}
