//! Graph-level layer-fusion mode selection.
//!
//! The [`crate::Network`] executor can rewrite `conv → relu` and
//! `fc → relu` chains into single fused steps whose bias add and ReLU
//! ride the GEMM/SpMM store ([`cap_tensor::Epilogue`]), saving two full
//! round-trips of each activation through memory. The rewrite is a pure
//! scheduling change: fused kernels are **bitwise identical** to the
//! unfused layer pair on every bit-identical kernel path, so fusion can
//! be toggled freely without changing a single output bit — which is
//! exactly what the parity escape hatch here is for.
//!
//! Selection mirrors `CAP_TENSOR_KERNEL` (see [`cap_tensor::kernels`]):
//! the `CAP_TENSOR_FUSION` environment variable is read once per
//! process — `on`, `off`, or `auto` (the default; fusion enabled).
//! Unknown values behave as `auto`, never an error: a typo must not
//! change behavior, only miss nothing (auto already fuses).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Whether the network executor fuses eligible layer chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionMode {
    /// Decide automatically — fusion is a pure win (bitwise identical,
    /// strictly less memory traffic), so `Auto` fuses.
    Auto,
    /// Fuse eligible chains.
    On,
    /// Run every layer unfused — the parity escape hatch and the
    /// baseline arm of the `fusion` ablation experiment.
    Off,
}

impl FusionMode {
    /// Stable lower-case name as accepted by `CAP_TENSOR_FUSION`.
    pub fn name(self) -> &'static str {
        match self {
            FusionMode::Auto => "auto",
            FusionMode::On => "on",
            FusionMode::Off => "off",
        }
    }

    /// Whether this mode enables the fusion rewrite.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, FusionMode::Off)
    }

    /// Numeric code used by the [`force`] override (0 is "no override").
    fn code(self) -> u8 {
        match self {
            FusionMode::Auto => 1,
            FusionMode::On => 2,
            FusionMode::Off => 3,
        }
    }
}

/// Process-wide forced mode: 0 = none, else `FusionMode::code()`.
/// Test/ablation hook only — see [`force`].
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Cached resolution of `CAP_TENSOR_FUSION`.
static SELECTED: OnceLock<FusionMode> = OnceLock::new();

/// Force every subsequent forward pass into `mode` (or back to the
/// environment-driven selection with `None`).
///
/// This is a **test and ablation hook**, process-global like
/// [`cap_tensor::kernels::force`]: the `fusion` experiment and the
/// whole-network parity suite use it to run both arms inside one
/// process. Outputs are identical either way — that is the fusion
/// parity guarantee — but concurrent tests asserting on a *specific*
/// mode must serialize around it.
pub fn force(mode: Option<FusionMode>) {
    FORCED.store(mode.map_or(0, |m| m.code()), Ordering::Relaxed);
}

/// Parse a `CAP_TENSOR_FUSION` value. Unknown strings behave as `auto`.
fn parse_env(value: &str) -> FusionMode {
    match value.trim().to_ascii_lowercase().as_str() {
        "on" => FusionMode::On,
        "off" => FusionMode::Off,
        _ => FusionMode::Auto, // "", "auto", or anything unrecognized
    }
}

/// Resolve the startup selection from `CAP_TENSOR_FUSION`.
fn resolve() -> FusionMode {
    std::env::var("CAP_TENSOR_FUSION")
        .map(|v| parse_env(&v))
        .unwrap_or(FusionMode::Auto)
}

/// The fusion mode governing this process's forward passes.
///
/// Resolved once from `CAP_TENSOR_FUSION` (default `auto` = fused);
/// after that a single relaxed atomic load plus a cached read. The
/// [`force`] override, when set, wins without touching the cache.
#[inline]
pub fn selected() -> FusionMode {
    match FORCED.load(Ordering::Relaxed) {
        1 => FusionMode::Auto,
        2 => FusionMode::On,
        3 => FusionMode::Off,
        _ => *SELECTED.get_or_init(resolve),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_env_accepts_known_values_and_defaults_to_auto() {
        assert_eq!(parse_env("on"), FusionMode::On);
        assert_eq!(parse_env(" OFF "), FusionMode::Off);
        assert_eq!(parse_env("auto"), FusionMode::Auto);
        assert_eq!(parse_env(""), FusionMode::Auto);
        assert_eq!(parse_env("bogus"), FusionMode::Auto);
    }

    #[test]
    fn auto_and_on_enable_off_disables() {
        assert!(FusionMode::Auto.enabled());
        assert!(FusionMode::On.enabled());
        assert!(!FusionMode::Off.enabled());
    }

    #[test]
    fn force_overrides_and_clears() {
        force(Some(FusionMode::Off));
        assert_eq!(selected(), FusionMode::Off);
        force(Some(FusionMode::On));
        assert_eq!(selected(), FusionMode::On);
        force(None);
        // Back to env/auto; whatever it is, it must be stable.
        assert_eq!(selected(), selected());
    }
}
