//! TinyNet — a small, genuinely trainable CNN.
//!
//! The paper's Caffenet/Googlenet arrive pre-trained on 1.2 M ImageNet
//! images; that substrate is unavailable here, so TinyNet closes the loop
//! at laptop scale: train on `cap-data` synthetic images, prune its
//! convolution layers, and *measure* the accuracy drop and the sparse-
//! kernel speedup instead of modelling them.

use crate::accuracy::{evaluate_topk, AccuracyReport};
use crate::layer::{ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer};
use crate::network::Network;
use crate::train::{
    conv_backward, fc_backward, maxpool_backward, relu_backward, softmax_cross_entropy, Sgd,
};
use cap_tensor::{
    conv2d_gemm, conv2d_sparse, gemm, max_pool2d_indices, ops::relu_inplace, Conv2dParams,
    CsrMatrix, Matrix, Pool2dParams, ShapeError, Tensor4, TensorResult,
};

/// A two-conv-layer CNN: `conv1 → relu → pool → conv2 → relu → pool → fc`.
#[derive(serde::Serialize, serde::Deserialize, Clone, Debug, PartialEq)]
pub struct TinyNet {
    /// Input shape per image `(c, h, w)`; h and w must be divisible by 4.
    pub in_shape: (usize, usize, usize),
    /// Number of classes.
    pub classes: usize,
    conv1: Conv2dParams,
    conv2: Conv2dParams,
    /// conv1 weights (`c1 × in*9`).
    pub conv1_w: Matrix,
    /// conv1 bias.
    pub conv1_b: Vec<f32>,
    /// conv2 weights (`c2 × c1*9`).
    pub conv2_w: Matrix,
    /// conv2 bias.
    pub conv2_b: Vec<f32>,
    /// Classifier weights (`classes × c2*(h/4)*(w/4)`).
    pub fc_w: Matrix,
    /// Classifier bias.
    pub fc_b: Vec<f32>,
}

struct ForwardCache {
    a1_pre: Tensor4,
    a1_pooled: Tensor4,
    pool1_idx: Vec<usize>,
    a2_pre: Tensor4,
    a2_pooled: Tensor4,
    pool2_idx: Vec<usize>,
    flat: Matrix,
    logits: Matrix,
}

impl TinyNet {
    /// Create a TinyNet with Xavier-initialized weights.
    pub fn new(
        in_shape: (usize, usize, usize),
        c1: usize,
        c2: usize,
        classes: usize,
        seed: u64,
    ) -> TensorResult<Self> {
        let (c, h, w) = in_shape;
        if h % 4 != 0 || w % 4 != 0 || h < 4 || w < 4 {
            return Err(ShapeError::new(
                "TinyNet: spatial dims must be multiples of 4",
            ));
        }
        let conv1 = Conv2dParams::new(c, c1, 3, 1, 1);
        let conv2 = Conv2dParams::new(c1, c2, 3, 1, 1);
        let fc_in = c2 * (h / 4) * (w / 4);
        Ok(Self {
            in_shape,
            classes,
            conv1,
            conv2,
            conv1_w: cap_tensor::init::xavier_uniform(c1, c * 9, seed ^ 0x11),
            conv1_b: vec![0.0; c1],
            conv2_w: cap_tensor::init::xavier_uniform(c2, c1 * 9, seed ^ 0x22),
            conv2_b: vec![0.0; c2],
            fc_w: cap_tensor::init::xavier_uniform(classes, fc_in, seed ^ 0x33),
            fc_b: vec![0.0; classes],
        })
    }

    fn forward_cached(&self, x: &Tensor4) -> TensorResult<ForwardCache> {
        let pool = Pool2dParams::new(2, 0, 2);
        let a1_pre = conv2d_gemm(x, &self.conv1_w, Some(&self.conv1_b), &self.conv1)?;
        let mut a1 = a1_pre.clone();
        relu_inplace(a1.as_mut_slice());
        let (a1_pooled, pool1_idx) = max_pool2d_indices(&a1, &pool)?;
        let a2_pre = conv2d_gemm(&a1_pooled, &self.conv2_w, Some(&self.conv2_b), &self.conv2)?;
        let mut a2 = a2_pre.clone();
        relu_inplace(a2.as_mut_slice());
        let (a2_pooled, pool2_idx) = max_pool2d_indices(&a2, &pool)?;
        let flat = a2_pooled.to_matrix();
        let mut logits = gemm(&flat, &self.fc_w.transpose())?;
        for r in 0..logits.rows() {
            for (v, b) in logits.row_mut(r).iter_mut().zip(self.fc_b.iter()) {
                *v += b;
            }
        }
        Ok(ForwardCache {
            a1_pre,
            a1_pooled,
            pool1_idx,
            a2_pre,
            a2_pooled,
            pool2_idx,
            flat,
            logits,
        })
    }

    /// Forward pass returning class logits (`batch × classes`).
    pub fn logits(&self, x: &Tensor4) -> TensorResult<Matrix> {
        Ok(self.forward_cached(x)?.logits)
    }

    /// Forward pass using CSR sparse convolution kernels — the execution
    /// path a pruned model takes. Numerically identical to [`Self::logits`].
    pub fn logits_sparse(&self, x: &Tensor4) -> TensorResult<Matrix> {
        let pool = Pool2dParams::new(2, 0, 2);
        let w1 = CsrMatrix::from_dense(&self.conv1_w, 0.0);
        let w2 = CsrMatrix::from_dense(&self.conv2_w, 0.0);
        let mut a1 = conv2d_sparse(x, &w1, Some(&self.conv1_b), &self.conv1)?;
        relu_inplace(a1.as_mut_slice());
        let (a1p, _) = max_pool2d_indices(&a1, &pool)?;
        let mut a2 = conv2d_sparse(&a1p, &w2, Some(&self.conv2_b), &self.conv2)?;
        relu_inplace(a2.as_mut_slice());
        let (a2p, _) = max_pool2d_indices(&a2, &pool)?;
        let flat = a2p.to_matrix();
        let mut logits = gemm(&flat, &self.fc_w.transpose())?;
        for r in 0..logits.rows() {
            for (v, b) in logits.row_mut(r).iter_mut().zip(self.fc_b.iter()) {
                *v += b;
            }
        }
        Ok(logits)
    }

    /// One SGD step on a labelled batch; returns the mean loss.
    ///
    /// `masks`, when given, are `(conv1_mask, conv2_mask)` multipliers that
    /// freeze pruned weights at zero during fine-tuning.
    pub fn train_batch(
        &mut self,
        x: &Tensor4,
        labels: &[usize],
        sgd: &mut Sgd,
        masks: Option<(&[f32], &[f32])>,
    ) -> TensorResult<f32> {
        let cache = self.forward_cached(x)?;
        let (loss, dlogits) = softmax_cross_entropy(&cache.logits, labels)?;

        // fc backward.
        let fc_grad = fc_backward(&cache.flat, &dlogits, &self.fc_w)?;

        // Unflatten into pooled-activation gradient.
        let (c2p, h4, w4) = (
            cache.a2_pooled.c(),
            cache.a2_pooled.h(),
            cache.a2_pooled.w(),
        );
        let d_a2_pooled = Tensor4::from_matrix(&fc_grad.dx, c2p, h4, w4)?;

        // pool2 backward, then relu2.
        let d_a2 = maxpool_backward(cache.a2_pre.len(), &cache.pool2_idx, d_a2_pooled.as_slice())?;
        let d_a2 = relu_backward(cache.a2_pre.as_slice(), &d_a2);
        let d_a2 = Tensor4::from_vec(
            cache.a2_pre.n(),
            cache.a2_pre.c(),
            cache.a2_pre.h(),
            cache.a2_pre.w(),
            d_a2,
        )?;

        // conv2 backward.
        let g2 = conv_backward(&cache.a1_pooled, &d_a2, &self.conv2_w, &self.conv2)?;

        // pool1 backward, then relu1.
        let d_a1 = maxpool_backward(cache.a1_pre.len(), &cache.pool1_idx, g2.dx.as_slice())?;
        let d_a1 = relu_backward(cache.a1_pre.as_slice(), &d_a1);
        let d_a1 = Tensor4::from_vec(
            cache.a1_pre.n(),
            cache.a1_pre.c(),
            cache.a1_pre.h(),
            cache.a1_pre.w(),
            d_a1,
        )?;

        // conv1 backward (dx unused).
        let g1 = conv_backward(x, &d_a1, &self.conv1_w, &self.conv1)?;

        // SGD updates.
        sgd.step(
            "conv1_w",
            self.conv1_w.as_mut_slice(),
            g1.dw.as_slice(),
            masks.map(|m| m.0),
        );
        sgd.step("conv1_b", &mut self.conv1_b, &g1.db, None);
        sgd.step(
            "conv2_w",
            self.conv2_w.as_mut_slice(),
            g2.dw.as_slice(),
            masks.map(|m| m.1),
        );
        sgd.step("conv2_b", &mut self.conv2_b, &g2.db, None);
        sgd.step(
            "fc_w",
            self.fc_w.as_mut_slice(),
            fc_grad.dw.as_slice(),
            None,
        );
        sgd.step("fc_b", &mut self.fc_b, &fc_grad.db, None);
        Ok(loss)
    }

    /// Evaluate top-1/top-5 accuracy on a labelled batch.
    pub fn evaluate(&self, x: &Tensor4, labels: &[usize]) -> TensorResult<AccuracyReport> {
        evaluate_topk(&self.logits(x)?, labels)
    }

    /// Serialize the full model (architecture + weights) to JSON —
    /// checkpointing for the train–prune–fine-tune workflow.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("TinyNet serializes")
    }

    /// Restore a model saved with [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Express this TinyNet as a [`Network`] of packed layer executors —
    /// the bridge from the trainable model to the measured inference
    /// path (fused kernels, sparse dispatch, and the
    /// `CAP_TENSOR_PRECISION` f32/int8 switch all apply). Weights are
    /// cloned into the layers; retrain-then-rebuild to refresh. Logits
    /// match [`Self::logits`] up to float-association differences in
    /// the packed kernels (same math, different loop order).
    pub fn to_network(&self) -> TensorResult<Network> {
        let mut net = Network::new("tinynet", self.in_shape);
        net.add_sequential(Box::new(ConvLayer::new(
            "conv1",
            self.conv1,
            self.conv1_w.clone(),
            self.conv1_b.clone(),
        )?))?;
        net.add_sequential(Box::new(ReluLayer::new("relu1")))?;
        net.add_sequential(Box::new(PoolLayer::new("pool1", PoolMode::Max, 2, 0, 2)))?;
        net.add_sequential(Box::new(ConvLayer::new(
            "conv2",
            self.conv2,
            self.conv2_w.clone(),
            self.conv2_b.clone(),
        )?))?;
        net.add_sequential(Box::new(ReluLayer::new("relu2")))?;
        net.add_sequential(Box::new(PoolLayer::new("pool2", PoolMode::Max, 2, 0, 2)))?;
        net.add_sequential(Box::new(InnerProductLayer::new(
            "fc",
            self.fc_w.clone(),
            self.fc_b.clone(),
        )?))?;
        Ok(net)
    }

    /// Overall weight sparsity of the two convolution layers.
    pub fn conv_sparsity(&self) -> f64 {
        let total = (self.conv1_w.len() + self.conv2_w.len()) as f64;
        let zeros = (self.conv1_w.len() - self.conv1_w.nnz(0.0) + self.conv2_w.len()
            - self.conv2_w.nnz(0.0)) as f64;
        zeros / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(net: &TinyNet, n: usize, seed: u64) -> (Tensor4, Vec<usize>) {
        // Class k = image dominated by channel pattern k.
        let (c, h, w) = net.in_shape;
        let labels: Vec<usize> = (0..n).map(|i| (i + seed as usize) % net.classes).collect();
        let x = Tensor4::from_fn(n, c, h, w, |ni, ci, hi, wi| {
            let k = labels[ni];
            let phase = (hi * 2 + wi + k * 3 + ci) % 8;
            if phase < 4 {
                1.0 - 0.2 * (phase as f32)
            } else {
                -0.3
            }
        });
        (x, labels)
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = TinyNet::new((2, 8, 8), 4, 6, 3, 7).unwrap();
        let mut sgd = Sgd::new(0.05, 0.9);
        let (x, labels) = batch(&net, 9, 0);
        let first = net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn trained_net_beats_chance() {
        let mut net = TinyNet::new((2, 8, 8), 4, 6, 3, 11).unwrap();
        let mut sgd = Sgd::new(0.05, 0.9);
        let (x, labels) = batch(&net, 12, 0);
        for _ in 0..60 {
            net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        }
        let report = net.evaluate(&x, &labels).unwrap();
        assert!(report.top1 > 0.6, "top1 {}", report.top1);
    }

    #[test]
    fn sparse_and_dense_logits_agree() {
        let mut net = TinyNet::new((2, 8, 8), 4, 6, 3, 13).unwrap();
        // Prune half the conv1 weights manually.
        for (i, v) in net.conv1_w.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let (x, _) = batch(&net, 5, 3);
        let dense = net.logits(&x).unwrap();
        let sparse = net.logits_sparse(&x).unwrap();
        assert!(dense.max_abs_diff(&sparse).unwrap() < 1e-3);
    }

    #[test]
    fn masked_training_preserves_sparsity() {
        let mut net = TinyNet::new((2, 8, 8), 4, 6, 3, 17).unwrap();
        for (i, v) in net.conv1_w.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let mask1: Vec<f32> = net
            .conv1_w
            .as_slice()
            .iter()
            .map(|&v| if v == 0.0 { 0.0 } else { 1.0 })
            .collect();
        let mask2 = vec![1.0; net.conv2_w.len()];
        let before = net.conv_sparsity();
        let mut sgd = Sgd::new(0.05, 0.9);
        let (x, labels) = batch(&net, 6, 1);
        for _ in 0..5 {
            net.train_batch(&x, &labels, &mut sgd, Some((&mask1, &mask2)))
                .unwrap();
        }
        assert!(net.conv_sparsity() >= before - 1e-9);
    }

    #[test]
    fn rejects_non_multiple_of_four() {
        assert!(TinyNet::new((1, 6, 6), 2, 2, 2, 1).is_err());
    }

    #[test]
    fn json_roundtrip_preserves_model_exactly() {
        let mut net = TinyNet::new((2, 8, 8), 4, 6, 3, 21).unwrap();
        let mut sgd = Sgd::new(0.05, 0.9);
        let (x, labels) = batch(&net, 6, 2);
        for _ in 0..3 {
            net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        }
        let json = net.to_json();
        let restored = TinyNet::from_json(&json).unwrap();
        assert_eq!(restored, net);
        // Restored model produces identical logits.
        let a = net.logits(&x).unwrap();
        let b = restored.logits(&x).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() == 0.0);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TinyNet::from_json("{not json").is_err());
    }
}
