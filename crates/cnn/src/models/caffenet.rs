//! Caffenet — the Caffe implementation of AlexNet, exactly as in the
//! paper's Table 1 and Figure 1: five convolution layers (conv2/4/5
//! grouped ×2, hence Table 1's `5×5×48` / `3×3×192` filter shapes against
//! 96/384-channel inputs) and three fully-connected layers, with ReLU,
//! LRN and overlapping max-pooling between them.

use super::WeightInit;
use crate::layer::{
    ConvLayer, DropoutLayer, InnerProductLayer, LrnLayer, PoolLayer, PoolMode, ReluLayer,
    SoftmaxLayer,
};
use crate::network::Network;
use cap_tensor::{Conv2dParams, TensorResult};

/// The five prunable convolution layer names, in order.
pub const CAFFENET_CONV_LAYERS: [&str; 5] = ["conv1", "conv2", "conv3", "conv4", "conv5"];

/// Build Caffenet for 3×224×224 RGB input (the paper's input size).
///
/// Layer shapes reproduce Table 1:
///
/// | layer | output | filters | filter size |
/// |-------|-----------|-----|----------|
/// | conv1 | 96×55×55  | 96  | 11×11×3  |
/// | conv2 | 256×27×27 | 256 | 5×5×48   |
/// | conv3 | 384×13×13 | 384 | 3×3×256  |
/// | conv4 | 384×13×13 | 384 | 3×3×192  |
/// | conv5 | 256×13×13 | 256 | 3×3×192  |
/// | fc1   | 4096      |     |          |
/// | fc2   | 4096      |     |          |
/// | fc3   | 1000      |     |          |
pub fn caffenet(init: WeightInit) -> TensorResult<Network> {
    let mut net = Network::new("caffenet", (3, 224, 224));
    let mut salt = 0u64;
    let mut conv = |net: &mut Network, name: &str, p: Conv2dParams| -> TensorResult<()> {
        salt += 1;
        let w = init.build(p.out_channels, p.in_per_group() * p.kh * p.kw, salt);
        net.add_sequential(Box::new(ConvLayer::new(
            name,
            p,
            w,
            vec![0.0; p.out_channels],
        )?))?;
        Ok(())
    };

    // conv1: 96 × 11×11×3, stride 4, pad 2 -> 96×55×55.
    conv(&mut net, "conv1", Conv2dParams::new(3, 96, 11, 2, 4))?;
    net.add_sequential(Box::new(ReluLayer::new("relu1")))?;
    net.add_sequential(Box::new(PoolLayer::new("pool1", PoolMode::Max, 3, 0, 2)))?;
    net.add_sequential(Box::new(LrnLayer::alexnet("norm1")))?;

    // conv2: 256 × 5×5×48 (group 2), pad 2 -> 256×27×27.
    conv(
        &mut net,
        "conv2",
        Conv2dParams::grouped(96, 256, 5, 2, 1, 2),
    )?;
    net.add_sequential(Box::new(ReluLayer::new("relu2")))?;
    net.add_sequential(Box::new(PoolLayer::new("pool2", PoolMode::Max, 3, 0, 2)))?;
    net.add_sequential(Box::new(LrnLayer::alexnet("norm2")))?;

    // conv3: 384 × 3×3×256, pad 1 -> 384×13×13.
    conv(&mut net, "conv3", Conv2dParams::new(256, 384, 3, 1, 1))?;
    net.add_sequential(Box::new(ReluLayer::new("relu3")))?;

    // conv4: 384 × 3×3×192 (group 2), pad 1 -> 384×13×13.
    conv(
        &mut net,
        "conv4",
        Conv2dParams::grouped(384, 384, 3, 1, 1, 2),
    )?;
    net.add_sequential(Box::new(ReluLayer::new("relu4")))?;

    // conv5: 256 × 3×3×192 (group 2), pad 1 -> 256×13×13.
    conv(
        &mut net,
        "conv5",
        Conv2dParams::grouped(384, 256, 3, 1, 1, 2),
    )?;
    net.add_sequential(Box::new(ReluLayer::new("relu5")))?;
    net.add_sequential(Box::new(PoolLayer::new("pool5", PoolMode::Max, 3, 0, 2)))?;

    // fc6/fc7/fc8 — Table 1's fc1/fc2/fc3 (Caffe prototxt numbering).
    let fc = |rows: usize, cols: usize, salt: u64| init.build(rows, cols, 1000 + salt);
    net.add_sequential(Box::new(InnerProductLayer::new(
        "fc6",
        fc(4096, 256 * 6 * 6, 1),
        vec![0.0; 4096],
    )?))?;
    net.add_sequential(Box::new(ReluLayer::new("relu6")))?;
    net.add_sequential(Box::new(DropoutLayer::new("drop6", 0.5)))?;
    net.add_sequential(Box::new(InnerProductLayer::new(
        "fc7",
        fc(4096, 4096, 2),
        vec![0.0; 4096],
    )?))?;
    net.add_sequential(Box::new(ReluLayer::new("relu7")))?;
    net.add_sequential(Box::new(DropoutLayer::new("drop7", 0.5)))?;
    net.add_sequential(Box::new(InnerProductLayer::new(
        "fc8",
        fc(1000, 4096, 3),
        vec![0.0; 1000],
    )?))?;
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn table1_layer_shapes() {
        let net = caffenet(WeightInit::Zeros).unwrap();
        let check = |name: &str, expect: (usize, usize, usize)| {
            let id = net.node_id(name).unwrap();
            assert_eq!(net.shape_of(id).unwrap(), expect, "layer {name}");
        };
        check("conv1", (96, 55, 55));
        check("conv2", (256, 27, 27));
        check("conv3", (384, 13, 13));
        check("conv4", (384, 13, 13));
        check("conv5", (256, 13, 13));
        check("fc6", (4096, 1, 1));
        check("fc7", (4096, 1, 1));
        check("fc8", (1000, 1, 1));
        assert_eq!(net.output_shape().unwrap(), (1000, 1, 1));
    }

    #[test]
    fn has_five_conv_and_three_fc_layers() {
        let net = caffenet(WeightInit::Zeros).unwrap();
        assert_eq!(
            net.layers_of_kind(LayerKind::Convolution),
            CAFFENET_CONV_LAYERS.to_vec()
        );
        assert_eq!(
            net.layers_of_kind(LayerKind::InnerProduct),
            vec!["fc6", "fc7", "fc8"]
        );
    }

    #[test]
    fn parameter_count_near_alexnet_61m() {
        let net = caffenet(WeightInit::Zeros).unwrap();
        let params = net.param_count();
        assert!(
            (58_000_000..64_000_000).contains(&params),
            "caffenet params {params}"
        );
    }

    #[test]
    fn conv_macs_dominate_fc_macs() {
        // Figure 3's premise: convolutions dominate compute.
        let net = caffenet(WeightInit::Zeros).unwrap();
        let by_layer = net.macs_by_layer().unwrap();
        let conv: u64 = by_layer
            .iter()
            .filter(|(_, k, _)| *k == LayerKind::Convolution)
            .map(|(_, _, m)| m)
            .sum();
        let fc: u64 = by_layer
            .iter()
            .filter(|(_, k, _)| *k == LayerKind::InnerProduct)
            .map(|(_, _, m)| m)
            .sum();
        assert!(conv > 10 * fc, "conv {conv} vs fc {fc}");
    }

    #[test]
    fn conv1_macs_largest_among_convs() {
        let net = caffenet(WeightInit::Zeros).unwrap();
        let by_layer = net.macs_by_layer().unwrap();
        let conv_macs: Vec<(String, u64)> = by_layer
            .iter()
            .filter(|(_, k, _)| *k == LayerKind::Convolution)
            .map(|(n, _, m)| (n.clone(), *m))
            .collect();
        // conv2 has the most MACs in AlexNet; conv1 second. What matters
        // for Figure 3 is that conv1+conv2 dominate.
        let total: u64 = conv_macs.iter().map(|(_, m)| m).sum();
        let c12: u64 = conv_macs
            .iter()
            .filter(|(n, _)| n == "conv1" || n == "conv2")
            .map(|(_, m)| m)
            .sum();
        // conv1+conv2 carry ≳40 % of conv MACs (wall-clock share is even
        // higher — Figure 3 — because conv1's output surface is memory-bound).
        assert!(c12 * 5 >= total * 2, "conv1+conv2 {c12} of {total}");
    }
}
