//! Googlenet (Szegedy et al., CVPR'15) — the paper's deeper CNN: two main
//! convolution stages and nine inception modules, each containing six
//! convolutions, for 56+ convolution layers with only ~7 M parameters.

use super::WeightInit;
use crate::layer::{
    ConcatLayer, ConvLayer, DropoutLayer, InnerProductLayer, LrnLayer, PoolLayer, PoolMode,
    ReluLayer, SoftmaxLayer,
};
use crate::network::{Network, NodeId};
use cap_tensor::{Conv2dParams, TensorResult};

/// The six Googlenet convolution layers singled out in the paper's
/// Figure 7, spanning different depths of the network.
pub const GOOGLENET_SELECTED_LAYERS: [&str; 6] = [
    "conv1-7x7-s2",
    "conv2-3x3",
    "inception-3a-3x3",
    "inception-4d-5x5",
    "inception-4e-5x5",
    "inception-5a-3x3",
];

/// Channel plan of one inception module:
/// `(#1x1, #3x3reduce, #3x3, #5x5reduce, #5x5, #poolproj)`.
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

struct Builder {
    net: Network,
    init: WeightInit,
    salt: u64,
}

impl Builder {
    fn conv(&mut self, name: &str, p: Conv2dParams, inputs: &[NodeId]) -> TensorResult<NodeId> {
        self.salt += 1;
        let w = self
            .init
            .build(p.out_channels, p.in_per_group() * p.kh * p.kw, self.salt);
        let conv_id = self.net.add_layer(
            Box::new(ConvLayer::new(name, p, w, vec![0.0; p.out_channels])?),
            inputs,
        )?;
        self.net
            .add_layer(Box::new(ReluLayer::new(format!("{name}-relu"))), &[conv_id])
    }

    /// Build one inception module; returns the concat node.
    fn inception(
        &mut self,
        tag: &str,
        input: NodeId,
        in_c: usize,
        plan: InceptionPlan,
    ) -> TensorResult<NodeId> {
        let (n1, n3r, n3, n5r, n5, np) = plan;
        // Branch 1: 1x1.
        let b1 = self.conv(
            &format!("inception-{tag}-1x1"),
            Conv2dParams::new(in_c, n1, 1, 0, 1),
            &[input],
        )?;
        // Branch 2: 1x1 reduce then 3x3.
        let b2r = self.conv(
            &format!("inception-{tag}-3x3-reduce"),
            Conv2dParams::new(in_c, n3r, 1, 0, 1),
            &[input],
        )?;
        let b2 = self.conv(
            &format!("inception-{tag}-3x3"),
            Conv2dParams::new(n3r, n3, 3, 1, 1),
            &[b2r],
        )?;
        // Branch 3: 1x1 reduce then 5x5.
        let b3r = self.conv(
            &format!("inception-{tag}-5x5-reduce"),
            Conv2dParams::new(in_c, n5r, 1, 0, 1),
            &[input],
        )?;
        let b3 = self.conv(
            &format!("inception-{tag}-5x5"),
            Conv2dParams::new(n5r, n5, 5, 2, 1),
            &[b3r],
        )?;
        // Branch 4: 3x3 max pool then 1x1 projection.
        let bp = self.net.add_layer(
            Box::new(PoolLayer::new(
                format!("inception-{tag}-pool"),
                PoolMode::Max,
                3,
                1,
                1,
            )),
            &[input],
        )?;
        let b4 = self.conv(
            &format!("inception-{tag}-pool-proj"),
            Conv2dParams::new(in_c, np, 1, 0, 1),
            &[bp],
        )?;
        self.net.add_layer(
            Box::new(ConcatLayer::new(format!("inception-{tag}-output"))),
            &[b1, b2, b3, b4],
        )
    }
}

/// Build Googlenet for 3×224×224 RGB input.
///
/// Structure follows the Caffe `bvlc_googlenet` deploy prototxt (auxiliary
/// training classifiers omitted — this is an inference model): a 7×7/2
/// stem, a 3×3 second stage, nine inception modules (3a–3b, 4a–4e,
/// 5a–5b), global average pooling and a 1000-way classifier.
pub fn googlenet(init: WeightInit) -> TensorResult<Network> {
    let mut b = Builder {
        net: Network::new("googlenet", (3, 224, 224)),
        init,
        salt: 50_000,
    };
    const INPUT: NodeId = crate::network::INPUT;

    // Stem: conv1 7x7/2 pad 3 -> 64×112×112, pool -> 56, LRN.
    let c1 = b.conv("conv1-7x7-s2", Conv2dParams::new(3, 64, 7, 3, 2), &[INPUT])?;
    let p1 = b.net.add_layer(
        Box::new(PoolLayer::new("pool1-3x3-s2", PoolMode::Max, 3, 0, 2)),
        &[c1],
    )?;
    let n1 = b
        .net
        .add_layer(Box::new(LrnLayer::alexnet("pool1-norm1")), &[p1])?;

    // conv2: 1x1 reduce (64) then 3x3 (192), LRN, pool -> 192×28×28.
    let c2r = b.conv(
        "conv2-3x3-reduce",
        Conv2dParams::new(64, 64, 1, 0, 1),
        &[n1],
    )?;
    let c2 = b.conv("conv2-3x3", Conv2dParams::new(64, 192, 3, 1, 1), &[c2r])?;
    let n2 = b
        .net
        .add_layer(Box::new(LrnLayer::alexnet("conv2-norm2")), &[c2])?;
    let p2 = b.net.add_layer(
        Box::new(PoolLayer::new("pool2-3x3-s2", PoolMode::Max, 3, 0, 2)),
        &[n2],
    )?;

    // Inception stacks. Channel plans from the GoogLeNet paper, Table 1.
    let i3a = b.inception("3a", p2, 192, (64, 96, 128, 16, 32, 32))?; // 256
    let i3b = b.inception("3b", i3a, 256, (128, 128, 192, 32, 96, 64))?; // 480
    let p3 = b.net.add_layer(
        Box::new(PoolLayer::new("pool3-3x3-s2", PoolMode::Max, 3, 0, 2)),
        &[i3b],
    )?;
    let i4a = b.inception("4a", p3, 480, (192, 96, 208, 16, 48, 64))?; // 512
    let i4b = b.inception("4b", i4a, 512, (160, 112, 224, 24, 64, 64))?; // 512
    let i4c = b.inception("4c", i4b, 512, (128, 128, 256, 24, 64, 64))?; // 512
    let i4d = b.inception("4d", i4c, 512, (112, 144, 288, 32, 64, 64))?; // 528
    let i4e = b.inception("4e", i4d, 528, (256, 160, 320, 32, 128, 128))?; // 832
    let p4 = b.net.add_layer(
        Box::new(PoolLayer::new("pool4-3x3-s2", PoolMode::Max, 3, 0, 2)),
        &[i4e],
    )?;
    let i5a = b.inception("5a", p4, 832, (256, 160, 320, 32, 128, 128))?; // 832
    let i5b = b.inception("5b", i5a, 832, (384, 192, 384, 48, 128, 128))?; // 1024

    // Head: global average pool, dropout, 1000-way classifier.
    let gap = b.net.add_layer(
        Box::new(PoolLayer::new("pool5-7x7-s1", PoolMode::Avg, 7, 0, 1)),
        &[i5b],
    )?;
    let drop = b
        .net
        .add_layer(Box::new(DropoutLayer::new("pool5-drop", 0.4)), &[gap])?;
    let fc = b.net.add_layer(
        Box::new(InnerProductLayer::new(
            "loss3-classifier",
            init.build(1000, 1024, 99_999),
            vec![0.0; 1000],
        )?),
        &[drop],
    )?;
    b.net
        .add_layer(Box::new(SoftmaxLayer::new("prob")), &[fc])?;
    Ok(b.net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn output_is_1000_way() {
        let net = googlenet(WeightInit::Zeros).unwrap();
        assert_eq!(net.output_shape().unwrap(), (1000, 1, 1));
    }

    #[test]
    fn stage_shapes_match_googlenet_paper() {
        let net = googlenet(WeightInit::Zeros).unwrap();
        let check = |name: &str, expect: (usize, usize, usize)| {
            let id = net.node_id(name).unwrap();
            assert_eq!(net.shape_of(id).unwrap(), expect, "layer {name}");
        };
        check("conv1-7x7-s2", (64, 112, 112));
        check("conv2-3x3", (192, 56, 56));
        check("inception-3a-output", (256, 28, 28));
        check("inception-3b-output", (480, 28, 28));
        check("inception-4a-output", (512, 14, 14));
        check("inception-4d-output", (528, 14, 14));
        check("inception-4e-output", (832, 14, 14));
        check("inception-5b-output", (1024, 7, 7));
        check("pool5-7x7-s1", (1024, 1, 1));
    }

    #[test]
    fn has_56_plus_conv_layers() {
        // Paper: "56 convolution layers (two main convolution layers and
        // nine inception layers each containing six convolution layers)".
        let net = googlenet(WeightInit::Zeros).unwrap();
        let convs = net.layers_of_kind(LayerKind::Convolution);
        assert_eq!(convs.len(), 3 + 9 * 6, "2 stem stages (3 convs) + 54");
        for name in GOOGLENET_SELECTED_LAYERS {
            assert!(convs.iter().any(|c| c == name), "missing {name}");
        }
    }

    #[test]
    fn parameter_count_is_millions_not_tens_of_millions() {
        // Paper: "Googlenet has only 4 million parameters"; the standard
        // count for bvlc_googlenet is ~7 M. Either way: far below Caffenet.
        let net = googlenet(WeightInit::Zeros).unwrap();
        let params = net.param_count();
        assert!(
            (4_000_000..9_000_000).contains(&params),
            "googlenet params {params}"
        );
    }

    #[test]
    fn forward_runs_on_small_batch() {
        // Use Xavier weights at reduced cost: batch 1 once.
        let net = googlenet(WeightInit::Xavier { seed: 3 }).unwrap();
        let x = cap_tensor::Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
            ((c * 7 + h + w) % 9) as f32 / 9.0 - 0.5
        });
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 1000, 1, 1));
        let s: f32 = y.image(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }
}
