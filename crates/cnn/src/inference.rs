//! Batched inference execution and throughput measurement — the
//! measured counterpart of the paper's §4.2.3 parallel-inference
//! experiment (Figure 5), at the scale of the implemented framework.
//!
//! "Parallel inferences" on our CPU substrate is the batch dimension:
//! convolution layers fan images of a batch out across rayon workers, so
//! throughput rises with batch size until the worker pool saturates —
//! the same shape as the paper's GPU curve, with the saturation point
//! set by core count instead of SM count.

use crate::accuracy::{evaluate_topk_tensor, AccuracyReport};
use crate::network::{ForwardArena, Network};
use cap_tensor::{Tensor4, TensorResult};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput measured over one batched run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Images processed.
    pub images: usize,
    /// Batch size used.
    pub batch: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Images per second.
    pub images_per_s: f64,
}

/// Run inference over `images` in batches of `batch`, returning the
/// network outputs per image (in order) and a throughput report.
///
/// A trailing partial batch is executed as-is, reusing the same chunk
/// buffer (shrunk in place) rather than allocating a fresh tensor; all
/// layer activations come from one [`ForwardArena`] reused across
/// batches.
///
/// Every kernel on this path computes each image independently, so the
/// per-image outputs are **bitwise-equal across batch sizes** (and equal
/// to the [`crate::ParallelEngine`] outputs at any worker count). The
/// doctest below demonstrates it; the property suites in
/// `crates/cnn/tests/arena_parity.rs` (arena path vs the allocating
/// path) and `crates/cnn/tests/parallel_parity.rs` (engine vs this
/// driver) cover it across generated networks, shapes and batch sizes.
///
/// ```
/// use cap_cnn::layer::ReluLayer;
/// use cap_cnn::{run_batched, Network};
/// use cap_tensor::Tensor4;
///
/// let mut net = Network::new("id", (1, 2, 2));
/// net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
/// let images = Tensor4::from_fn(5, 1, 2, 2, |n, _, _, _| n as f32 - 2.0);
///
/// // Five images in batches of two: a 2+2+1 chunk sequence.
/// let (outputs, report) = run_batched(&net, &images, 2).unwrap();
/// assert_eq!(outputs.len(), 5);
/// assert_eq!(outputs[0], vec![0.0; 4]); // ReLU clamps the negative image
/// assert_eq!(report.images, 5);
/// assert!(report.images_per_s > 0.0);
///
/// // Chunking is invisible in the outputs: one 5-image batch produces
/// // bitwise-identical results.
/// let (whole, _) = run_batched(&net, &images, 5).unwrap();
/// assert_eq!(outputs, whole);
/// ```
pub fn run_batched(
    net: &Network,
    images: &Tensor4,
    batch: usize,
) -> TensorResult<(Vec<Vec<f32>>, ThroughputReport)> {
    let n = images.n();
    let batch = batch.max(1);
    let (c, h, w) = (images.c(), images.h(), images.w());
    let mut outputs = Vec::with_capacity(n);
    let mut chunk = Tensor4::zeros(0, 0, 0, 0);
    let mut arena = ForwardArena::new();
    let start = Instant::now();
    let mut i = 0;
    while i < n {
        let take = batch.min(n - i);
        chunk.resize(take, c, h, w);
        for j in 0..take {
            chunk.image_mut(j).copy_from_slice(images.image(i + j));
        }
        let out = net.forward_into(&chunk, &mut arena)?;
        for j in 0..take {
            outputs.push(out.image(j).to_vec());
        }
        i += take;
    }
    let wall_s = start.elapsed().as_secs_f64();
    Ok((
        outputs,
        ThroughputReport {
            images: n,
            batch,
            wall_s,
            images_per_s: if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
        },
    ))
}

/// Run inference and score it against labels in one pass.
pub fn run_and_score(
    net: &Network,
    images: &Tensor4,
    labels: &[usize],
    batch: usize,
) -> TensorResult<(AccuracyReport, ThroughputReport)> {
    let n = images.n();
    let batch = batch.max(1);
    let (c, h, w) = (images.c(), images.h(), images.w());
    let mut acc = AccuracyReport {
        top1: 0.0,
        top5: 0.0,
        n: 0,
    };
    let mut chunk = Tensor4::zeros(0, 0, 0, 0);
    let mut arena = ForwardArena::new();
    let start = Instant::now();
    let mut i = 0;
    while i < n {
        let take = batch.min(n - i);
        chunk.resize(take, c, h, w);
        for j in 0..take {
            chunk.image_mut(j).copy_from_slice(images.image(i + j));
        }
        // Scoring reads straight from the arena-held output tensor — no
        // per-image copies anywhere on this path.
        let out = net.forward_into(&chunk, &mut arena)?;
        let batch_acc = evaluate_topk_tensor(out, &labels[i..i + take])?;
        acc = acc.merge(&batch_acc);
        i += take;
    }
    let wall_s = start.elapsed().as_secs_f64();
    Ok((
        acc,
        ThroughputReport {
            images: n,
            batch,
            wall_s,
            images_per_s: if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
        },
    ))
}

/// Measure throughput across batch sizes — the Figure 5 experiment run
/// for real on this framework. Returns `(batch, images_per_s)` series.
pub fn parallel_scaling(
    net: &Network,
    images: &Tensor4,
    batch_sizes: &[usize],
) -> TensorResult<Vec<(usize, f64)>> {
    batch_sizes
        .iter()
        .map(|&b| {
            // Warm up at the *measured* batch size: warming at a
            // different size would leave arena buffers shaped for the
            // wrong chunk, so the first timed run would pay the regrow.
            let _ = run_batched(net, images, b)?;
            // §3.3 protocol: three runs, keep the fastest.
            let mut best = 0.0_f64;
            for _ in 0..3 {
                let (_, report) = run_batched(net, images, b)?;
                best = best.max(report.images_per_s);
            }
            Ok((b, best))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvLayer, PoolLayer, PoolMode, ReluLayer};
    use crate::network::Network;
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    fn small_net() -> Network {
        let mut net = Network::new("t", (2, 8, 8));
        let p = Conv2dParams::new(2, 4, 3, 1, 1);
        net.add_sequential(Box::new(
            ConvLayer::new("c1", p, xavier_uniform(4, 18, 3), vec![0.0; 4]).unwrap(),
        ))
        .unwrap();
        net.add_sequential(Box::new(ReluLayer::new("r1"))).unwrap();
        net.add_sequential(Box::new(PoolLayer::new("p1", PoolMode::Max, 2, 0, 2)))
            .unwrap();
        net
    }

    fn images(n: usize) -> Tensor4 {
        Tensor4::from_fn(n, 2, 8, 8, |i, c, h, w| {
            ((i * 5 + c * 3 + h + w) % 7) as f32 - 3.0
        })
    }

    #[test]
    fn batched_output_matches_single_batch() {
        let net = small_net();
        let imgs = images(10);
        let (chunked, _) = run_batched(&net, &imgs, 3).unwrap();
        let (whole, _) = run_batched(&net, &imgs, 10).unwrap();
        assert_eq!(chunked.len(), 10);
        for (a, b) in chunked.iter().zip(whole.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn trailing_partial_batch_handled() {
        let net = small_net();
        let imgs = images(7);
        let (out, report) = run_batched(&net, &imgs, 4).unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(report.images, 7);
        assert_eq!(report.batch, 4);
        assert!(report.images_per_s > 0.0);
    }

    #[test]
    fn zero_batch_clamped_to_one() {
        let net = small_net();
        let imgs = images(3);
        let (out, report) = run_batched(&net, &imgs, 0).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(report.batch, 1);
    }

    #[test]
    fn scaling_series_has_requested_points() {
        let net = small_net();
        let imgs = images(16);
        let series = parallel_scaling(&net, &imgs, &[1, 4, 16]).unwrap();
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|&(_, r)| r > 0.0));
    }

    #[test]
    fn run_and_score_counts_all_images() {
        // A softmax-free net won't produce meaningful classes; build a
        // 1x1-spatial net for scoring.
        let mut net = Network::new("s", (4, 1, 1));
        let p = Conv2dParams::new(4, 3, 1, 0, 1);
        net.add_sequential(Box::new(
            ConvLayer::new("c", p, xavier_uniform(3, 4, 5), vec![0.0; 3]).unwrap(),
        ))
        .unwrap();
        let imgs = Tensor4::from_fn(9, 4, 1, 1, |i, c, _, _| ((i + c) % 5) as f32 - 2.0);
        let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1, 2];
        let (acc, report) = run_and_score(&net, &imgs, &labels, 4).unwrap();
        assert_eq!(acc.n, 9);
        assert_eq!(report.images, 9);
        assert!(acc.top5 >= acc.top1);
    }
}
