//! ReLU activation layer.

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{
    ops::{relu_inplace, relu_into},
    ShapeError, Tensor4, TensorResult,
};

/// Rectified linear unit: `y = max(0, x)`, elementwise.
pub struct ReluLayer {
    name: String,
}

impl ReluLayer {
    /// Create a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for ReluLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let [input] = inputs else {
            return Err(ShapeError::new("relu: expected exactly one input"));
        };
        let mut out = (*input).clone();
        relu_inplace(out.as_mut_slice());
        Ok(out)
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("relu: expected exactly one input"));
        };
        let (n, c, h, w) = input.shape();
        out.resize(n, c, h, w);
        relu_into(input.as_slice(), out.as_mut_slice());
        Ok(())
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [shape] = in_shapes else {
            return Err(ShapeError::new("relu: expected exactly one input shape"));
        };
        Ok(*shape)
    }

    fn macs_per_image(&self, _in_shapes: &[ChwShape]) -> TensorResult<u64> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negatives_preserves_shape() {
        let l = ReluLayer::new("relu_t");
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(l.out_shape(&[(1, 2, 2)]).unwrap(), (1, 2, 2));
    }
}
