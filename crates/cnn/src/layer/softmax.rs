//! Softmax classifier head.

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{ops::softmax_inplace, ShapeError, Tensor4, TensorResult};

/// Per-image softmax over the channel dimension (expects 1×1 spatial).
pub struct SoftmaxLayer {
    name: String,
}

impl SoftmaxLayer {
    /// Create a softmax layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for SoftmaxLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Softmax
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let [input] = inputs else {
            return Err(ShapeError::new("softmax: expected exactly one input"));
        };
        if input.h() != 1 || input.w() != 1 {
            return Err(ShapeError::new(format!(
                "softmax {}: expected 1x1 spatial input, got {}x{}",
                self.name,
                input.h(),
                input.w()
            )));
        }
        let mut out = (*input).clone();
        for n in 0..out.n() {
            softmax_inplace(out.image_mut(n));
        }
        Ok(out)
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("softmax: expected exactly one input"));
        };
        if input.h() != 1 || input.w() != 1 {
            return Err(ShapeError::new(format!(
                "softmax {}: expected 1x1 spatial input, got {}x{}",
                self.name,
                input.h(),
                input.w()
            )));
        }
        let (n, c, h, w) = input.shape();
        out.resize(n, c, h, w);
        out.as_mut_slice().copy_from_slice(input.as_slice());
        for ni in 0..n {
            softmax_inplace(out.image_mut(ni));
        }
        Ok(())
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [shape] = in_shapes else {
            return Err(ShapeError::new("softmax: expected exactly one input shape"));
        };
        Ok(*shape)
    }

    fn macs_per_image(&self, _in_shapes: &[ChwShape]) -> TensorResult<u64> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_image_sums_to_one() {
        let l = SoftmaxLayer::new("prob");
        let x = Tensor4::from_fn(3, 5, 1, 1, |n, c, _, _| (n * c) as f32 * 0.3);
        let y = l.forward(&[&x]).unwrap();
        for n in 0..3 {
            let s: f32 = y.image(n).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_spatial_input() {
        let l = SoftmaxLayer::new("prob");
        let x = Tensor4::zeros(1, 5, 2, 2);
        assert!(l.forward(&[&x]).is_err());
    }
}
