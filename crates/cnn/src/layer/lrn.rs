//! Local response normalization (across channels), as used by
//! AlexNet/Caffenet and Googlenet.

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{ShapeError, Tensor4, TensorResult};
use parking_lot::Mutex;

/// Across-channel local response normalization:
/// `y = x / (k + alpha/n * sum_{neighbourhood} x^2)^beta`.
///
/// The window square-sum is maintained as a sliding plane across
/// channels (one add + one subtract per element instead of an
/// O(local_size) rescan), keeping LRN a small slice of Caffenet's
/// wall-clock as in the paper's Figure 3 breakdown.
pub struct LrnLayer {
    name: String,
    /// Neighbourhood size (channels), `local_size` in Caffe.
    local_size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    /// Reusable `h*w` square-sum plane; persists across forward calls so
    /// the steady state allocates nothing.
    scratch: Mutex<Vec<f32>>,
}

impl LrnLayer {
    /// Create an LRN layer with Caffe parameter names.
    pub fn new(name: impl Into<String>, local_size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        Self {
            name: name.into(),
            local_size: local_size.max(1),
            alpha,
            beta,
            k,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// AlexNet's canonical LRN: `n=5, alpha=1e-4, beta=0.75, k=2`.
    pub fn alexnet(name: impl Into<String>) -> Self {
        Self::new(name, 5, 1e-4, 0.75, 2.0)
    }
}

impl Layer for LrnLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Lrn
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(inputs, &mut out)?;
        Ok(out)
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("lrn: expected exactly one input"));
        };
        let (n, c, h, w) = input.shape();
        out.resize(n, c, h, w);
        let half = self.local_size / 2;
        let hw = h * w;
        if c == 0 || hw == 0 {
            return Ok(());
        }
        let scale = self.alpha / self.local_size as f32;
        let mut sums = self.scratch.lock();
        sums.clear();
        sums.resize(hw, 0.0);
        for ni in 0..n {
            let img = input.image(ni);
            let out_img = out.image_mut(ni);
            // Seed the window with channels [0, half].
            sums.fill(0.0);
            for cj in 0..=half.min(c - 1) {
                let plane = &img[cj * hw..(cj + 1) * hw];
                for (s, &v) in sums.iter_mut().zip(plane) {
                    *s += v * v;
                }
            }
            for ci in 0..c {
                let (in_plane, out_plane) = (
                    &img[ci * hw..(ci + 1) * hw],
                    &mut out_img[ci * hw..(ci + 1) * hw],
                );
                for ((o, &v), &s) in out_plane.iter_mut().zip(in_plane).zip(sums.iter()) {
                    *o = v / (self.k + scale * s).powf(self.beta);
                }
                // Slide the window: channel ci+half+1 enters, ci-half leaves.
                if ci + half + 1 < c {
                    let plane = &img[(ci + half + 1) * hw..(ci + half + 2) * hw];
                    for (s, &v) in sums.iter_mut().zip(plane) {
                        *s += v * v;
                    }
                }
                if ci >= half {
                    let plane = &img[(ci - half) * hw..(ci - half + 1) * hw];
                    for (s, &v) in sums.iter_mut().zip(plane) {
                        *s -= v * v;
                    }
                }
            }
        }
        Ok(())
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [shape] = in_shapes else {
            return Err(ShapeError::new("lrn: expected exactly one input shape"));
        };
        Ok(*shape)
    }

    fn macs_per_image(&self, in_shapes: &[ChwShape]) -> TensorResult<u64> {
        // ~local_size multiplies per element for the square-sum window.
        let [(c, h, w)] = in_shapes else {
            return Err(ShapeError::new("lrn: expected exactly one input shape"));
        };
        Ok((*c * *h * *w * self.local_size) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shape_and_sign() {
        let l = LrnLayer::alexnet("norm1");
        let x = Tensor4::from_fn(1, 8, 3, 3, |_, c, h, w| {
            (c as f32 - 4.0) * 0.2 + (h + w) as f32 * 0.05
        });
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), x.shape());
        for (a, b) in x.as_slice().iter().zip(y.as_slice().iter()) {
            assert_eq!(a.signum(), b.signum());
            // With k=2 and beta>0 the denominator > 1, so |y| < |x| unless x == 0.
            assert!(b.abs() <= a.abs());
        }
    }

    #[test]
    fn large_activations_suppressed_more() {
        let l = LrnLayer::new("norm", 3, 1.0, 0.75, 1.0);
        let mut x = Tensor4::zeros(1, 3, 1, 1);
        x.set(0, 1, 0, 0, 10.0);
        let y_big = l.forward(&[&x]).unwrap().get(0, 1, 0, 0) / 10.0;
        x.set(0, 1, 0, 0, 0.1);
        let y_small = l.forward(&[&x]).unwrap().get(0, 1, 0, 0) / 0.1;
        assert!(y_big < y_small);
    }
}
