//! Local response normalization (across channels), as used by
//! AlexNet/Caffenet and Googlenet.

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{ShapeError, Tensor4, TensorResult};

/// Across-channel local response normalization:
/// `y = x / (k + alpha/n * sum_{neighbourhood} x^2)^beta`.
pub struct LrnLayer {
    name: String,
    /// Neighbourhood size (channels), `local_size` in Caffe.
    local_size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
}

impl LrnLayer {
    /// Create an LRN layer with Caffe parameter names.
    pub fn new(name: impl Into<String>, local_size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        Self {
            name: name.into(),
            local_size: local_size.max(1),
            alpha,
            beta,
            k,
        }
    }

    /// AlexNet's canonical LRN: `n=5, alpha=1e-4, beta=0.75, k=2`.
    pub fn alexnet(name: impl Into<String>) -> Self {
        Self::new(name, 5, 1e-4, 0.75, 2.0)
    }
}

impl Layer for LrnLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Lrn
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let [input] = inputs else {
            return Err(ShapeError::new("lrn: expected exactly one input"));
        };
        let (n, c, h, w) = input.shape();
        let mut out = Tensor4::zeros(n, c, h, w);
        let half = self.local_size / 2;
        for ni in 0..n {
            for y in 0..h {
                for x in 0..w {
                    for ci in 0..c {
                        let lo = ci.saturating_sub(half);
                        let hi = (ci + half).min(c - 1);
                        let mut sq = 0.0;
                        for cj in lo..=hi {
                            let v = input.get(ni, cj, y, x);
                            sq += v * v;
                        }
                        let denom =
                            (self.k + self.alpha / self.local_size as f32 * sq).powf(self.beta);
                        out.set(ni, ci, y, x, input.get(ni, ci, y, x) / denom);
                    }
                }
            }
        }
        Ok(out)
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [shape] = in_shapes else {
            return Err(ShapeError::new("lrn: expected exactly one input shape"));
        };
        Ok(*shape)
    }

    fn macs_per_image(&self, in_shapes: &[ChwShape]) -> TensorResult<u64> {
        // ~local_size multiplies per element for the square-sum window.
        let [(c, h, w)] = in_shapes else {
            return Err(ShapeError::new("lrn: expected exactly one input shape"));
        };
        Ok((*c * *h * *w * self.local_size) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shape_and_sign() {
        let l = LrnLayer::alexnet("norm1");
        let x = Tensor4::from_fn(1, 8, 3, 3, |_, c, h, w| (c as f32 - 4.0) * 0.2 + (h + w) as f32 * 0.05);
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), x.shape());
        for (a, b) in x.as_slice().iter().zip(y.as_slice().iter()) {
            assert_eq!(a.signum(), b.signum());
            // With k=2 and beta>0 the denominator > 1, so |y| < |x| unless x == 0.
            assert!(b.abs() <= a.abs());
        }
    }

    #[test]
    fn large_activations_suppressed_more() {
        let l = LrnLayer::new("norm", 3, 1.0, 0.75, 1.0);
        let mut x = Tensor4::zeros(1, 3, 1, 1);
        x.set(0, 1, 0, 0, 10.0);
        let y_big = l.forward(&[&x]).unwrap().get(0, 1, 0, 0) / 10.0;
        x.set(0, 1, 0, 0, 0.1);
        let y_small = l.forward(&[&x]).unwrap().get(0, 1, 0, 0) / 0.1;
        assert!(y_big < y_small);
    }
}
