//! Convolution layer with a sparse fast path for pruned weights.

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{
    conv2d_gemm_packed_fused, conv2d_i8_packed_fused, conv2d_i8_sparse_fused,
    conv2d_sparse_packed_fused, precision, symmetric_scale, CalibrationMethod, Conv2dParams,
    CsrMatrix, Matrix, PackedConvWeights, PackedSparseConvWeights, Precision, QuantizedConvWeights,
    QuantizedSparseConvWeights, ShapeError, Tensor4, TensorResult, WorkspacePool,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Weight sparsity above which the CSR kernel beats dense GEMM. The
/// break-even is measured by the `gemm` criterion bench; 40 % is a
/// conservative default for the rayon CPU kernels here.
pub const SPARSE_THRESHOLD: f64 = 0.4;

/// 2-D convolution layer (optionally grouped, AlexNet-style).
///
/// Weights are stored dense; whenever their zero fraction exceeds
/// [`SPARSE_THRESHOLD`], a per-group CSR split is built lazily and used
/// for forward execution, so pruning translates into real wall-clock
/// savings exactly as in the sparse-Caffe substrate of the paper.
///
/// Both dense and sparse weights are pre-split into per-group bands at
/// construction / `set_weights` time ([`PackedConvWeights`],
/// [`PackedSparseConvWeights`]), and im2col / GEMM scratch comes from a
/// per-layer [`WorkspacePool`], so steady-state forwards allocate nothing.
pub struct ConvLayer {
    name: String,
    params: Conv2dParams,
    weights: Matrix,
    bias: Vec<f32>,
    /// Per-group weight bands, rebuilt eagerly by `set_weights`.
    packed: PackedConvWeights,
    /// Lazily built per-group CSR split of `weights`; invalidated by
    /// `set_weights`. `Arc` so forwards clone a pointer, not the data.
    sparse_cache: RwLock<Option<Arc<PackedSparseConvWeights>>>,
    /// Lazily built int8 quantization of `weights` (dense form);
    /// invalidated by `set_weights`. Built only when the process runs
    /// with `CAP_TENSOR_PRECISION=int8`.
    quant_cache: RwLock<Option<Arc<QuantizedConvWeights>>>,
    /// Lazily built int8 quantization of the CSR split, for pruned
    /// weights on the int8 path; invalidated by `set_weights`.
    quant_sparse_cache: RwLock<Option<Arc<QuantizedSparseConvWeights>>>,
    /// Calibrated input-activation scale as f32 bits; 0 (= 0.0) means
    /// uncalibrated, in which case the int8 path falls back to a
    /// per-call max-abs estimate over the whole input tensor.
    act_scale: AtomicU32,
    /// Reusable im2col/product scratch shared across forward calls.
    pool: WorkspacePool,
}

impl ConvLayer {
    /// Create a convolution layer; validates weight/bias shapes against
    /// the geometry.
    pub fn new(
        name: impl Into<String>,
        params: Conv2dParams,
        weights: Matrix,
        bias: Vec<f32>,
    ) -> TensorResult<Self> {
        params.validate()?;
        let expected = (
            params.out_channels,
            params.in_per_group() * params.kh * params.kw,
        );
        if weights.shape() != expected {
            return Err(ShapeError::new(format!(
                "conv layer: weights {:?}, expected {:?}",
                weights.shape(),
                expected
            )));
        }
        if bias.len() != params.out_channels {
            return Err(ShapeError::new(format!(
                "conv layer: bias length {} != out_channels {}",
                bias.len(),
                params.out_channels
            )));
        }
        let packed = PackedConvWeights::pack(&weights, &params)?;
        Ok(Self {
            name: name.into(),
            params,
            weights,
            bias,
            packed,
            sparse_cache: RwLock::new(None),
            quant_cache: RwLock::new(None),
            quant_sparse_cache: RwLock::new(None),
            act_scale: AtomicU32::new(0),
            pool: WorkspacePool::new(),
        })
    }

    /// Geometry of this convolution.
    pub fn params(&self) -> &Conv2dParams {
        &self.params
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn sparse(&self) -> TensorResult<Arc<PackedSparseConvWeights>> {
        if let Some(cached) = self.sparse_cache.read().as_ref() {
            return Ok(Arc::clone(cached));
        }
        let csr = CsrMatrix::from_dense(&self.weights, 0.0);
        let built = Arc::new(PackedSparseConvWeights::pack(&csr, &self.params)?);
        *self.sparse_cache.write() = Some(Arc::clone(&built));
        Ok(built)
    }

    fn quant(&self) -> TensorResult<Arc<QuantizedConvWeights>> {
        if let Some(cached) = self.quant_cache.read().as_ref() {
            return Ok(Arc::clone(cached));
        }
        let built = Arc::new(QuantizedConvWeights::pack(&self.weights, &self.params)?);
        *self.quant_cache.write() = Some(Arc::clone(&built));
        Ok(built)
    }

    fn quant_sparse(&self) -> TensorResult<Arc<QuantizedSparseConvWeights>> {
        if let Some(cached) = self.quant_sparse_cache.read().as_ref() {
            return Ok(Arc::clone(cached));
        }
        let csr = CsrMatrix::from_dense(&self.weights, 0.0);
        let built = Arc::new(QuantizedSparseConvWeights::pack(&csr, &self.params)?);
        *self.quant_sparse_cache.write() = Some(Arc::clone(&built));
        Ok(built)
    }

    /// Calibrated activation scale, or a deterministic per-call max-abs
    /// estimate when no calibration pass has run. The fallback scans
    /// the whole input tensor once, before any parallel fan-out, so
    /// results do not depend on worker count or image order.
    fn act_scale_for(&self, input: &Tensor4) -> f32 {
        let s = f32::from_bits(self.act_scale.load(Ordering::Relaxed));
        if s > 0.0 {
            s
        } else {
            symmetric_scale(input.as_slice())
        }
    }

    /// Shared body of [`Layer::forward_into`] / [`Layer::forward_into_fused`]:
    /// the only difference is whether a ReLU rides the kernel epilogue.
    fn run(&self, inputs: &[&Tensor4], out: &mut Tensor4, relu: bool) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("conv: expected exactly one input"));
        };
        if precision::selected() == Precision::Int8 {
            let act_scale = self.act_scale_for(input);
            return if self.weights.sparsity(0.0) > SPARSE_THRESHOLD {
                let qw = self.quant_sparse()?;
                conv2d_i8_sparse_fused(
                    input,
                    &qw,
                    Some(&self.bias),
                    &self.params,
                    &self.pool,
                    out,
                    relu,
                    act_scale,
                )
            } else {
                let qw = self.quant()?;
                conv2d_i8_packed_fused(
                    input,
                    &qw,
                    Some(&self.bias),
                    &self.params,
                    &self.pool,
                    out,
                    relu,
                    act_scale,
                )
            };
        }
        if self.weights.sparsity(0.0) > SPARSE_THRESHOLD {
            let sparse = self.sparse()?;
            conv2d_sparse_packed_fused(
                input,
                &sparse,
                Some(&self.bias),
                &self.params,
                &self.pool,
                out,
                relu,
            )
        } else {
            conv2d_gemm_packed_fused(
                input,
                &self.packed,
                Some(&self.bias),
                &self.params,
                &self.pool,
                out,
                relu,
            )
        }
    }
}

impl Layer for ConvLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Convolution
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(inputs, &mut out)?;
        Ok(out)
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        self.run(inputs, out, false)
    }

    fn supports_relu_fusion(&self) -> bool {
        true
    }

    fn forward_into_fused(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        self.run(inputs, out, true)
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [(c, h, w)] = in_shapes else {
            return Err(ShapeError::new("conv: expected exactly one input shape"));
        };
        if *c != self.params.in_channels {
            return Err(ShapeError::new(format!(
                "conv {}: input channels {} != {}",
                self.name, c, self.params.in_channels
            )));
        }
        let (oh, ow) = self.params.out_shape(*h, *w)?;
        Ok((self.params.out_channels, oh, ow))
    }

    fn macs_per_image(&self, in_shapes: &[ChwShape]) -> TensorResult<u64> {
        let [(_, h, w)] = in_shapes else {
            return Err(ShapeError::new("conv: expected exactly one input shape"));
        };
        self.params.macs(*h, *w)
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn weights(&self) -> Option<&Matrix> {
        Some(&self.weights)
    }

    fn set_weights(&mut self, weights: Matrix) -> TensorResult<()> {
        if weights.shape() != self.weights.shape() {
            return Err(ShapeError::new(format!(
                "conv {}: set_weights {:?}, expected {:?}",
                self.name,
                weights.shape(),
                self.weights.shape()
            )));
        }
        self.packed = PackedConvWeights::pack(&weights, &self.params)?;
        self.weights = weights;
        *self.sparse_cache.write() = None;
        *self.quant_cache.write() = None;
        *self.quant_sparse_cache.write() = None;
        Ok(())
    }

    fn observe_input(&self, inputs: &[&Tensor4], method: CalibrationMethod) {
        if let [input] = inputs {
            let s = method.scale_for(input.as_slice());
            self.act_scale.store(s.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_tensor::conv2d_gemm;
    use cap_tensor::init::xavier_uniform;

    fn layer(sparsify: bool) -> ConvLayer {
        let params = Conv2dParams::new(3, 4, 3, 1, 1);
        let mut w = xavier_uniform(4, 27, 99);
        if sparsify {
            for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = 0.0;
                }
            }
        }
        ConvLayer::new("conv_t", params, w, vec![0.1; 4]).unwrap()
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let dense = layer(false);
        let mut sparse_weights = dense.weights().unwrap().clone();
        for (i, v) in sparse_weights.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let mut zeroed_dense = layer(false);
        zeroed_dense.set_weights(sparse_weights).unwrap();
        assert!(zeroed_dense.weight_sparsity() > SPARSE_THRESHOLD);

        let input = Tensor4::from_fn(2, 3, 5, 5, |n, c, h, w| ((n + c + h + w) % 5) as f32 - 2.0);
        // Force both paths on the same weights: sparse via the layer (its
        // sparsity > threshold), dense via direct kernel call. The layer
        // route is pinned to f32 — the dense reference is the exact f32
        // kernel, so an int8 precision leg would route `forward` through
        // the quantized path and break the tight tolerance.
        cap_tensor::precision::force(Some(cap_tensor::Precision::F32));
        let via_layer = zeroed_dense.forward(&[&input]).unwrap();
        cap_tensor::precision::force(None);
        let via_dense = conv2d_gemm(
            &input,
            zeroed_dense.weights().unwrap(),
            Some(zeroed_dense.bias()),
            zeroed_dense.params(),
        )
        .unwrap();
        assert!(via_layer.max_abs_diff(&via_dense).unwrap() < 1e-4);
    }

    #[test]
    fn out_shape_and_macs() {
        let l = layer(false);
        assert_eq!(l.out_shape(&[(3, 5, 5)]).unwrap(), (4, 5, 5));
        assert_eq!(l.macs_per_image(&[(3, 5, 5)]).unwrap(), 4 * 5 * 5 * 3 * 9);
        assert!(l.out_shape(&[(2, 5, 5)]).is_err());
    }

    #[test]
    fn param_count_includes_bias() {
        let l = layer(false);
        assert_eq!(l.param_count(), 4 * 27 + 4);
    }

    #[test]
    fn set_weights_validates_shape() {
        let mut l = layer(false);
        assert!(l.set_weights(Matrix::zeros(4, 26)).is_err());
        assert!(l.set_weights(Matrix::zeros(4, 27)).is_ok());
        assert_eq!(l.weight_sparsity(), 1.0);
    }

    #[test]
    fn rejects_multiple_inputs() {
        let l = layer(false);
        let t = Tensor4::zeros(1, 3, 5, 5);
        assert!(l.forward(&[&t, &t]).is_err());
    }
}
