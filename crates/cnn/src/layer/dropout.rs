//! Dropout layer — identity at inference time (Caffe semantics).

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{ShapeError, Tensor4, TensorResult};

/// Inference-mode dropout: a pass-through. Present so Caffenet's layer
/// list (and its timing breakdown) matches the deployed prototxt.
pub struct DropoutLayer {
    name: String,
    /// Training-time drop probability; recorded for completeness.
    ratio: f32,
}

impl DropoutLayer {
    /// Create a dropout layer with the given (training-time) drop ratio.
    pub fn new(name: impl Into<String>, ratio: f32) -> Self {
        Self {
            name: name.into(),
            ratio,
        }
    }

    /// Training-time drop probability.
    pub fn ratio(&self) -> f32 {
        self.ratio
    }
}

impl Layer for DropoutLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dropout
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let [input] = inputs else {
            return Err(ShapeError::new("dropout: expected exactly one input"));
        };
        Ok((*input).clone())
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("dropout: expected exactly one input"));
        };
        let (n, c, h, w) = input.shape();
        out.resize(n, c, h, w);
        out.as_mut_slice().copy_from_slice(input.as_slice());
        Ok(())
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [shape] = in_shapes else {
            return Err(ShapeError::new("dropout: expected exactly one input shape"));
        };
        Ok(*shape)
    }

    fn macs_per_image(&self, _in_shapes: &[ChwShape]) -> TensorResult<u64> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_identity_at_inference() {
        let l = DropoutLayer::new("drop6", 0.5);
        let x = Tensor4::from_fn(1, 2, 2, 2, |_, c, h, w| (c + h + w) as f32);
        assert_eq!(l.forward(&[&x]).unwrap(), x);
        assert_eq!(l.ratio(), 0.5);
    }
}
