//! Pooling layer (max or average).

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{
    avg_pool2d, avg_pool2d_into, max_pool2d, max_pool2d_into, Pool2dParams, ShapeError, Tensor4,
    TensorResult,
};
use serde::{Deserialize, Serialize};

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolMode {
    /// Maximum over the window.
    Max,
    /// Mean over valid window cells.
    Avg,
}

/// Spatial pooling layer.
pub struct PoolLayer {
    name: String,
    mode: PoolMode,
    params: Pool2dParams,
}

impl PoolLayer {
    /// Create a pooling layer with window `k`, padding `pad`, stride `stride`.
    pub fn new(
        name: impl Into<String>,
        mode: PoolMode,
        k: usize,
        pad: usize,
        stride: usize,
    ) -> Self {
        Self {
            name: name.into(),
            mode,
            params: Pool2dParams::new(k, pad, stride),
        }
    }

    /// Pooling mode.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }
}

impl Layer for PoolLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pooling
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let [input] = inputs else {
            return Err(ShapeError::new("pool: expected exactly one input"));
        };
        match self.mode {
            PoolMode::Max => max_pool2d(input, &self.params),
            PoolMode::Avg => avg_pool2d(input, &self.params),
        }
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("pool: expected exactly one input"));
        };
        match self.mode {
            PoolMode::Max => max_pool2d_into(input, &self.params, out),
            PoolMode::Avg => avg_pool2d_into(input, &self.params, out),
        }
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [(c, h, w)] = in_shapes else {
            return Err(ShapeError::new("pool: expected exactly one input shape"));
        };
        let (oh, ow) = self.params.out_shape(*h, *w)?;
        Ok((*c, oh, ow))
    }

    fn macs_per_image(&self, _in_shapes: &[ChwShape]) -> TensorResult<u64> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_layer_caffenet_pool1() {
        // Caffenet pool1: 3x3 stride 2 on 96x55x55 -> 96x27x27.
        let l = PoolLayer::new("pool1", PoolMode::Max, 3, 0, 2);
        assert_eq!(l.out_shape(&[(96, 55, 55)]).unwrap(), (96, 27, 27));
    }

    #[test]
    fn avg_pool_layer_forward() {
        let l = PoolLayer::new("gap", PoolMode::Avg, 2, 0, 2);
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = l.forward(&[&x]).unwrap();
        assert_eq!(y.as_slice(), &[3.0]);
    }
}
