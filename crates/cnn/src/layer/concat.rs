//! Channel-dimension concatenation (inception module output).

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{ShapeError, Tensor4, TensorResult};

/// Concatenate any number of same-spatial-shape tensors along channels —
/// the join at the end of every Googlenet inception module.
pub struct ConcatLayer {
    name: String,
}

impl ConcatLayer {
    /// Create a concat layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for ConcatLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Concat
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(inputs, &mut out)?;
        Ok(out)
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        if inputs.is_empty() {
            return Err(ShapeError::new("concat: needs at least one input"));
        }
        let (n, _, h, w) = inputs[0].shape();
        for t in inputs {
            if t.n() != n || t.h() != h || t.w() != w {
                return Err(ShapeError::new(format!(
                    "concat {}: incompatible shapes {:?} vs {:?}",
                    self.name,
                    inputs[0].shape(),
                    t.shape()
                )));
            }
        }
        let total_c: usize = inputs.iter().map(|t| t.c()).sum();
        out.resize(n, total_c, h, w);
        for ni in 0..n {
            let mut offset = 0;
            let hw = h * w;
            for t in inputs {
                let src = t.image(ni);
                let dst = &mut out.image_mut(ni)[offset * hw..(offset + t.c()) * hw];
                dst.copy_from_slice(src);
                offset += t.c();
            }
        }
        Ok(())
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        if in_shapes.is_empty() {
            return Err(ShapeError::new("concat: needs at least one input shape"));
        }
        let (_, h, w) = in_shapes[0];
        for (_, h2, w2) in in_shapes {
            if *h2 != h || *w2 != w {
                return Err(ShapeError::new("concat: spatial shapes differ"));
            }
        }
        Ok((in_shapes.iter().map(|(c, _, _)| c).sum(), h, w))
    }

    fn macs_per_image(&self, _in_shapes: &[ChwShape]) -> TensorResult<u64> {
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenates_channels_in_order() {
        let l = ConcatLayer::new("cat");
        let a = Tensor4::from_fn(2, 1, 2, 2, |_, _, _, _| 1.0);
        let b = Tensor4::from_fn(2, 2, 2, 2, |_, _, _, _| 2.0);
        let y = l.forward(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), (2, 3, 2, 2));
        assert!(y.image(0)[..4].iter().all(|&v| v == 1.0));
        assert!(y.image(0)[4..].iter().all(|&v| v == 2.0));
        assert!(y.image(1)[..4].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn rejects_mismatched_spatial() {
        let l = ConcatLayer::new("cat");
        let a = Tensor4::zeros(1, 1, 2, 2);
        let b = Tensor4::zeros(1, 1, 3, 3);
        assert!(l.forward(&[&a, &b]).is_err());
        assert!(l.out_shape(&[(1, 2, 2), (1, 3, 3)]).is_err());
    }

    #[test]
    fn out_shape_sums_channels() {
        let l = ConcatLayer::new("cat");
        assert_eq!(
            l.out_shape(&[(64, 28, 28), (128, 28, 28), (32, 28, 28), (32, 28, 28)])
                .unwrap(),
            (256, 28, 28)
        );
    }
}
