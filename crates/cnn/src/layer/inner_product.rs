//! Fully-connected (Caffe "InnerProduct") layer.

use super::{ChwShape, Layer, LayerKind};
use cap_tensor::{
    gemm_i8, gemm_prepacked_slice_fused, precision, quant::quantize_rows_into, symmetric_scale,
    CalibrationMethod, CsrMatrix, EpiBias, Epilogue, Matrix, PackedB, PackedBI8, Precision,
    ShapeError, Tensor4, TensorResult, WorkspacePool,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use super::conv::SPARSE_THRESHOLD;

/// Fully-connected layer: flattens each image to a vector and applies
/// `y = W x + b` with `W: out × in`.
///
/// Like [`super::ConvLayer`], pruned (sparse) weights switch execution to
/// the CSR kernel.
pub struct InnerProductLayer {
    name: String,
    in_features: usize,
    out_features: usize,
    weights: Matrix,
    /// Panel-packed transpose of `weights` (`in × out`): the dense
    /// forward computes `Y = X · Wᵀ`, whose GEMM inner loop runs along
    /// the `out` dimension and vectorizes even at batch 1 (computing
    /// `W · Xᵀ` instead degenerates to single-column GEMM). Packing
    /// happens once here, not per forward call.
    packed_t: PackedB,
    bias: Vec<f32>,
    /// Lazily built CSR view of `weights`; invalidated by `set_weights`.
    /// `Arc` so forwards clone a pointer, not the data.
    sparse_cache: RwLock<Option<Arc<CsrMatrix>>>,
    /// Lazily built int8 quantization of the packed transpose, built
    /// only on the `CAP_TENSOR_PRECISION=int8` path; invalidated by
    /// `set_weights`.
    quant_cache: RwLock<Option<Arc<PackedBI8>>>,
    /// Calibrated input-activation scale as f32 bits; 0 (= 0.0) means
    /// uncalibrated (per-call max-abs fallback).
    act_scale: AtomicU32,
    /// Scratch pool for the per-call quantized activation buffer on the
    /// int8 path.
    pool: WorkspacePool,
}

impl InnerProductLayer {
    /// Create a fully-connected layer; validates shapes.
    pub fn new(name: impl Into<String>, weights: Matrix, bias: Vec<f32>) -> TensorResult<Self> {
        let (out_features, in_features) = weights.shape();
        if bias.len() != out_features {
            return Err(ShapeError::new(format!(
                "fc layer: bias length {} != out_features {}",
                bias.len(),
                out_features
            )));
        }
        let packed_t = PackedB::pack(&weights.transpose());
        Ok(Self {
            name: name.into(),
            in_features,
            out_features,
            weights,
            packed_t,
            bias,
            sparse_cache: RwLock::new(None),
            quant_cache: RwLock::new(None),
            act_scale: AtomicU32::new(0),
            pool: WorkspacePool::new(),
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn sparse(&self) -> Arc<CsrMatrix> {
        if let Some(cached) = self.sparse_cache.read().as_ref() {
            return Arc::clone(cached);
        }
        let built = Arc::new(CsrMatrix::from_dense(&self.weights, 0.0));
        *self.sparse_cache.write() = Some(Arc::clone(&built));
        built
    }

    fn quant_t(&self) -> Arc<PackedBI8> {
        if let Some(cached) = self.quant_cache.read().as_ref() {
            return Arc::clone(cached);
        }
        // Wᵀ holds the same values as W, so the per-tensor scale can be
        // taken from the untransposed weights without a second pass.
        let scale = symmetric_scale(self.weights.as_slice());
        let built = Arc::new(PackedBI8::pack(&self.weights.transpose(), scale));
        *self.quant_cache.write() = Some(Arc::clone(&built));
        built
    }

    /// Calibrated activation scale, or a deterministic per-call max-abs
    /// estimate over the whole input when no calibration pass has run.
    fn act_scale_for(&self, input: &Tensor4) -> f32 {
        let s = f32::from_bits(self.act_scale.load(Ordering::Relaxed));
        if s > 0.0 {
            s
        } else {
            symmetric_scale(input.as_slice())
        }
    }

    /// Shared body of [`Layer::forward_into`] / [`Layer::forward_into_fused`]:
    /// the only difference is whether a ReLU rides the kernel epilogue.
    fn run(&self, inputs: &[&Tensor4], out: &mut Tensor4, relu: bool) -> TensorResult<()> {
        let [input] = inputs else {
            return Err(ShapeError::new("fc: expected exactly one input"));
        };
        if input.image_len() != self.in_features {
            return Err(ShapeError::new(format!(
                "fc {}: input features {} != {}",
                self.name,
                input.image_len(),
                self.in_features
            )));
        }
        let batch = input.n();
        out.resize(batch, self.out_features, 1, 1);
        if self.weights.sparsity(0.0) > SPARSE_THRESHOLD {
            if batch == 1 {
                // Batch-1 sparse path: the product is a matvec, so run
                // the CSR spmv kernel straight from the input slice into
                // the output slice — no Xᵀ/Y staging matrices, no
                // transposes, no allocation.
                return self.sparse().matvec_fused_into(
                    input.as_slice(),
                    out.as_mut_slice(),
                    Some(&self.bias),
                    relu,
                );
            }
            // Sparse path: CSR row-skipping needs W's rows, so compute
            // W (out×in, sparse) × Xᵀ (in×batch) and transpose back.
            // Bias/ReLU ride the SpMM row store (CSR rows are out
            // features, so the bias is per-row there).
            let x_t = input.to_matrix().transpose();
            let mut y = Matrix::zeros(self.out_features, batch);
            self.sparse()
                .matmul_dense_into_fused(&x_t, &mut y, Some(&self.bias), relu)?;
            let o = out.as_mut_slice();
            for b in 0..batch {
                for of in 0..self.out_features {
                    o[b * self.out_features + of] = y.get(of, b);
                }
            }
        } else if precision::selected() == Precision::Int8 {
            // Int8 dense path: quantize the flattened activations into
            // pooled scratch with the calibrated (or fallback) scale,
            // then run the integer GEMM against the pre-quantized Wᵀ,
            // dequantizing by the combined scale in the store epilogue.
            // The sparse branches above deliberately stay f32: CSR
            // row-skipping is bandwidth-bound, so int8 buys little
            // there, and SpMV keeps its scalar-by-contract guarantee.
            let qw = self.quant_t();
            let act_scale = self.act_scale_for(input);
            let mut ws = self.pool.checkout();
            let qb = ws.qbuf_slot();
            let kp = quantize_rows_into(
                input.as_slice(),
                batch,
                self.in_features,
                1.0 / act_scale,
                qb,
            );
            debug_assert_eq!(kp, qw.kp());
            gemm_i8(
                qb,
                batch,
                kp,
                self.out_features,
                qw.data(),
                out.as_mut_slice(),
                qw.scale() * act_scale,
                Epilogue {
                    bias: Some(EpiBias::PerCol(&self.bias)),
                    relu,
                },
            )?;
        } else {
            // Dense path: Y = X · Wᵀ, vectorizable at any batch size. A
            // `(n, c, 1, 1)` tensor's flat data IS the `n × c` row-major
            // matrix, so both input and output go straight through with
            // no copies: the GEMM writes into `out`'s reused buffer
            // (routing through the dedicated gemv kernel when batch is
            // 1), and bias/ReLU ride its store as a per-column epilogue
            // (out features are GEMM columns here).
            gemm_prepacked_slice_fused(
                input.as_slice(),
                batch,
                &self.packed_t,
                out.as_mut_slice(),
                Epilogue {
                    bias: Some(EpiBias::PerCol(&self.bias)),
                    relu,
                },
            )?;
        }
        Ok(())
    }
}

impl Layer for InnerProductLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::InnerProduct
    }

    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4> {
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        self.forward_into(inputs, &mut out)?;
        Ok(out)
    }

    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        self.run(inputs, out, false)
    }

    fn supports_relu_fusion(&self) -> bool {
        true
    }

    fn forward_into_fused(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        self.run(inputs, out, true)
    }

    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape> {
        let [(c, h, w)] = in_shapes else {
            return Err(ShapeError::new("fc: expected exactly one input shape"));
        };
        if c * h * w != self.in_features {
            return Err(ShapeError::new(format!(
                "fc {}: input features {} != {}",
                self.name,
                c * h * w,
                self.in_features
            )));
        }
        Ok((self.out_features, 1, 1))
    }

    fn macs_per_image(&self, _in_shapes: &[ChwShape]) -> TensorResult<u64> {
        Ok(self.in_features as u64 * self.out_features as u64)
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn weights(&self) -> Option<&Matrix> {
        Some(&self.weights)
    }

    fn set_weights(&mut self, weights: Matrix) -> TensorResult<()> {
        if weights.shape() != self.weights.shape() {
            return Err(ShapeError::new(format!(
                "fc {}: set_weights {:?}, expected {:?}",
                self.name,
                weights.shape(),
                self.weights.shape()
            )));
        }
        self.packed_t = PackedB::pack(&weights.transpose());
        self.weights = weights;
        *self.sparse_cache.write() = None;
        *self.quant_cache.write() = None;
        Ok(())
    }

    fn observe_input(&self, inputs: &[&Tensor4], method: CalibrationMethod) {
        if let [input] = inputs {
            let s = method.scale_for(input.as_slice());
            self.act_scale.store(s.to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_tensor::gemm;

    #[test]
    fn computes_wx_plus_b() {
        // W = [[1,0],[0,2],[1,1]], b = [0.5, -0.5, 0].
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 2.0, 1.0, 1.0]).unwrap();
        let fc = InnerProductLayer::new("fc_t", w, vec![0.5, -0.5, 0.0]).unwrap();
        let x = Tensor4::from_vec(2, 2, 1, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // Exact-equality oracle: pin f32 so an int8 precision leg does
        // not route this forward through the quantized path.
        cap_tensor::precision::force(Some(cap_tensor::Precision::F32));
        let y = fc.forward(&[&x]).unwrap();
        cap_tensor::precision::force(None);
        assert_eq!(y.shape(), (2, 3, 1, 1));
        assert_eq!(y.image(0), &[1.5, 3.5, 3.0]);
        assert_eq!(y.image(1), &[3.5, 7.5, 7.0]);
    }

    #[test]
    fn flattens_spatial_input() {
        let w = Matrix::identity(8);
        let fc = InnerProductLayer::new("fc_t", w, vec![0.0; 8]).unwrap();
        let x = Tensor4::from_fn(1, 2, 2, 2, |_, c, h, ww| (c * 4 + h * 2 + ww) as f32);
        let y = fc.forward(&[&x]).unwrap();
        assert_eq!(y.shape(), (1, 8, 1, 1));
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn sparse_path_matches_dense() {
        let mut w = Matrix::from_fn(6, 10, |r, c| ((r + c) % 3) as f32 - 1.0);
        for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let dense_result = {
            // Compute with dense gemm manually.
            let x = Matrix::from_fn(10, 3, |r, c| (r as f32 - c as f32) / 4.0);
            gemm(&w, &x).unwrap()
        };
        let fc = InnerProductLayer::new("fc_t", w, vec![0.0; 6]).unwrap();
        assert!(fc.weight_sparsity() > SPARSE_THRESHOLD);
        let x_t = Matrix::from_fn(10, 3, |r, c| (r as f32 - c as f32) / 4.0).transpose();
        let x = Tensor4::from_matrix(&x_t, 10, 1, 1).unwrap();
        let y = fc.forward(&[&x]).unwrap();
        for b in 0..3 {
            for o in 0..6 {
                assert!((y.get(b, o, 0, 0) - dense_result.get(o, b)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn shape_validation() {
        let fc = InnerProductLayer::new("fc_t", Matrix::zeros(3, 8), vec![0.0; 3]).unwrap();
        assert_eq!(fc.out_shape(&[(2, 2, 2)]).unwrap(), (3, 1, 1));
        assert!(fc.out_shape(&[(2, 2, 3)]).is_err());
        assert!(InnerProductLayer::new("bad", Matrix::zeros(3, 8), vec![0.0; 4]).is_err());
    }

    #[test]
    fn macs_is_in_times_out() {
        let fc = InnerProductLayer::new("fc_t", Matrix::zeros(3, 8), vec![0.0; 3]).unwrap();
        assert_eq!(fc.macs_per_image(&[(8, 1, 1)]).unwrap(), 24);
    }
}
