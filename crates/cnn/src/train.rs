//! Training primitives: backward passes for conv / fc / relu / maxpool,
//! softmax–cross-entropy loss, and SGD with momentum.
//!
//! The paper consumes *trained* CNNs; since no trained Caffe weights are
//! available here, the [`crate::models::TinyNet`] path trains a small CNN
//! for real on synthetic data so that accuracy-vs-pruning curves can be
//! measured end-to-end rather than only modelled.

pub mod sequential;

pub use sequential::{SequentialBuilder, SequentialNet, TrainLayer};

use cap_tensor::{col2im, gemm, im2col, Conv2dParams, Matrix, ShapeError, Tensor4, TensorResult};
use std::collections::HashMap;

/// Gradients produced by [`conv_backward`].
pub struct ConvGrad {
    /// Weight gradient, same shape as the weight matrix.
    pub dw: Matrix,
    /// Bias gradient, one entry per output channel.
    pub db: Vec<f32>,
    /// Input gradient, same shape as the forward input.
    pub dx: Tensor4,
}

/// Gradients produced by [`fc_backward`].
pub struct FcGrad {
    /// Weight gradient (`out × in`).
    pub dw: Matrix,
    /// Bias gradient (`out`).
    pub db: Vec<f32>,
    /// Input gradient (`batch × in`).
    pub dx: Matrix,
}

/// Backward pass of an ungrouped convolution.
///
/// Given the forward input, upstream gradient `dy` (shape = forward
/// output), and weights, returns gradients w.r.t. weights, bias and input
/// using the same im2col lowering as the forward pass:
/// `dW = dY · colsᵀ`, `dcols = Wᵀ · dY`, `dX = col2im(dcols)`.
pub fn conv_backward(
    input: &Tensor4,
    dy: &Tensor4,
    weights: &Matrix,
    params: &Conv2dParams,
) -> TensorResult<ConvGrad> {
    if params.groups != 1 {
        return Err(ShapeError::new(
            "conv_backward: grouped convolution not supported in the training path",
        ));
    }
    let (n, c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    if dy.shape() != (n, params.out_channels, oh, ow) {
        return Err(ShapeError::new(format!(
            "conv_backward: dy shape {:?}, expected {:?}",
            dy.shape(),
            (n, params.out_channels, oh, ow)
        )));
    }
    let n_out = oh * ow;
    let mut dw = Matrix::zeros(weights.rows(), weights.cols());
    let mut db = vec![0.0_f32; params.out_channels];
    let mut dx = Tensor4::zeros(n, c, h, w);
    let wt = weights.transpose();
    for ni in 0..n {
        let cols = im2col(
            input.image(ni),
            c,
            h,
            w,
            params.kh,
            params.kw,
            params.pad,
            params.stride,
        )?;
        let dy_img = Matrix::from_vec(params.out_channels, n_out, dy.image(ni).to_vec())?;
        // dW accumulation: dY (oc × n_out) * colsᵀ (n_out × ck²).
        let dw_img = gemm(&dy_img, &cols.transpose())?;
        dw.axpy(1.0, &dw_img)?;
        // db accumulation: row sums of dY.
        for (oc, dbv) in db.iter_mut().enumerate() {
            *dbv += dy_img.row(oc).iter().sum::<f32>();
        }
        // dX: col2im(Wᵀ · dY).
        let dcols = gemm(&wt, &dy_img)?;
        let dx_img = col2im(
            &dcols,
            c,
            h,
            w,
            params.kh,
            params.kw,
            params.pad,
            params.stride,
        )?;
        dx.image_mut(ni).copy_from_slice(&dx_img);
    }
    Ok(ConvGrad { dw, db, dx })
}

/// Backward pass of a fully-connected layer `y = x Wᵀ + b`.
///
/// `x: batch × in`, `dy: batch × out`, `w: out × in`.
pub fn fc_backward(x: &Matrix, dy: &Matrix, w: &Matrix) -> TensorResult<FcGrad> {
    if x.rows() != dy.rows() {
        return Err(ShapeError::new(format!(
            "fc_backward: batch {} vs {}",
            x.rows(),
            dy.rows()
        )));
    }
    if w.shape() != (dy.cols(), x.cols()) {
        return Err(ShapeError::new(format!(
            "fc_backward: weights {:?}, expected {:?}",
            w.shape(),
            (dy.cols(), x.cols())
        )));
    }
    let dw = gemm(&dy.transpose(), x)?; // out × in
    let mut db = vec![0.0_f32; dy.cols()];
    for r in 0..dy.rows() {
        for (c, dbv) in db.iter_mut().enumerate() {
            *dbv += dy.get(r, c);
        }
    }
    let dx = gemm(dy, w)?; // batch × in
    Ok(FcGrad { dw, db, dx })
}

/// Backward pass of ReLU: gradient passes where the forward *input* was
/// positive.
pub fn relu_backward(forward_input: &[f32], dy: &[f32]) -> Vec<f32> {
    forward_input
        .iter()
        .zip(dy.iter())
        .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
        .collect()
}

/// Backward pass of max pooling: routes each output gradient to the
/// argmax input element recorded during the forward pass.
pub fn maxpool_backward(input_len: usize, argmax: &[usize], dy: &[f32]) -> TensorResult<Vec<f32>> {
    if argmax.len() != dy.len() {
        return Err(ShapeError::new(format!(
            "maxpool_backward: {} argmax vs {} dy",
            argmax.len(),
            dy.len()
        )));
    }
    let mut dx = vec![0.0_f32; input_len];
    for (&idx, &g) in argmax.iter().zip(dy.iter()) {
        if idx != usize::MAX {
            if idx >= input_len {
                return Err(ShapeError::new("maxpool_backward: argmax out of range"));
            }
            dx[idx] += g;
        }
    }
    Ok(dx)
}

/// Softmax + cross-entropy: returns `(mean loss, dlogits)` where
/// `dlogits = (softmax(logits) - onehot) / batch`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> TensorResult<(f32, Matrix)> {
    if logits.rows() != labels.len() {
        return Err(ShapeError::new(format!(
            "softmax_ce: {} rows vs {} labels",
            logits.rows(),
            labels.len()
        )));
    }
    let classes = logits.cols();
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(ShapeError::new(format!(
            "softmax_ce: label {bad} out of range for {classes} classes"
        )));
    }
    let batch = logits.rows();
    let mut probs = logits.clone();
    cap_tensor::ops::softmax_rows(&mut probs);
    let mut loss = 0.0_f32;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        loss += cap_tensor::ops::cross_entropy(probs.row(r), label);
        let g = grad.get(r, label) - 1.0;
        grad.set(r, label, g);
    }
    grad.scale(1.0 / batch.max(1) as f32);
    Ok((loss / batch.max(1) as f32, grad))
}

/// SGD with classical momentum, keyed per-parameter-tensor.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// Create an optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Apply one update step: `v = momentum*v - lr*g; p += v`.
    ///
    /// `key` identifies the parameter tensor across steps (for its
    /// velocity buffer); `mask` (when given) freezes pruned weights at
    /// zero so fine-tuning after pruning keeps sparsity.
    pub fn step(&mut self, key: &str, params: &mut [f32], grads: &[f32], mask: Option<&[f32]>) {
        assert_eq!(params.len(), grads.len(), "sgd: param/grad length mismatch");
        let v = self
            .velocity
            .entry(key.to_string())
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(v.len(), params.len(), "sgd: velocity length changed");
        for i in 0..params.len() {
            v[i] = self.momentum * v[i] - self.lr * grads[i];
            params[i] += v[i];
            if let Some(m) = mask {
                params[i] *= m[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_tensor::init::xavier_uniform;
    use cap_tensor::{conv2d_gemm, max_pool2d_indices, Pool2dParams};

    /// Central-difference numerical gradient of a scalar loss w.r.t. one
    /// weight element.
    fn numeric_grad(mut f: impl FnMut(f32) -> f32, x0: f32) -> f32 {
        let eps = 1e-3;
        (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps)
    }

    #[test]
    fn conv_backward_matches_numeric() {
        let params = Conv2dParams::new(2, 3, 3, 1, 1);
        let input = Tensor4::from_fn(2, 2, 4, 4, |n, c, h, w| {
            ((n * 5 + c * 3 + h * 2 + w) % 7) as f32 / 7.0 - 0.4
        });
        let weights = xavier_uniform(3, 18, 21);
        let bias = vec![0.0; 3];
        // Loss = sum of outputs; so dy = ones.
        let out = conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap();
        let dy =
            Tensor4::from_vec(out.n(), out.c(), out.h(), out.w(), vec![1.0; out.len()]).unwrap();
        let grad = conv_backward(&input, &dy, &weights, &params).unwrap();

        // Check a few weight elements numerically.
        for &(r, c) in &[(0usize, 0usize), (1, 7), (2, 17)] {
            let w0 = weights.get(r, c);
            let num = numeric_grad(
                |v| {
                    let mut wmod = weights.clone();
                    wmod.set(r, c, v);
                    conv2d_gemm(&input, &wmod, Some(&bias), &params)
                        .unwrap()
                        .as_slice()
                        .iter()
                        .sum::<f32>()
                },
                w0,
            );
            let ana = grad.dw.get(r, c);
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + num.abs()),
                "dW[{r},{c}] numeric {num} vs analytic {ana}"
            );
        }
        // And an input element.
        let idx = 13;
        let x0 = input.as_slice()[idx];
        let num = numeric_grad(
            |v| {
                let mut xmod = input.clone();
                xmod.as_mut_slice()[idx] = v;
                conv2d_gemm(&xmod, &weights, Some(&bias), &params)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .sum::<f32>()
            },
            x0,
        );
        let ana = grad.dx.as_slice()[idx];
        assert!((num - ana).abs() < 0.05 * (1.0 + num.abs()));
        // Bias gradient for "sum" loss = number of output positions per channel * batch.
        let expected_db = (out.h() * out.w() * out.n()) as f32;
        for &dbv in &grad.db {
            assert!((dbv - expected_db).abs() < 1e-2);
        }
    }

    #[test]
    fn conv_backward_rejects_groups() {
        let params = Conv2dParams::grouped(4, 4, 3, 1, 1, 2);
        let input = Tensor4::zeros(1, 4, 4, 4);
        let dy = Tensor4::zeros(1, 4, 4, 4);
        let w = Matrix::zeros(4, 18);
        assert!(conv_backward(&input, &dy, &w, &params).is_err());
    }

    #[test]
    fn fc_backward_matches_numeric() {
        let x = Matrix::from_fn(3, 4, |r, c| (r as f32 - c as f32) / 3.0);
        let w = xavier_uniform(2, 4, 5);
        // Loss = sum(x Wᵀ) -> dy = ones.
        let dy = Matrix::full(3, 2, 1.0);
        let grad = fc_backward(&x, &dy, &w).unwrap();
        for &(r, c) in &[(0usize, 0usize), (1, 3)] {
            let w0 = w.get(r, c);
            let num = numeric_grad(
                |v| {
                    let mut wmod = w.clone();
                    wmod.set(r, c, v);
                    gemm(&x, &wmod.transpose())
                        .unwrap()
                        .as_slice()
                        .iter()
                        .sum::<f32>()
                },
                w0,
            );
            assert!((num - grad.dw.get(r, c)).abs() < 1e-2);
        }
        // db = batch count per output.
        assert!(grad.db.iter().all(|&v| (v - 3.0).abs() < 1e-5));
        assert_eq!(grad.dx.shape(), (3, 4));
    }

    #[test]
    fn relu_backward_masks() {
        let dx = relu_backward(&[-1.0, 0.0, 2.0], &[5.0, 5.0, 5.0]);
        assert_eq!(dx, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 9.0, 2.0, 3.0]).unwrap();
        let (_, argmax) = max_pool2d_indices(&input, &Pool2dParams::new(2, 0, 2)).unwrap();
        let dx = maxpool_backward(4, &argmax, &[7.0]).unwrap();
        assert_eq!(dx, vec![0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_ce_gradient_shape_and_direction() {
        let logits = Matrix::from_vec(2, 3, vec![2.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]).unwrap();
        assert!(loss > 0.0);
        // Gradient at the true class is negative (push logit up).
        assert!(grad.get(0, 0) < 0.0);
        assert!(grad.get(1, 2) < 0.0);
        // Rows sum to ~0.
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_ce_matches_numeric() {
        let logits = Matrix::from_vec(1, 4, vec![0.5, -0.3, 0.2, 0.1]).unwrap();
        let labels = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        for c in 0..4 {
            let l0 = logits.get(0, c);
            let num = numeric_grad(
                |v| {
                    let mut lm = logits.clone();
                    lm.set(0, c, v);
                    softmax_cross_entropy(&lm, &labels).unwrap().0
                },
                l0,
            );
            assert!((num - grad.get(0, c)).abs() < 1e-2, "logit {c}");
        }
    }

    #[test]
    fn sgd_descends_quadratic() {
        // Minimize f(p) = p² with gradient 2p.
        let mut sgd = Sgd::new(0.1, 0.9);
        let mut p = vec![5.0_f32];
        for _ in 0..100 {
            let g = vec![2.0 * p[0]];
            sgd.step("p", &mut p, &g, None);
        }
        assert!(p[0].abs() < 0.1, "p = {}", p[0]);
    }

    #[test]
    fn sgd_mask_freezes_pruned_weights() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut p = vec![0.0_f32, 1.0];
        let mask = vec![0.0_f32, 1.0];
        sgd.step("p", &mut p, &[1.0, 1.0], Some(&mask));
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 0.9).abs() < 1e-6);
    }
}
