//! The [`Layer`] trait and all layer implementations.
//!
//! Layers are forward-only (inference is what the paper measures); the
//! trainable path lives in [`crate::train`]. A layer consumes one or more
//! NCHW tensors and produces one. Convolution and inner-product layers
//! carry weights and support pruning: zeroed weights are detected and,
//! above a sparsity threshold, execution switches to CSR sparse kernels —
//! mirroring the sparse-Caffe fork the paper uses.

mod concat;
mod conv;
mod dropout;
mod inner_product;
mod lrn;
mod pool;
mod relu;
mod softmax;

pub use concat::ConcatLayer;
pub use conv::{ConvLayer, SPARSE_THRESHOLD};
pub use dropout::DropoutLayer;
pub use inner_product::InnerProductLayer;
pub use lrn::LrnLayer;
pub use pool::{PoolLayer, PoolMode};
pub use relu::ReluLayer;
pub use softmax::SoftmaxLayer;

use cap_tensor::{CalibrationMethod, Matrix, Tensor4, TensorResult};
use serde::{Deserialize, Serialize};

/// Per-image shape `(channels, height, width)` flowing between layers.
pub type ChwShape = (usize, usize, usize);

/// Coarse classification of a layer, used for reporting (Figure 3 groups
/// time by layer) and for selecting prunable layers (the paper prunes
/// convolution layers only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Convolution,
    /// Fully-connected (Caffe "InnerProduct").
    InnerProduct,
    /// Rectified linear activation.
    Relu,
    /// Max or average pooling.
    Pooling,
    /// Local response normalization.
    Lrn,
    /// Channel-dimension concatenation (inception modules).
    Concat,
    /// Dropout (identity at inference time).
    Dropout,
    /// Softmax classifier head.
    Softmax,
}

impl LayerKind {
    /// Short lowercase tag used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            LayerKind::Convolution => "conv",
            LayerKind::InnerProduct => "fc",
            LayerKind::Relu => "relu",
            LayerKind::Pooling => "pool",
            LayerKind::Lrn => "lrn",
            LayerKind::Concat => "concat",
            LayerKind::Dropout => "dropout",
            LayerKind::Softmax => "softmax",
        }
    }
}

/// A forward-only CNN layer.
pub trait Layer: Send + Sync {
    /// Unique layer name (e.g. `conv1`, `inception-3a-3x3`).
    fn name(&self) -> &str;

    /// Layer kind for grouping and prunability checks.
    fn kind(&self) -> LayerKind;

    /// Execute the layer on its inputs (most layers take exactly one).
    fn forward(&self, inputs: &[&Tensor4]) -> TensorResult<Tensor4>;

    /// Execute the layer, writing into a reusable output tensor.
    ///
    /// `out` is reshaped in place; once its buffer has grown to the
    /// steady-state high-water mark, repeat calls allocate nothing. The
    /// default delegates to [`Layer::forward`] and moves the result —
    /// layers on the hot inference path override it.
    fn forward_into(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        *out = self.forward(inputs)?;
        Ok(())
    }

    /// Whether this layer can absorb an immediately following ReLU into
    /// its own store ([`Layer::forward_into_fused`]). The network
    /// executor's fusion pass only rewrites `X → relu` chains where `X`
    /// reports `true` here.
    fn supports_relu_fusion(&self) -> bool {
        false
    }

    /// Execute the layer with a ReLU fused onto its output.
    ///
    /// Must be **bitwise identical** to [`Layer::forward_into`] followed
    /// by a [`ReluLayer`] (`v > 0.0` keeps `v`; negatives, `-0.0` and
    /// NaN flush to `+0.0`). The default honors that contract the slow
    /// way — forward then an in-place ReLU sweep; layers reporting
    /// [`Layer::supports_relu_fusion`] override it with a single-pass
    /// fused kernel.
    fn forward_into_fused(&self, inputs: &[&Tensor4], out: &mut Tensor4) -> TensorResult<()> {
        self.forward_into(inputs, out)?;
        for v in out.as_mut_slice() {
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
        Ok(())
    }

    /// Per-image output shape given per-image input shapes.
    fn out_shape(&self, in_shapes: &[ChwShape]) -> TensorResult<ChwShape>;

    /// Multiply–accumulate operations per image (0 for shape-only layers).
    fn macs_per_image(&self, in_shapes: &[ChwShape]) -> TensorResult<u64>;

    /// Number of learnable parameters (weights + biases).
    fn param_count(&self) -> usize {
        0
    }

    /// Weight matrix, if this layer has one.
    fn weights(&self) -> Option<&Matrix> {
        None
    }

    /// Replace the weight matrix (used by pruning). Layers without
    /// weights return an error.
    fn set_weights(&mut self, _weights: Matrix) -> TensorResult<()> {
        Err(cap_tensor::ShapeError::new(format!(
            "layer {} has no weights",
            self.name()
        )))
    }

    /// Fraction of zero weights (0.0 for weightless layers).
    fn weight_sparsity(&self) -> f64 {
        self.weights().map_or(0.0, |w| w.sparsity(0.0))
    }

    /// Activation-range calibration hook: observe the tensors this
    /// layer is about to consume and record whatever state the int8
    /// path needs (conv/fc store a per-layer activation scale derived
    /// via `method`). Called by [`crate::Network::calibrate`] on every
    /// node of a calibration forward pass; the default is a no-op —
    /// layers without quantizable inputs ignore it.
    fn observe_input(&self, _inputs: &[&Tensor4], _method: CalibrationMethod) {}
}

/// FLOPs per image = 2 × MACs (one multiply + one add), the convention
/// used throughout the evaluation.
pub fn flops_per_image(layer: &dyn Layer, in_shapes: &[ChwShape]) -> TensorResult<u64> {
    Ok(2 * layer.macs_per_image(in_shapes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(LayerKind::Convolution.tag(), "conv");
        assert_eq!(LayerKind::InnerProduct.tag(), "fc");
        assert_eq!(LayerKind::Softmax.tag(), "softmax");
    }
}
