//! A configurable trainable sequential CNN — the generalization of
//! [`crate::models::TinyNet`] that lets measured experiments build
//! arbitrary conv/pool/fc stacks (e.g. a three-conv "mini-Caffenet" for
//! measuring multi-layer pruning interactions, Figure 8's Observation 3,
//! on real training rather than on the calibrated model).

use super::{
    conv_backward, fc_backward, maxpool_backward, relu_backward, softmax_cross_entropy, Sgd,
};
use crate::accuracy::{evaluate_topk, AccuracyReport};
use cap_tensor::{
    conv2d_gemm, gemm, init::xavier_uniform, max_pool2d_indices, ops::relu_inplace, Conv2dParams,
    Matrix, Pool2dParams, ShapeError, Tensor4, TensorResult,
};
use serde::{Deserialize, Serialize};

/// One trainable layer of a [`SequentialNet`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum TrainLayer {
    /// Ungrouped convolution with weights and bias.
    Conv {
        /// Geometry (groups must be 1 for the training path).
        params: Conv2dParams,
        /// Weights, `out × in·k²`.
        w: Matrix,
        /// Bias, one per output channel.
        b: Vec<f32>,
    },
    /// ReLU activation.
    Relu,
    /// Max pooling (square window, no padding).
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully-connected classifier head (input flattened implicitly).
    Fc {
        /// Weights, `out × in`.
        w: Matrix,
        /// Bias, one per output.
        b: Vec<f32>,
    },
}

impl TrainLayer {
    /// Mutable weight matrix, if this layer has one — the pruning hook.
    pub fn weights_mut(&mut self) -> Option<&mut Matrix> {
        match self {
            TrainLayer::Conv { w, .. } | TrainLayer::Fc { w, .. } => Some(w),
            _ => None,
        }
    }

    /// Immutable weight matrix, if any.
    pub fn weights(&self) -> Option<&Matrix> {
        match self {
            TrainLayer::Conv { w, .. } | TrainLayer::Fc { w, .. } => Some(w),
            _ => None,
        }
    }
}

/// A trainable sequential CNN ending in a fully-connected classifier.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SequentialNet {
    in_shape: (usize, usize, usize),
    layers: Vec<TrainLayer>,
}

/// Builder for [`SequentialNet`] — tracks the flowing shape so layer
/// sizes are derived, not hand-computed.
pub struct SequentialBuilder {
    in_shape: (usize, usize, usize),
    current: (usize, usize, usize),
    layers: Vec<TrainLayer>,
    seed: u64,
    error: Option<ShapeError>,
}

impl SequentialBuilder {
    /// Start a builder for per-image input shape `(c, h, w)`.
    pub fn new(in_shape: (usize, usize, usize), seed: u64) -> Self {
        Self {
            in_shape,
            current: in_shape,
            layers: Vec::new(),
            seed,
            error: None,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.seed
    }

    /// Append a 3×3 (or `k×k`) convolution with `out` channels, padding
    /// `pad`, stride 1, Xavier-initialized.
    pub fn conv(mut self, out: usize, k: usize, pad: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        let (c, h, w) = self.current;
        let params = Conv2dParams::new(c, out, k, pad, 1);
        match params.out_shape(h, w) {
            Ok((oh, ow)) => {
                let seed = self.next_seed();
                self.layers.push(TrainLayer::Conv {
                    params,
                    w: xavier_uniform(out, c * k * k, seed),
                    b: vec![0.0; out],
                });
                self.current = (out, oh, ow);
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Append a ReLU.
    pub fn relu(mut self) -> Self {
        if self.error.is_none() {
            self.layers.push(TrainLayer::Relu);
        }
        self
    }

    /// Append max pooling with window `k` and stride `k`.
    pub fn maxpool(mut self, k: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        let (c, h, w) = self.current;
        match Pool2dParams::new(k, 0, k).out_shape(h, w) {
            Ok((oh, ow)) => {
                self.layers.push(TrainLayer::MaxPool { k, stride: k });
                self.current = (c, oh, ow);
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Append the fully-connected classifier head with `classes` outputs
    /// and finish the network.
    pub fn fc(mut self, classes: usize) -> TensorResult<SequentialNet> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let (c, h, w) = self.current;
        let seed = self.next_seed();
        self.layers.push(TrainLayer::Fc {
            w: xavier_uniform(classes, c * h * w, seed),
            b: vec![0.0; classes],
        });
        Ok(SequentialNet {
            in_shape: self.in_shape,
            layers: self.layers,
        })
    }
}

/// Cached per-layer forward state for the backward pass.
enum Cache {
    Conv {
        input: Tensor4,
    },
    Relu {
        pre: Tensor4,
    },
    MaxPool {
        argmax: Vec<usize>,
        in_shape: (usize, usize, usize, usize),
    },
    Fc {
        flat: Matrix,
    },
}

impl SequentialNet {
    /// Per-image input shape.
    pub fn in_shape(&self) -> (usize, usize, usize) {
        self.in_shape
    }

    /// Layers, immutable.
    pub fn layers(&self) -> &[TrainLayer] {
        &self.layers
    }

    /// Mutable layer access (pruning swaps weights through this).
    pub fn layer_mut(&mut self, idx: usize) -> Option<&mut TrainLayer> {
        self.layers.get_mut(idx)
    }

    /// Indices of layers that carry prunable weights, in order.
    pub fn weighted_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.weights().is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                TrainLayer::Conv { w, b, .. } | TrainLayer::Fc { w, b } => w.len() + b.len(),
                _ => 0,
            })
            .sum()
    }

    fn forward_cached(&self, x: &Tensor4) -> TensorResult<(Matrix, Vec<Cache>)> {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut act = x.clone();
        let mut logits: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                TrainLayer::Conv { params, w, b } => {
                    caches.push(Cache::Conv { input: act.clone() });
                    act = conv2d_gemm(&act, w, Some(b), params)?;
                }
                TrainLayer::Relu => {
                    caches.push(Cache::Relu { pre: act.clone() });
                    relu_inplace(act.as_mut_slice());
                }
                TrainLayer::MaxPool { k, stride } => {
                    let (pooled, argmax) =
                        max_pool2d_indices(&act, &Pool2dParams::new(*k, 0, *stride))?;
                    caches.push(Cache::MaxPool {
                        argmax,
                        in_shape: act.shape(),
                    });
                    act = pooled;
                }
                TrainLayer::Fc { w, b } => {
                    if i != self.layers.len() - 1 {
                        return Err(ShapeError::new("SequentialNet: Fc must be the final layer"));
                    }
                    let flat = act.to_matrix();
                    let mut y = gemm(&flat, &w.transpose())?;
                    for r in 0..y.rows() {
                        for (v, bias) in y.row_mut(r).iter_mut().zip(b.iter()) {
                            *v += bias;
                        }
                    }
                    caches.push(Cache::Fc { flat });
                    logits = Some(y);
                }
            }
        }
        logits
            .map(|l| (l, caches))
            .ok_or_else(|| ShapeError::new("SequentialNet: missing Fc head"))
    }

    /// Forward pass returning `batch × classes` logits.
    pub fn logits(&self, x: &Tensor4) -> TensorResult<Matrix> {
        Ok(self.forward_cached(x)?.0)
    }

    /// One SGD step; returns the mean loss. `masks` maps a weighted layer
    /// index to a 0/1 multiplier freezing pruned weights.
    pub fn train_batch(
        &mut self,
        x: &Tensor4,
        labels: &[usize],
        sgd: &mut Sgd,
        masks: Option<&std::collections::HashMap<usize, Vec<f32>>>,
    ) -> TensorResult<f32> {
        let (logits, caches) = self.forward_cached(x)?;
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels)?;

        // Backward in reverse layer order. `grad_t` carries the NCHW
        // gradient; `grad_m` carries it in flattened form after the head.
        let mut grad_m: Option<Matrix> = Some(dlogits);
        let mut grad_t: Option<Tensor4> = None;
        // Collected (layer idx, dw, db) updates, applied after the walk.
        let mut updates: Vec<(usize, Matrix, Vec<f32>)> = Vec::new();

        for (i, layer) in self.layers.iter().enumerate().rev() {
            match (layer, &caches[i]) {
                (TrainLayer::Fc { w, .. }, Cache::Fc { flat }) => {
                    let g = grad_m.take().expect("fc backward needs matrix grad");
                    let fc = fc_backward(flat, &g, w)?;
                    // Unflatten dx to the shape the previous layer produced.
                    let prev_shape = shape_before(&self.layers, i, self.in_shape, x.n());
                    grad_t = Some(Tensor4::from_matrix(
                        &fc.dx,
                        prev_shape.1,
                        prev_shape.2,
                        prev_shape.3,
                    )?);
                    updates.push((i, fc.dw, fc.db));
                }
                (TrainLayer::MaxPool { .. }, Cache::MaxPool { argmax, in_shape }) => {
                    let g = grad_t.take().expect("pool backward needs tensor grad");
                    let dx = maxpool_backward(
                        in_shape.0 * in_shape.1 * in_shape.2 * in_shape.3,
                        argmax,
                        g.as_slice(),
                    )?;
                    grad_t = Some(Tensor4::from_vec(
                        in_shape.0, in_shape.1, in_shape.2, in_shape.3, dx,
                    )?);
                }
                (TrainLayer::Relu, Cache::Relu { pre }) => {
                    let g = grad_t.take().expect("relu backward needs tensor grad");
                    let dx = relu_backward(pre.as_slice(), g.as_slice());
                    grad_t = Some(Tensor4::from_vec(pre.n(), pre.c(), pre.h(), pre.w(), dx)?);
                }
                (TrainLayer::Conv { params, w, .. }, Cache::Conv { input }) => {
                    let g = grad_t.take().expect("conv backward needs tensor grad");
                    let cg = conv_backward(input, &g, w, params)?;
                    grad_t = Some(cg.dx);
                    updates.push((i, cg.dw, cg.db));
                }
                _ => unreachable!("cache kind always matches layer kind"),
            }
        }

        // Apply parameter updates.
        for (i, dw, db) in updates {
            let key_w = format!("layer{i}_w");
            let key_b = format!("layer{i}_b");
            let mask = masks.and_then(|m| m.get(&i)).map(|v| v.as_slice());
            match &mut self.layers[i] {
                TrainLayer::Conv { w, b, .. } | TrainLayer::Fc { w, b } => {
                    sgd.step(&key_w, w.as_mut_slice(), dw.as_slice(), mask);
                    sgd.step(&key_b, b, &db, None);
                }
                _ => unreachable!("updates only collected for weighted layers"),
            }
        }
        Ok(loss)
    }

    /// Top-1/top-5 evaluation on a labelled batch.
    pub fn evaluate(&self, x: &Tensor4, labels: &[usize]) -> TensorResult<AccuracyReport> {
        evaluate_topk(&self.logits(x)?, labels)
    }
}

/// Per-batch shape `(n, c, h, w)` flowing *into* layer `idx`.
fn shape_before(
    layers: &[TrainLayer],
    idx: usize,
    in_shape: (usize, usize, usize),
    n: usize,
) -> (usize, usize, usize, usize) {
    let (mut c, mut h, mut w) = in_shape;
    for layer in &layers[..idx] {
        match layer {
            TrainLayer::Conv { params, .. } => {
                let (oh, ow) = params.out_shape(h, w).expect("validated at build time");
                c = params.out_channels;
                h = oh;
                w = ow;
            }
            TrainLayer::MaxPool { k, stride } => {
                let (oh, ow) = Pool2dParams::new(*k, 0, *stride)
                    .out_shape(h, w)
                    .expect("validated at build time");
                h = oh;
                w = ow;
            }
            _ => {}
        }
    }
    (n, c, h, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(classes: usize, n: usize, shape: (usize, usize, usize)) -> (Tensor4, Vec<usize>) {
        let (c, h, w) = shape;
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let x = Tensor4::from_fn(n, c, h, w, |ni, ci, hi, wi| {
            let k = labels[ni];
            let phase = (hi * 2 + wi + k * 3 + ci) % 8;
            if phase < 4 {
                1.0 - 0.2 * phase as f32
            } else {
                -0.3
            }
        });
        (x, labels)
    }

    fn three_conv_net(seed: u64) -> SequentialNet {
        SequentialBuilder::new((2, 16, 16), seed)
            .conv(6, 3, 1)
            .relu()
            .maxpool(2)
            .conv(8, 3, 1)
            .relu()
            .maxpool(2)
            .conv(10, 3, 1)
            .relu()
            .fc(4)
            .unwrap()
    }

    #[test]
    fn builder_tracks_shapes_and_counts_params() {
        let net = three_conv_net(5);
        assert_eq!(net.layers().len(), 9);
        assert_eq!(net.weighted_layer_indices(), vec![0, 3, 6, 8]);
        // conv1 6*2*9+6, conv2 8*6*9+8, conv3 10*8*9+10, fc 4*(10*4*4)+4.
        assert_eq!(
            net.param_count(),
            (6 * 18 + 6) + (8 * 54 + 8) + (10 * 72 + 10) + (4 * 160 + 4)
        );
    }

    #[test]
    fn builder_rejects_impossible_geometry() {
        let r = SequentialBuilder::new((1, 4, 4), 1).maxpool(8).fc(2);
        assert!(r.is_err());
        let r2 = SequentialBuilder::new((1, 4, 4), 1).conv(2, 9, 0).fc(2);
        assert!(r2.is_err());
    }

    #[test]
    fn logits_shape_is_batch_by_classes() {
        let net = three_conv_net(7);
        let (x, _) = batch(4, 5, (2, 16, 16));
        let y = net.logits(&x).unwrap();
        assert_eq!(y.shape(), (5, 4));
    }

    #[test]
    fn training_reduces_loss_on_three_conv_stack() {
        let mut net = three_conv_net(11);
        let mut sgd = Sgd::new(0.03, 0.9);
        let (x, labels) = batch(4, 12, (2, 16, 16));
        let first = net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        let mut last = first;
        for _ in 0..40 {
            last = net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        let acc = net.evaluate(&x, &labels).unwrap();
        assert!(acc.top1 > 0.5, "top1 {}", acc.top1);
    }

    #[test]
    fn masked_training_keeps_pruned_weights_zero() {
        let mut net = three_conv_net(13);
        // Zero half of conv2 (layer index 3) and freeze with a mask.
        let w = net.layer_mut(3).unwrap().weights_mut().unwrap();
        for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let mask: Vec<f32> = w
            .as_slice()
            .iter()
            .map(|&v| if v == 0.0 { 0.0 } else { 1.0 })
            .collect();
        let zeros_before = w.len() - w.nnz(0.0);
        let mut masks = std::collections::HashMap::new();
        masks.insert(3usize, mask);
        let mut sgd = Sgd::new(0.03, 0.9);
        let (x, labels) = batch(4, 8, (2, 16, 16));
        for _ in 0..5 {
            net.train_batch(&x, &labels, &mut sgd, Some(&masks))
                .unwrap();
        }
        let w = net.layers()[3].weights().unwrap();
        assert_eq!(w.len() - w.nnz(0.0), zeros_before);
    }

    #[test]
    fn fc_must_be_last() {
        // Build a net manually with Fc in the middle.
        let net = SequentialBuilder::new((1, 4, 4), 1).fc(3).unwrap();
        let mut layers = net.layers().to_vec();
        layers.push(TrainLayer::Relu);
        let bad = SequentialNet {
            in_shape: (1, 4, 4),
            layers,
        };
        let x = Tensor4::zeros(1, 1, 4, 4);
        assert!(bad.logits(&x).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let net = three_conv_net(17);
        let json = serde_json::to_string(&net).unwrap();
        let back: SequentialNet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn measured_multi_layer_interaction_observation3() {
        // Train, then compare accuracy damage of pruning conv1 alone,
        // conv2 alone, and both together — the combined damage must be at
        // least the worst single-layer damage (Observation 3's measured
        // counterpart at this scale).
        let mut net = three_conv_net(23);
        let mut sgd = Sgd::new(0.03, 0.9);
        let (x, labels) = batch(4, 16, (2, 16, 16));
        for _ in 0..50 {
            net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        }
        let base = net.evaluate(&x, &labels).unwrap().top1;

        let prune_at = |net: &SequentialNet, idxs: &[usize]| -> f64 {
            let mut clone = net.clone();
            for &i in idxs {
                let w = clone.layer_mut(i).unwrap().weights_mut().unwrap();
                cap_tensor_prune(w, 0.7);
            }
            clone.evaluate(&x, &labels).unwrap().top1
        };
        let a1 = prune_at(&net, &[0]);
        let a2 = prune_at(&net, &[3]);
        let a12 = prune_at(&net, &[0, 3]);
        assert!(base >= a12 - 1e-9);
        assert!(
            a12 <= a1.min(a2) + 1e-9 + 0.25,
            "combined {a12} vs singles {a1}/{a2}"
        );
    }

    /// Minimal magnitude pruning helper (avoids a dev-dependency cycle
    /// with cap-pruning).
    fn cap_tensor_prune(w: &mut Matrix, ratio: f64) {
        let len = w.len();
        let k = (len as f64 * ratio).round() as usize;
        let mut idx: Vec<usize> = (0..len).collect();
        let data = w.as_mut_slice();
        idx.sort_by(|&a, &b| data[a].abs().partial_cmp(&data[b].abs()).unwrap());
        for &i in idx.iter().take(k) {
            data[i] = 0.0;
        }
    }
}
