//! Model zoo: the two CNNs the paper evaluates plus a small trainable net.

mod caffenet;
mod googlenet;
mod tinynet;

pub use caffenet::{caffenet, CAFFENET_CONV_LAYERS};
pub use googlenet::{googlenet, GOOGLENET_SELECTED_LAYERS};
pub use tinynet::TinyNet;

use cap_tensor::init::{gaussian, xavier_uniform};
use cap_tensor::Matrix;

/// Weight initialization strategy for model construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightInit {
    /// All-zero weights — instant construction for structure/shape tests
    /// and FLOP accounting where values are irrelevant.
    Zeros,
    /// Gaussian with the given standard deviation (Caffe's conv default),
    /// deterministic per seed.
    Gaussian {
        /// Standard deviation.
        std: f32,
        /// RNG seed.
        seed: u64,
    },
    /// Xavier/Glorot uniform, deterministic per seed.
    Xavier {
        /// RNG seed.
        seed: u64,
    },
}

impl WeightInit {
    /// Materialize a `rows × cols` weight matrix. `salt` decorrelates
    /// layers built from the same model seed.
    pub fn build(&self, rows: usize, cols: usize, salt: u64) -> Matrix {
        match *self {
            WeightInit::Zeros => Matrix::zeros(rows, cols),
            WeightInit::Gaussian { std, seed } => gaussian(rows, cols, std, seed ^ salt),
            WeightInit::Xavier { seed } => xavier_uniform(rows, cols, seed ^ salt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_init_is_zero() {
        let m = WeightInit::Zeros.build(3, 4, 7);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn salted_init_decorrelates_layers() {
        let init = WeightInit::Xavier { seed: 1 };
        assert_ne!(init.build(4, 4, 1), init.build(4, 4, 2));
        assert_eq!(init.build(4, 4, 1), init.build(4, 4, 1));
    }
}
