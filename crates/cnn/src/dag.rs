//! Intra-network DAG-parallel execution: mode selection, the explicit
//! [`DagExecutor`] harness, and the critical-path analyzer.
//!
//! Data-parallel chunking ([`crate::ParallelEngine`]) cannot speed up a
//! single request — batch-1 latency is bounded by one forward pass.
//! But a branchy [`Network`] (Googlenet's inception
//! modules carry four independent branches per module) encodes
//! parallelism *inside* that pass. This module turns it into wall-clock:
//! the network executor can run independent DAG nodes concurrently on a
//! ready-queue scheduler (atomic indegree counters, a shared injector
//! queue, and a chained fast path for the single-successor case), with
//! every node writing its own arena slot and drawing scratch from its
//! own layer-local workspace pool, so concurrent branches share no
//! mutable state.
//!
//! # Bitwise parity
//!
//! DAG-parallel output is **bitwise identical** to the sequential
//! schedule: each node's kernel runs exactly once, on exactly the same
//! inputs, into exactly the same arena slot — only *when* it runs
//! changes. The contract is proptested across kernel × fusion arms
//! (including pruned/CSR layers) in `crates/cnn/tests/dag_parity.rs`,
//! the same shape of guarantee PR 2/5/6 established for the
//! data-parallel engine, the SIMD kernels, and the fusion pass.
//!
//! # Selection
//!
//! Mirrors `CAP_TENSOR_KERNEL` / `CAP_TENSOR_FUSION`: the `CAP_CNN_DAG`
//! environment variable is read once per process — `on`, `off`, or
//! `auto` (the default). `Auto` engages the parallel scheduler only
//! when it can pay: the plan has at least two steps ready at some depth
//! (`width > 1`), the host has more than one core, and the pass is not
//! already running inside a [`crate::ParallelEngine`] worker (stacking
//! node-parallelism on top of data-parallelism would oversubscribe the
//! machine). `On` forces the scheduler unconditionally; `Off` is the
//! sequential escape hatch and the baseline arm of the `dagpar`
//! ablation. Unknown values behave as `auto`, never an error.

use crate::network::{ForwardArena, ForwardRecord, Network, INPUT};
use cap_obs::{NoopTracer, Tracer};
use cap_tensor::{ShapeError, Tensor4, TensorResult};
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Whether the network executor runs independent DAG branches in
/// parallel within a single forward pass.
///
/// ```
/// use cap_cnn::DagMode;
///
/// assert_eq!(DagMode::Auto.name(), "auto");
/// assert!(DagMode::On.enabled());
/// assert!(!DagMode::Off.enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagMode {
    /// Decide per pass: parallelize when the plan has branch
    /// parallelism (`width > 1`), the host has more than one core, and
    /// the pass is not already inside a data-parallel engine worker.
    Auto,
    /// Always route through the DAG scheduler, even for purely
    /// sequential chains (they degenerate to one worker draining the
    /// queue) and inside engine workers.
    On,
    /// Always run the sequential schedule — the parity escape hatch and
    /// the baseline arm of the `dagpar` ablation experiment.
    Off,
}

impl DagMode {
    /// Stable lower-case name as accepted by `CAP_CNN_DAG`.
    pub fn name(self) -> &'static str {
        match self {
            DagMode::Auto => "auto",
            DagMode::On => "on",
            DagMode::Off => "off",
        }
    }

    /// Whether this mode permits the DAG-parallel scheduler at all.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, DagMode::Off)
    }

    /// Numeric code used by the [`force`] override (0 is "no override").
    fn code(self) -> u8 {
        match self {
            DagMode::Auto => 1,
            DagMode::On => 2,
            DagMode::Off => 3,
        }
    }
}

/// Process-wide forced mode: 0 = none, else `DagMode::code()`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Cached resolution of `CAP_CNN_DAG`.
static SELECTED: OnceLock<DagMode> = OnceLock::new();

/// Force every subsequent forward pass into `mode` (or back to the
/// environment-driven selection with `None`).
///
/// A **test and ablation hook**, process-global like
/// [`crate::fusion::force`] and `cap_tensor::kernels::force`: the
/// `dagpar` experiment and the parity suite use it to run both arms in
/// one process. Outputs are identical either way — that is the DAG
/// parity guarantee — but concurrent tests asserting on a *specific*
/// mode must serialize around it.
pub fn force(mode: Option<DagMode>) {
    FORCED.store(mode.map_or(0, |m| m.code()), Ordering::Relaxed);
}

/// Parse a `CAP_CNN_DAG` value. Unknown strings behave as `auto`: a
/// typo must not change behavior (auto already parallelizes wherever
/// it pays).
fn parse_env(value: &str) -> DagMode {
    match value.trim().to_ascii_lowercase().as_str() {
        "on" => DagMode::On,
        "off" => DagMode::Off,
        _ => DagMode::Auto, // "", "auto", or anything unrecognized
    }
}

/// Resolve the startup selection from `CAP_CNN_DAG`.
fn resolve() -> DagMode {
    std::env::var("CAP_CNN_DAG")
        .map(|v| parse_env(&v))
        .unwrap_or(DagMode::Auto)
}

/// The DAG execution mode governing this process's forward passes.
///
/// Resolved once from `CAP_CNN_DAG` (default `auto`); after that a
/// single relaxed atomic load plus a cached read. The [`force`]
/// override, when set, wins without touching the cache.
#[inline]
pub fn selected() -> DagMode {
    match FORCED.load(Ordering::Relaxed) {
        1 => DagMode::Auto,
        2 => DagMode::On,
        3 => DagMode::Off,
        _ => *SELECTED.get_or_init(resolve),
    }
}

/// Cached `std::thread::available_parallelism()` — consulted on every
/// `Auto` forward pass, so one syscall for the process lifetime.
pub(crate) fn host_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// True while this thread is a [`crate::ParallelEngine`] worker
    /// executing its chunk loop. `DagMode::Auto` checks it to avoid
    /// stacking node-parallel threads on top of data-parallel ones.
    static IN_ENGINE_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// RAII flag marking the current thread as a data-parallel engine
/// worker for its lifetime; `DagMode::Auto` stays sequential on such
/// threads.
pub(crate) struct EngineWorkerGuard {
    was: bool,
}

impl EngineWorkerGuard {
    pub(crate) fn enter() -> Self {
        let was = IN_ENGINE_WORKER.with(|f| f.replace(true));
        Self { was }
    }
}

impl Drop for EngineWorkerGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_ENGINE_WORKER.with(|f| f.set(was));
    }
}

/// Whether the current thread is inside a data-parallel engine worker.
pub(crate) fn in_engine_worker() -> bool {
    IN_ENGINE_WORKER.with(|f| f.get())
}

/// An explicit intra-network DAG-parallel executor with a fixed worker
/// count.
///
/// [`Network::forward_into`] already routes through the DAG scheduler
/// automatically under `CAP_CNN_DAG=auto|on`, sizing workers to
/// `min(plan width, host cores)`. `DagExecutor` is the explicit
/// entry point for callers that want to pin the worker count — the
/// `dagpar` ablation sweeps it — or to run DAG-parallel regardless of
/// the process-wide mode.
///
/// Output is **bitwise identical** to [`Network::forward_into`] with
/// the scheduler off; the proptest suite in
/// `crates/cnn/tests/dag_parity.rs` pins this across generated branchy
/// DAGs and kernel × fusion arms.
///
/// ```
/// use cap_cnn::layer::{ConcatLayer, ReluLayer, PoolLayer, PoolMode};
/// use cap_cnn::network::{ForwardArena, Network, INPUT};
/// use cap_cnn::DagExecutor;
/// use cap_tensor::Tensor4;
///
/// // input → {relu, pool} → concat: two independent branches.
/// let mut net = Network::new("branchy", (2, 4, 4));
/// let a = net.add_layer(Box::new(ReluLayer::new("a")), &[INPUT]).unwrap();
/// let b = net
///     .add_layer(Box::new(PoolLayer::new("b", PoolMode::Max, 1, 0, 1)), &[INPUT])
///     .unwrap();
/// net.add_layer(Box::new(ConcatLayer::new("cat")), &[a, b]).unwrap();
///
/// let x = Tensor4::from_fn(1, 2, 4, 4, |_, c, h, w| (c + h + w) as f32 - 4.0);
/// let mut seq_arena = ForwardArena::new();
/// let seq = net.forward_into(&x, &mut seq_arena).unwrap().clone();
///
/// let exec = DagExecutor::new(2);
/// let mut arena = ForwardArena::new();
/// let par = exec.run(&net, &x, &mut arena).unwrap();
/// assert_eq!(par.as_slice(), seq.as_slice()); // bitwise-equal branches
/// ```
#[derive(Debug, Clone)]
pub struct DagExecutor {
    workers: usize,
}

impl DagExecutor {
    /// An executor with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// An executor sized to the host's available hardware parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(host_parallelism())
    }

    /// Configured worker count (an upper bound: a pass never spawns
    /// more workers than its plan has width).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run one DAG-parallel forward pass, unconditionally using the
    /// ready-queue scheduler (the process-wide [`DagMode`] is not
    /// consulted; fusion and kernel dispatch apply as usual).
    ///
    /// Returns a reference to the output tensor in `arena`, exactly
    /// like [`Network::forward_into`].
    pub fn run<'a>(
        &self,
        net: &Network,
        input: &Tensor4,
        arena: &'a mut ForwardArena,
    ) -> TensorResult<&'a Tensor4> {
        self.run_traced(net, input, arena, &NoopTracer)
    }

    /// [`DagExecutor::run`] with observability hooks: per-node
    /// [`cap_obs::SpanScope::Layer`] spans are reported from whichever
    /// worker thread executed the node (recording tracers stamp
    /// [`cap_obs::current_tid`], so traces show branches on separate
    /// thread tracks), plus the enclosing
    /// [`cap_obs::SpanScope::Forward`] span from the calling thread.
    pub fn run_traced<'a, T: Tracer>(
        &self,
        net: &Network,
        input: &Tensor4,
        arena: &'a mut ForwardArena,
        tracer: &T,
    ) -> TensorResult<&'a Tensor4> {
        net.forward_dag_traced(input, arena, tracer, self.workers)
    }
}

/// Critical-path analysis of one measured forward pass: the theoretical
/// batch-1 latency floor of a network on given per-node times.
///
/// Built from a [`ForwardRecord`] (per-node wall-clock durations in
/// execution order, always unfused — see [`Network::forward_timed`]) by
/// a memoized longest-path DFS over the network's DAG: a node's finish
/// time is its own duration plus the slowest of its producers'. The
/// longest finish time over all nodes is the **critical path** — no
/// node scheduler, however wide, can complete the pass faster, because
/// those nodes depend on each other serially. The gap between
/// `total_work` (the sequential latency) and `critical_path` is exactly
/// what the DAG-parallel executor can reclaim.
///
/// Constructing a report publishes the floor to the
/// `dag_critical_path_us` gauge in [`cap_obs::metrics()`], so profile
/// snapshots carry it alongside the achieved latency histograms.
///
/// ```
/// use cap_cnn::layer::{ConcatLayer, PoolLayer, PoolMode, ReluLayer};
/// use cap_cnn::network::{Network, INPUT};
/// use cap_cnn::CriticalPathReport;
/// use cap_tensor::Tensor4;
///
/// // Two parallel branches joined by a concat.
/// let mut net = Network::new("fork", (1, 4, 4));
/// let a = net.add_layer(Box::new(ReluLayer::new("a")), &[INPUT]).unwrap();
/// let b = net
///     .add_layer(Box::new(PoolLayer::new("b", PoolMode::Max, 1, 0, 1)), &[INPUT])
///     .unwrap();
/// net.add_layer(Box::new(ConcatLayer::new("cat")), &[a, b]).unwrap();
///
/// let rec = net.forward_timed(&Tensor4::zeros(1, 1, 4, 4)).unwrap();
/// let cp = CriticalPathReport::from_forward_record(&net, &rec).unwrap();
///
/// // The floor counts the slower branch plus the join — never all three
/// // nodes — so it is bounded by the sequential total on both sides.
/// assert!(cp.critical_path <= cp.total_work);
/// assert_eq!(cp.path.last().map(String::as_str), Some("cat"));
/// assert!(cp.max_speedup() >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// Network name the record was measured on.
    pub network: String,
    /// Sum of all per-node durations — the sequential batch-1 latency.
    pub total_work: Duration,
    /// Longest dependency chain through the DAG — the theoretical
    /// batch-1 latency floor for any node-parallel schedule.
    pub critical_path: Duration,
    /// Layer names on the critical path, in execution order.
    pub path: Vec<String>,
}

impl CriticalPathReport {
    /// Analyze one timed forward pass against the network's DAG.
    ///
    /// Errors when `rec` does not carry exactly one timing per network
    /// node (a [`ForwardRecord`] from a *different* network, or from a
    /// network mutated since).
    pub fn from_forward_record(net: &Network, rec: &ForwardRecord) -> TensorResult<Self> {
        let durs: Vec<Duration> = rec.timings.iter().map(|t| t.duration).collect();
        if durs.len() != net.len() {
            return Err(ShapeError::new(format!(
                "critical path: {} timings for a {}-node network",
                durs.len(),
                net.len()
            )));
        }
        // Memoized longest-path DFS (the `MaxDepthExec` shape): finish
        // time of a node is its duration plus the latest finish among
        // its producers; `best_in` remembers which producer realized
        // the max so the path can be read back.
        let n = net.len();
        let mut finish: Vec<Option<Duration>> = vec![None; n];
        let mut best_in: Vec<Option<usize>> = vec![None; n];
        fn dfs(
            net: &Network,
            durs: &[Duration],
            finish: &mut [Option<Duration>],
            best_in: &mut [Option<usize>],
            i: usize,
        ) -> Duration {
            if let Some(f) = finish[i] {
                return f;
            }
            let mut latest = Duration::ZERO;
            for inp in net.inputs_of(i) {
                if inp == INPUT {
                    continue;
                }
                let f = dfs(net, durs, finish, best_in, inp.0);
                if f > latest {
                    latest = f;
                    best_in[i] = Some(inp.0);
                }
            }
            let f = latest + durs[i];
            finish[i] = Some(f);
            f
        }
        let mut span = Duration::ZERO;
        let mut sink = None;
        for i in 0..n {
            let f = dfs(net, &durs, &mut finish, &mut best_in, i);
            if f > span || sink.is_none() {
                span = span.max(f);
                if finish[i] == Some(span) {
                    sink = Some(i);
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = sink;
        while let Some(i) = cur {
            path.push(rec.timings[i].name.clone());
            cur = best_in[i];
        }
        path.reverse();
        let total_work: Duration = durs.iter().sum();
        cap_obs::metrics()
            .dag_critical_path_us
            .set(span.as_micros() as u64);
        Ok(Self {
            network: net.name().to_string(),
            total_work,
            critical_path: span,
            path,
        })
    }

    /// The theoretical latency floor (alias for
    /// [`CriticalPathReport::critical_path`], the operative name in
    /// reports).
    pub fn latency_floor(&self) -> Duration {
        self.critical_path
    }

    /// Upper bound on intra-network parallel speedup:
    /// `total_work / critical_path` (1.0 for a pure chain).
    pub fn max_speedup(&self) -> f64 {
        let cp = self.critical_path.as_secs_f64();
        if cp <= 0.0 {
            1.0
        } else {
            (self.total_work.as_secs_f64() / cp).max(1.0)
        }
    }

    /// Achieved parallel efficiency of a measured latency against the
    /// floor: `critical_path / achieved`. 1.0 means the scheduler hit
    /// the floor; values can exceed 1.0 only through measurement noise
    /// (the floor itself is measured, not derived).
    pub fn efficiency(&self, achieved: Duration) -> f64 {
        let a = achieved.as_secs_f64();
        if a <= 0.0 {
            0.0
        } else {
            self.critical_path.as_secs_f64() / a
        }
    }

    /// Package the floor against a measured latency as a
    /// [`cap_obs::DagSummary`], ready to attach to a profile via
    /// [`cap_obs::ProfileReport::with_dag_summary`] — this is how the
    /// `profile`/`dagpar` experiments report floor vs. achieved.
    pub fn summary(&self, achieved: Duration, workers: u64) -> cap_obs::DagSummary {
        cap_obs::DagSummary {
            critical_path: self.critical_path,
            total_work: self.total_work,
            achieved,
            workers,
        }
    }

    /// Render the analysis as a short text block (the `dagpar`
    /// experiment embeds it).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "critical path ({}): {:.3} ms floor vs {:.3} ms sequential work \
             (max speedup {:.2}x, {} nodes on path)",
            self.network,
            self.critical_path.as_secs_f64() * 1e3,
            self.total_work.as_secs_f64() * 1e3,
            self.max_speedup(),
            self.path.len(),
        )
        .unwrap();
        writeln!(out, "path: {}", self.path.join(" -> ")).unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConcatLayer, ConvLayer, PoolLayer, PoolMode, ReluLayer};
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    #[test]
    fn parse_env_accepts_known_values_and_defaults_to_auto() {
        assert_eq!(parse_env("on"), DagMode::On);
        assert_eq!(parse_env(" OFF "), DagMode::Off);
        assert_eq!(parse_env("auto"), DagMode::Auto);
        assert_eq!(parse_env(""), DagMode::Auto);
        assert_eq!(parse_env("bogus"), DagMode::Auto);
    }

    #[test]
    fn mode_enablement() {
        assert!(DagMode::Auto.enabled());
        assert!(DagMode::On.enabled());
        assert!(!DagMode::Off.enabled());
    }

    #[test]
    fn engine_worker_guard_nests() {
        assert!(!in_engine_worker());
        {
            let _a = EngineWorkerGuard::enter();
            assert!(in_engine_worker());
            {
                let _b = EngineWorkerGuard::enter();
                assert!(in_engine_worker());
            }
            assert!(in_engine_worker());
        }
        assert!(!in_engine_worker());
    }

    /// input → convA → relu ─┐
    /// input → convB ────────┴ concat
    fn branchy() -> Network {
        let mut net = Network::new("branchy", (3, 6, 6));
        let p = Conv2dParams::new(3, 2, 3, 1, 1);
        let a = net
            .add_layer(
                Box::new(ConvLayer::new("a", p, xavier_uniform(2, 27, 1), vec![0.1; 2]).unwrap()),
                &[INPUT],
            )
            .unwrap();
        let ar = net.add_layer(Box::new(ReluLayer::new("ar")), &[a]).unwrap();
        let b = net
            .add_layer(
                Box::new(ConvLayer::new("b", p, xavier_uniform(2, 27, 2), vec![-0.1; 2]).unwrap()),
                &[INPUT],
            )
            .unwrap();
        net.add_layer(Box::new(ConcatLayer::new("cat")), &[ar, b])
            .unwrap();
        net
    }

    #[test]
    fn executor_matches_sequential_bitwise() {
        let net = branchy();
        let x = Tensor4::from_fn(2, 3, 6, 6, |n, c, h, w| ((n + c + h + w) % 5) as f32 - 2.0);
        force(Some(DagMode::Off));
        let mut seq_arena = ForwardArena::new();
        let seq = net.forward_into(&x, &mut seq_arena).unwrap().clone();
        force(None);
        for workers in [1, 2, 4] {
            let exec = DagExecutor::new(workers);
            let mut arena = ForwardArena::new();
            let out = exec.run(&net, &x, &mut arena).unwrap();
            let sb: Vec<u32> = seq.as_slice().iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, ob, "workers={workers}");
        }
    }

    #[test]
    fn executor_clamps_workers() {
        assert_eq!(DagExecutor::new(0).workers(), 1);
        assert!(DagExecutor::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn critical_path_on_chain_equals_total() {
        let mut net = Network::new("chain", (1, 4, 4));
        net.add_sequential(Box::new(ReluLayer::new("r1"))).unwrap();
        net.add_sequential(Box::new(PoolLayer::new("p1", PoolMode::Max, 2, 0, 2)))
            .unwrap();
        let rec = net.forward_timed(&Tensor4::zeros(1, 1, 4, 4)).unwrap();
        let cp = CriticalPathReport::from_forward_record(&net, &rec).unwrap();
        assert_eq!(cp.critical_path, cp.total_work);
        assert_eq!(cp.path, vec!["r1".to_string(), "p1".to_string()]);
        assert!((cp.max_speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_on_fork_excludes_lighter_branch() {
        let net = branchy();
        let rec = net.forward_timed(&Tensor4::zeros(1, 3, 6, 6)).unwrap();
        let cp = CriticalPathReport::from_forward_record(&net, &rec).unwrap();
        assert!(cp.critical_path <= cp.total_work);
        // The path ends at the join and includes exactly one branch.
        assert_eq!(cp.path.last().unwrap(), "cat");
        assert!(cp.path.len() < net.len());
        let txt = cp.to_text();
        assert!(txt.contains("critical path"), "{txt}");
        assert!(txt.contains("-> cat"), "{txt}");
    }

    #[test]
    fn critical_path_rejects_mismatched_record() {
        let net = branchy();
        let mut other = Network::new("other", (1, 4, 4));
        other.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
        let rec = other.forward_timed(&Tensor4::zeros(1, 1, 4, 4)).unwrap();
        assert!(CriticalPathReport::from_forward_record(&net, &rec).is_err());
    }

    #[test]
    fn efficiency_brackets() {
        let net = branchy();
        let rec = net.forward_timed(&Tensor4::zeros(1, 3, 6, 6)).unwrap();
        let cp = CriticalPathReport::from_forward_record(&net, &rec).unwrap();
        assert!((cp.efficiency(cp.critical_path) - 1.0).abs() < 1e-9);
        assert!(cp.efficiency(cp.critical_path * 2) < 0.51);
        assert_eq!(cp.efficiency(Duration::ZERO), 0.0);
    }
}
