//! The flight recorder under real concurrency: attach a
//! [`FlightRecorder`] to [`ParallelEngine::run_batched_traced`] and
//! hammer it from every worker at once. Dumped records must never be
//! torn (every field internally consistent), the ring must retain
//! exactly the last `capacity` spans, and worker spans must land on
//! distinct thread ids.

use cap_cnn::layer::{ConvLayer, InnerProductLayer, ReluLayer, SoftmaxLayer};
use cap_cnn::network::Network;
use cap_cnn::{FlightRecorder, ParallelEngine};
use cap_obs::{SpanScope, Tracer};
use cap_tensor::{init::xavier_uniform, Conv2dParams, Tensor4};
use std::collections::HashSet;

fn small_net() -> Network {
    let mut net = Network::new("flight-net", (3, 9, 9));
    net.add_sequential(Box::new(
        ConvLayer::new(
            "conv1",
            Conv2dParams::new(3, 6, 3, 1, 2),
            xavier_uniform(6, 27, 7),
            vec![0.0; 6],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu1")))
        .unwrap();
    net.add_sequential(Box::new(
        InnerProductLayer::new("fc", xavier_uniform(5, 6 * 5 * 5, 9), vec![0.0; 5]).unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))
        .unwrap();
    net
}

fn images(n: usize) -> Tensor4 {
    Tensor4::from_fn(n, 3, 9, 9, |ni, c, h, w| {
        (((ni * 37 + c * 11 + h * 3 + w) % 17) as f32 - 8.0) / 6.0
    })
}

/// All worker spans recorded concurrently come back whole: known layer
/// names, consistent scope/kind pairing, plausible timing fields — and
/// each of the engine's workers reported from its own thread id.
#[test]
fn parallel_spans_are_never_torn_and_tids_are_distinct() {
    let net = small_net();
    let engine = ParallelEngine::new(4);
    let recorder = FlightRecorder::new(4096);
    let imgs = images(32);

    for _ in 0..6 {
        engine
            .run_batched_traced(&net, &imgs, 4, &recorder)
            .unwrap();
    }

    let spans = recorder.dump();
    assert!(!spans.is_empty());
    let layer_names: HashSet<&str> = ["conv1", "relu1", "fc", "prob"].into();
    let mut worker_tids: HashSet<u64> = HashSet::new();
    let mut seen_layer = false;
    for s in &spans {
        match s.scope {
            SpanScope::Layer => {
                seen_layer = true;
                assert!(
                    layer_names.contains(s.name.as_str()),
                    "torn or corrupt layer name: {:?}",
                    s.name
                );
                // Layer spans carry the output shape stamped by the
                // network; batch dim matches the chunking.
                assert!(s.shape[0] >= 1 && s.shape[0] <= 4, "shape {:?}", s.shape);
            }
            SpanScope::Worker => {
                assert_eq!(s.name, "worker");
                assert!(s.index < 4, "worker index {}", s.index);
                worker_tids.insert(s.tid);
            }
            SpanScope::Forward => assert_eq!(s.name, "flight-net"),
            other => panic!("unexpected scope {other:?} from the engine"),
        }
        assert!(s.tid > 0, "tid must be assigned");
        // A worker span contains its layers: start offsets grow
        // monotonically from the recorder's epoch and elapsed is
        // bounded by the test's runtime (sanity, not timing-exact).
        assert!(s.elapsed.as_secs() < 60);
        assert!(s.start.as_secs() < 60);
    }
    assert!(seen_layer, "per-layer spans must flow through the engine");
    // 6 runs x 4 active workers; the scope shim spawns a fresh OS
    // thread per worker, so at least 4 distinct tids must appear
    // (spans from different runs may or may not reuse tids — fresh
    // threads each run means strictly more, but 4 is the floor only
    // when the ring still holds one full run).
    assert!(
        worker_tids.len() >= 4,
        "expected >= 4 distinct worker tids, got {:?}",
        worker_tids
    );
}

/// Overfilling the ring keeps exactly the last `capacity` records, in
/// ticket order, with the oldest tickets evicted first.
#[test]
fn ring_keeps_exactly_the_last_capacity_spans() {
    let net = small_net();
    let engine = ParallelEngine::new(3);
    let recorder = FlightRecorder::new(32);
    let imgs = images(24);

    // Each run emits well over 32 spans (24/4 chunks x (1 forward +
    // 4 layers) + workers), so the ring wraps repeatedly.
    for _ in 0..4 {
        engine
            .run_batched_traced(&net, &imgs, 4, &recorder)
            .unwrap();
    }

    let spans = recorder.dump();
    assert_eq!(
        spans.len(),
        32,
        "a saturated ring dumps exactly its capacity"
    );
    // Quiescent now: recording a single span evicts exactly the oldest.
    let marker = cap_obs::SpanInfo::new(SpanScope::GridEval, "marker-after-wrap");
    recorder.span_exit(&marker, std::time::Duration::from_micros(5));
    let spans2 = recorder.dump();
    assert_eq!(spans2.len(), 32);
    assert_eq!(spans2.last().unwrap().name, "marker-after-wrap");
    // The previous dump's tail (all but its evicted head) is preserved
    // verbatim as the new dump's front.
    assert_eq!(&spans2[..31], &spans[1..]);
}
