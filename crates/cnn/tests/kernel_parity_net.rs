//! Network-level kernel parity: a full forward pass — conv (packed
//! GEMM), ReLU, LRN, max-pool, fully-connected (GEMM + bias), softmax,
//! plus the sparse CSR path through a pruned conv — must be **bitwise
//! identical** whichever bit-identical microkernel path
//! (`cap_tensor::kernels`) the dispatcher runs on. This is the
//! end-to-end closure of the per-kernel guarantees in
//! `crates/tensor/tests/kernel_parity.rs`: if any layer's inner loop
//! re-ordered its accumulation under SIMD, the logits would drift and
//! this suite would catch it.
//!
//! On non-AVX2 hosts `available_paths()` is `[Scalar]` and the
//! comparison degenerates to scalar vs scalar — a pass, never a skip.

use cap_cnn::layer::{ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer};
use cap_cnn::network::{Network, INPUT};
use cap_cnn::run_batched;
use cap_tensor::init::xavier_uniform;
use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{Conv2dParams, Matrix, Tensor4};

/// conv → relu → pool → conv(pruned/sparse) → relu → fc → softmax:
/// every kernel family the dispatch layer serves, in one pass.
fn build_net(seed: u64, prune: bool) -> Network {
    let mut net = Network::new("kernel-parity", (3, 13, 13));
    let p1 = Conv2dParams::new(3, 8, 3, 1, 1);
    let c1 = net
        .add_layer(
            Box::new(ConvLayer::new("c1", p1, xavier_uniform(8, 27, seed), vec![0.05; 8]).unwrap()),
            &[INPUT],
        )
        .unwrap();
    let r1 = net
        .add_layer(Box::new(ReluLayer::new("r1")), &[c1])
        .unwrap();
    let pool = net
        .add_layer(
            Box::new(PoolLayer::new("p1", PoolMode::Max, 3, 0, 2)),
            &[r1],
        )
        .unwrap();
    // Second conv, optionally pruned hard enough to take the CSR path.
    let mut w2 = xavier_uniform(6, 8 * 9, seed + 1);
    if prune {
        let (rows, cols) = w2.shape();
        w2 = Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c) % 5 == 0 {
                w2.get(r, c)
            } else {
                0.0
            }
        });
    }
    let p2 = Conv2dParams::new(8, 6, 3, 1, 1);
    let c2 = net
        .add_layer(
            Box::new(ConvLayer::new("c2", p2, w2, vec![0.0; 6]).unwrap()),
            &[pool],
        )
        .unwrap();
    let r2 = net
        .add_layer(Box::new(ReluLayer::new("r2")), &[c2])
        .unwrap();
    let fc = net
        .add_layer(
            Box::new(
                InnerProductLayer::new("fc", xavier_uniform(10, 6 * 36, seed + 2), vec![0.01; 10])
                    .unwrap(),
            ),
            &[r2],
        )
        .unwrap();
    net.add_layer(Box::new(SoftmaxLayer::new("prob")), &[fc])
        .unwrap();
    net
}

fn images(n: usize, seed: usize) -> Tensor4 {
    Tensor4::from_fn(n, 3, 13, 13, |ni, c, h, w| {
        (((ni * 131 + c * 31 + h * 7 + w + seed) % 19) as f32 - 9.0) / 6.0
    })
}

fn forward_on(path: KernelPath, net: &Network, imgs: &Tensor4, batch: usize) -> Vec<Vec<f32>> {
    kernels::force(Some(path));
    let (out, _) = run_batched(net, imgs, batch).unwrap();
    kernels::force(None);
    out
}

fn assert_outputs_bitwise_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: image count");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "{what}: image {i} logits differ");
    }
}

#[test]
fn dense_network_forward_bitwise_identical_across_paths() {
    let net = build_net(7, false);
    for (n, batch) in [(1, 1), (5, 2), (8, 8)] {
        let imgs = images(n, 3);
        let reference = forward_on(KernelPath::Scalar, &net, &imgs, batch);
        for path in kernels::available_paths() {
            if !path.is_bit_identical_to_scalar() {
                continue; // avx2-fma is approximate by contract
            }
            let got = forward_on(path, &net, &imgs, batch);
            assert_outputs_bitwise_equal(
                &reference,
                &got,
                &format!("dense net n={n} batch={batch} on {}", path.name()),
            );
        }
    }
}

#[test]
fn pruned_network_forward_bitwise_identical_across_paths() {
    // 80% pruned conv2: c2 runs the CSR SpMM kernel, the rest the dense
    // packed-GEMM kernels — both families under one forward pass.
    let net = build_net(11, true);
    let imgs = images(6, 9);
    let reference = forward_on(KernelPath::Scalar, &net, &imgs, 2);
    for path in kernels::available_paths() {
        if !path.is_bit_identical_to_scalar() {
            continue;
        }
        let got = forward_on(path, &net, &imgs, 2);
        assert_outputs_bitwise_equal(&reference, &got, &format!("pruned net on {}", path.name()));
    }
}

#[test]
fn repeated_forwards_stable_after_path_switching() {
    // Switching the forced path back and forth must not leave stale
    // state behind (packed weights, arenas): scalar → simd → scalar
    // reproduces the first scalar run bit-for-bit.
    let net = build_net(13, false);
    let imgs = images(4, 1);
    let first = forward_on(KernelPath::Scalar, &net, &imgs, 2);
    for path in kernels::available_paths() {
        if !path.is_bit_identical_to_scalar() {
            continue;
        }
        let _ = forward_on(path, &net, &imgs, 2);
    }
    let again = forward_on(KernelPath::Scalar, &net, &imgs, 2);
    assert_outputs_bitwise_equal(&first, &again, "scalar after path switching");
}
