//! Whole-network int8 accuracy: running a full forward pass with
//! `CAP_TENSOR_PRECISION=int8` (forced via `precision::force`) must
//! produce logits close to the f32 pass and agree on almost every
//! top-1 prediction. This bounds the end-to-end accuracy delta of the
//! quantized path the same way `kernel_parity_net.rs` closes the
//! bitwise contract of the f32 kernels — int8 is *approximate* by
//! design (symmetric per-tensor weights + activations), so the bound
//! here is numeric, not bitwise.
//!
//! Also covered: `Network::calibrate` (max-abs and percentile
//! activation ranges) keeps the int8 pass inside the same bound, and
//! the sparse CSR int8 conv path tracks f32 on a pruned network.

use cap_cnn::layer::{ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer};
use cap_cnn::network::{Network, INPUT};
use cap_cnn::run_batched;
use cap_tensor::init::xavier_uniform;
use cap_tensor::{precision, CalibrationMethod, Conv2dParams, Matrix, Precision, Tensor4};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// `precision::force` is process-global; every test in this binary
/// serializes on one mutex so a parallel test never observes int8.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// conv → relu → pool → conv (optionally pruned onto the CSR path) →
/// relu → fc: every layer family the int8 path quantizes, ending on
/// raw logits so the comparison is not flattened by softmax.
fn build_net(seed: u64, prune: bool) -> Network {
    let mut net = Network::new("int8-net", (3, 13, 13));
    let p1 = Conv2dParams::new(3, 8, 3, 1, 1);
    let c1 = net
        .add_layer(
            Box::new(ConvLayer::new("c1", p1, xavier_uniform(8, 27, seed), vec![0.05; 8]).unwrap()),
            &[INPUT],
        )
        .unwrap();
    let r1 = net
        .add_layer(Box::new(ReluLayer::new("r1")), &[c1])
        .unwrap();
    let pool = net
        .add_layer(
            Box::new(PoolLayer::new("p1", PoolMode::Max, 3, 0, 2)),
            &[r1],
        )
        .unwrap();
    let mut w2 = xavier_uniform(6, 8 * 9, seed + 1);
    if prune {
        let (rows, cols) = w2.shape();
        w2 = Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c) % 5 == 0 {
                w2.get(r, c)
            } else {
                0.0
            }
        });
    }
    let p2 = Conv2dParams::new(8, 6, 3, 1, 1);
    let c2 = net
        .add_layer(
            Box::new(ConvLayer::new("c2", p2, w2, vec![0.0; 6]).unwrap()),
            &[pool],
        )
        .unwrap();
    let r2 = net
        .add_layer(Box::new(ReluLayer::new("r2")), &[c2])
        .unwrap();
    net.add_layer(
        Box::new(
            InnerProductLayer::new("fc", xavier_uniform(10, 6 * 36, seed + 2), vec![0.01; 10])
                .unwrap(),
        ),
        &[r2],
    )
    .unwrap();
    net
}

fn images(n: usize, seed: usize) -> Tensor4 {
    Tensor4::from_fn(n, 3, 13, 13, |ni, c, h, w| {
        (((ni * 131 + c * 31 + h * 7 + w + seed) % 19) as f32 - 9.0) / 6.0
    })
}

fn forward_under(
    p: Option<Precision>,
    net: &Network,
    imgs: &Tensor4,
    batch: usize,
) -> Vec<Vec<f32>> {
    precision::force(p);
    let (out, _) = run_batched(net, imgs, batch).unwrap();
    precision::force(None);
    out
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

/// (max |Δlogit| across all images, fraction of images whose top-1
/// prediction agrees).
fn compare(f32_out: &[Vec<f32>], i8_out: &[Vec<f32>]) -> (f32, f64) {
    assert_eq!(f32_out.len(), i8_out.len());
    let mut max_diff = 0.0f32;
    let mut agree = 0usize;
    for (a, b) in f32_out.iter().zip(i8_out.iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            max_diff = max_diff.max((x - y).abs());
        }
        if argmax(a) == argmax(b) {
            agree += 1;
        }
    }
    (max_diff, agree as f64 / f32_out.len() as f64)
}

/// Scale of the f32 logits, so the Δ bound is relative, not absolute.
fn logit_scale(out: &[Vec<f32>]) -> f32 {
    out.iter()
        .flat_map(|v| v.iter())
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-6)
}

#[test]
fn int8_logits_track_f32_within_bound() {
    let _guard = force_lock();
    let net = build_net(7, false);
    let imgs = images(12, 3);
    let f = forward_under(None, &net, &imgs, 4);
    let q = forward_under(Some(Precision::Int8), &net, &imgs, 4);
    let (max_diff, agreement) = compare(&f, &q);
    let bound = 0.10 * logit_scale(&f);
    assert!(
        max_diff <= bound,
        "int8 logits drifted {max_diff} (> {bound})"
    );
    assert!(
        agreement >= 0.9,
        "top-1 agreement {agreement} below 0.9 (Δmax {max_diff})"
    );
}

#[test]
fn pruned_int8_sparse_path_tracks_f32() {
    // 80% pruned conv2 rides the quantized CSR SpMM path; the rest the
    // dense int8 GEMM path — both int8 families in one forward pass.
    let _guard = force_lock();
    let net = build_net(11, true);
    let imgs = images(10, 9);
    let f = forward_under(None, &net, &imgs, 2);
    let q = forward_under(Some(Precision::Int8), &net, &imgs, 2);
    let (max_diff, agreement) = compare(&f, &q);
    let bound = 0.10 * logit_scale(&f);
    assert!(
        max_diff <= bound,
        "pruned int8 logits drifted {max_diff} (> {bound})"
    );
    assert!(agreement >= 0.9, "top-1 agreement {agreement} below 0.9");
}

#[test]
fn calibration_keeps_int8_inside_bound() {
    let _guard = force_lock();
    let net = build_net(13, false);
    let cal = images(16, 21);
    let imgs = images(12, 5);

    // Calibrate runs a plain f32 forward internally: its output must
    // be bitwise identical to the uncalibrated f32 pass.
    precision::force(None);
    let cal_out = net.calibrate(&cal, CalibrationMethod::MaxAbs).unwrap();
    let (plain, _) = run_batched(&net, &cal, cal.shape().0).unwrap();
    for (i, row) in plain.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                cal_out.get(i, c, 0, 0).to_bits(),
                "calibrate() changed the f32 forward at image {i} class {c}"
            );
        }
    }

    let f = forward_under(None, &net, &imgs, 4);
    for method in [
        CalibrationMethod::MaxAbs,
        CalibrationMethod::Percentile(99.9),
    ] {
        net.calibrate(&cal, method).unwrap();
        let q = forward_under(Some(Precision::Int8), &net, &imgs, 4);
        let (max_diff, agreement) = compare(&f, &q);
        let bound = 0.12 * logit_scale(&f);
        assert!(
            max_diff <= bound,
            "{method:?}: calibrated int8 drifted {max_diff} (> {bound})"
        );
        assert!(
            agreement >= 0.9,
            "{method:?}: top-1 agreement {agreement} below 0.9"
        );
    }
}

#[test]
fn int8_batch_splits_agree_with_full_batch() {
    // Batched execution under int8 must not depend on the split: the
    // activation scale comes from per-call max-abs (or the calibrated
    // range), computed per forward — so per-image inference and a full
    // batch see the same weights but possibly different activation
    // ranges. Both must stay inside the f32 bound.
    let _guard = force_lock();
    let net = build_net(17, false);
    let imgs = images(8, 7);
    let f = forward_under(None, &net, &imgs, 8);
    for batch in [1usize, 3, 8] {
        let q = forward_under(Some(Precision::Int8), &net, &imgs, batch);
        let (max_diff, agreement) = compare(&f, &q);
        let bound = 0.12 * logit_scale(&f);
        assert!(
            max_diff <= bound,
            "batch {batch}: int8 drifted {max_diff} (> {bound})"
        );
        assert!(agreement >= 0.85, "batch {batch}: agreement {agreement}");
    }
}
