//! Network-level fusion parity: a full forward pass must be **bitwise
//! identical** whether the executor's graph-level `conv → relu` /
//! `fc → relu` fusion pass is on or off (`CAP_TENSOR_FUSION`), on every
//! bit-identical microkernel path — the end-to-end closure of the
//! per-kernel fused-epilogue guarantees in
//! `crates/tensor/tests/fused_parity.rs`.
//!
//! Both `cap_cnn::fusion::force` and `cap_tensor::kernels::force` are
//! process-global, so every test serializes on one mutex (this also
//! makes the `fused_layers` gauge assertions race-free within this
//! binary; other test binaries are separate processes).

use cap_cnn::fusion::{self, FusionMode};
use cap_cnn::layer::{ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer};
use cap_cnn::network::{ForwardArena, Network, INPUT};
use cap_cnn::{run_batched, NoopTracer};
use cap_tensor::init::xavier_uniform;
use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{Conv2dParams, Matrix, Tensor4};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Global serialization for tests that touch `fusion::force`,
/// `kernels::force`, or the global metrics registry.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Zero every weight except each `keep_every`-th, so the layer crosses
/// its sparse threshold and runs the CSR kernels.
fn prune(w: &Matrix, keep_every: usize) -> Matrix {
    let (rows, cols) = w.shape();
    Matrix::from_fn(rows, cols, |r, c| {
        if (r * cols + c) % keep_every == 0 {
            w.get(r, c)
        } else {
            0.0
        }
    })
}

/// conv → relu → pool → conv(optionally pruned) → relu →
/// fc(optionally pruned) → relu → fc → softmax: both fusible layer
/// kinds, dense and sparse, plus a trailing unfusible fc.
///
/// 3 fusible producer→relu pairs in total.
const FUSIBLE_PAIRS: u64 = 3;

fn build_net(seed: u64, sparse: bool) -> Network {
    let mut net = Network::new("fusion-parity", (3, 13, 13));
    let p1 = Conv2dParams::new(3, 8, 3, 1, 1);
    let c1 = net
        .add_layer(
            Box::new(ConvLayer::new("c1", p1, xavier_uniform(8, 27, seed), vec![0.05; 8]).unwrap()),
            &[INPUT],
        )
        .unwrap();
    let r1 = net
        .add_layer(Box::new(ReluLayer::new("r1")), &[c1])
        .unwrap();
    let pool = net
        .add_layer(
            Box::new(PoolLayer::new("p1", PoolMode::Max, 3, 0, 2)),
            &[r1],
        )
        .unwrap();
    let mut w2 = xavier_uniform(6, 8 * 9, seed + 1);
    if sparse {
        w2 = prune(&w2, 5);
    }
    let p2 = Conv2dParams::new(8, 6, 3, 1, 1);
    let c2 = net
        .add_layer(
            Box::new(ConvLayer::new("c2", p2, w2, vec![-0.02; 6]).unwrap()),
            &[pool],
        )
        .unwrap();
    let r2 = net
        .add_layer(Box::new(ReluLayer::new("r2")), &[c2])
        .unwrap();
    let mut w3 = xavier_uniform(16, 6 * 36, seed + 2);
    if sparse {
        w3 = prune(&w3, 4);
    }
    let fc1 = net
        .add_layer(
            Box::new(InnerProductLayer::new("fc1", w3, vec![0.01; 16]).unwrap()),
            &[r2],
        )
        .unwrap();
    let r3 = net
        .add_layer(Box::new(ReluLayer::new("r3")), &[fc1])
        .unwrap();
    let fc2 = net
        .add_layer(
            Box::new(
                InnerProductLayer::new("fc2", xavier_uniform(10, 16, seed + 3), vec![-0.01; 10])
                    .unwrap(),
            ),
            &[r3],
        )
        .unwrap();
    net.add_layer(Box::new(SoftmaxLayer::new("prob")), &[fc2])
        .unwrap();
    net
}

fn images(n: usize, seed: usize) -> Tensor4 {
    Tensor4::from_fn(n, 3, 13, 13, |ni, c, h, w| {
        (((ni * 131 + c * 31 + h * 7 + w + seed) % 19) as f32 - 9.0) / 6.0
    })
}

fn forward_on(
    mode: FusionMode,
    path: KernelPath,
    net: &Network,
    imgs: &Tensor4,
    batch: usize,
) -> Vec<Vec<f32>> {
    fusion::force(Some(mode));
    kernels::force(Some(path));
    let (out, _) = run_batched(net, imgs, batch).unwrap();
    kernels::force(None);
    fusion::force(None);
    out
}

fn assert_outputs_bitwise_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: image count");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "{what}: image {i} logits differ");
    }
}

fn identical_paths() -> Vec<KernelPath> {
    kernels::available_paths()
        .into_iter()
        .filter(|p| p.is_bit_identical_to_scalar())
        .collect()
}

#[test]
fn dense_network_fused_bitwise_identical_to_unfused() {
    let _g = force_lock();
    let net = build_net(7, false);
    for (n, batch) in [(1, 1), (5, 2), (8, 8)] {
        let imgs = images(n, 3);
        // The gold reference: unfused scalar.
        let reference = forward_on(FusionMode::Off, KernelPath::Scalar, &net, &imgs, batch);
        for path in identical_paths() {
            for mode in [FusionMode::On, FusionMode::Auto] {
                let got = forward_on(mode, path, &net, &imgs, batch);
                assert_outputs_bitwise_equal(
                    &reference,
                    &got,
                    &format!(
                        "dense net n={n} batch={batch} fusion={} on {}",
                        mode.name(),
                        path.name()
                    ),
                );
            }
        }
    }
}

#[test]
fn pruned_network_fused_bitwise_identical_to_unfused() {
    let _g = force_lock();
    // Pruned conv2 runs fused CSR SpMM; pruned fc1 at batch 1 takes the
    // fused spmv matvec route, at batch > 1 the SpMM + transpose route.
    let net = build_net(11, true);
    for (n, batch) in [(1, 1), (6, 2)] {
        let imgs = images(n, 9);
        let reference = forward_on(FusionMode::Off, KernelPath::Scalar, &net, &imgs, batch);
        for path in identical_paths() {
            let got = forward_on(FusionMode::On, path, &net, &imgs, batch);
            assert_outputs_bitwise_equal(
                &reference,
                &got,
                &format!("pruned net n={n} batch={batch} on {}", path.name()),
            );
        }
    }
}

#[test]
fn mode_switching_leaves_no_stale_state() {
    let _g = force_lock();
    // The plan cache keys on the fusion mode: flipping off → on → off
    // must reproduce the first unfused run bit-for-bit.
    let net = build_net(13, false);
    let imgs = images(4, 1);
    let first = forward_on(FusionMode::Off, KernelPath::Scalar, &net, &imgs, 2);
    let _ = forward_on(FusionMode::On, KernelPath::Scalar, &net, &imgs, 2);
    let again = forward_on(FusionMode::Off, KernelPath::Scalar, &net, &imgs, 2);
    assert_outputs_bitwise_equal(&first, &again, "unfused after mode switching");
}

#[test]
fn fusion_override_is_honored_and_gauge_tracks_it() {
    let _g = force_lock();
    let net = build_net(17, false);
    let imgs = images(2, 5);
    let mut arena = ForwardArena::new();

    // Forced off: every node is its own step, gauge reads 0.
    fusion::force(Some(FusionMode::Off));
    net.forward_into_traced(&imgs, &mut arena, &NoopTracer)
        .unwrap();
    assert_eq!(
        cap_obs::metrics().snapshot().fused_layers,
        0,
        "fusion=off must fuse nothing"
    );

    // Forced on: every fusible producer→relu pair collapses.
    fusion::force(Some(FusionMode::On));
    net.forward_into_traced(&imgs, &mut arena, &NoopTracer)
        .unwrap();
    assert_eq!(
        cap_obs::metrics().snapshot().fused_layers,
        FUSIBLE_PAIRS,
        "fusion=on must fuse all fusible pairs"
    );
    fusion::force(None);

    // Un-forced, the selection must honor CAP_TENSOR_FUSION (this is
    // what the CI fusion-matrix leg asserts).
    match std::env::var("CAP_TENSOR_FUSION").as_deref() {
        Ok("off") => {
            assert_eq!(fusion::selected(), FusionMode::Off);
            assert!(!fusion::selected().enabled());
        }
        Ok("on") => {
            assert_eq!(fusion::selected(), FusionMode::On);
            assert!(fusion::selected().enabled());
        }
        // auto / unset / unknown: fusion defaults ON (it is bitwise
        // invisible by the contract this file proves).
        _ => {
            assert_eq!(fusion::selected(), FusionMode::Auto);
            assert!(fusion::selected().enabled());
        }
    }
}
