//! Steady-state allocation audit: after a warm-up pass has grown every
//! buffer to its high-water mark, repeated batched inference through a
//! [`ForwardArena`] must perform **zero** heap allocations — the PR's
//! headline acceptance criterion.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this
//! file holds exactly one test so no sibling test can allocate
//! concurrently and pollute the count.

use cap_cnn::layer::{
    ConvLayer, DropoutLayer, InnerProductLayer, LrnLayer, PoolLayer, PoolMode, ReluLayer,
    SoftmaxLayer,
};
use cap_cnn::network::{ForwardArena, Network};
use cap_cnn::NoopTracer;
use cap_obs::TimingGuard;
use cap_tensor::{init::xavier_uniform, Conv2dParams, Matrix, Tensor4};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count allocations over `passes` runs of `body`, retrying the window
/// up to `attempts` times and returning the **minimum** count observed.
///
/// Why a minimum instead of a single window: the pipeline's own
/// steady-state allocations are deterministic — a buffer grown per
/// pass would show up in *every* window — but rayon's work-stealing
/// deques (crossbeam-epoch) reclaim memory at arbitrary points,
/// injecting rare allocations this test does not own. Requiring one
/// silent window out of several keeps the zero-alloc contract sharp
/// without flaking on scheduler noise.
fn min_allocs_over(attempts: usize, passes: usize, mut body: impl FnMut()) -> usize {
    let mut min = usize::MAX;
    for _ in 0..attempts {
        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        for _ in 0..passes {
            body();
        }
        let after = ALLOC_CALLS.load(Ordering::SeqCst);
        min = min.min(after - before);
        if min == 0 {
            break;
        }
    }
    min
}

/// A Caffenet-shaped (grouped conv, LRN, overlapping pool, FC head)
/// sequential model, scaled down so the test runs in milliseconds.
fn caffenet_shaped() -> Network {
    let mut net = Network::new("mini-caffenet", (3, 19, 19));
    net.add_sequential(Box::new(
        ConvLayer::new(
            "conv1",
            Conv2dParams::new(3, 8, 3, 0, 2),
            xavier_uniform(8, 27, 11),
            vec![0.0; 8],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu1")))
        .unwrap();
    net.add_sequential(Box::new(LrnLayer::alexnet("norm1")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool1", PoolMode::Max, 3, 0, 2)))
        .unwrap();
    net.add_sequential(Box::new(
        ConvLayer::new(
            "conv2",
            Conv2dParams::grouped(8, 12, 3, 1, 1, 2),
            xavier_uniform(12, 4 * 9, 12),
            vec![0.1; 12],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu2")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool2", PoolMode::Max, 2, 0, 2)))
        .unwrap();
    net.add_sequential(Box::new(DropoutLayer::new("drop2", 0.5)))
        .unwrap();
    net.add_sequential(Box::new(
        InnerProductLayer::new("fc3", xavier_uniform(10, 12 * 2 * 2, 13), vec![0.0; 10]).unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))
        .unwrap();
    net
}

#[test]
fn steady_state_inference_allocates_nothing() {
    let net = caffenet_shaped();
    let batch = 4;
    let images = Tensor4::from_fn(batch, 3, 19, 19, |n, c, h, w| {
        (((n * 53 + c * 17 + h * 5 + w) % 13) as f32 - 6.0) / 5.0
    });
    let mut arena = ForwardArena::new();

    // Warm-up: grows workspace pools, packed-weight caches, and arena
    // slots to their steady-state high-water marks.
    for _ in 0..3 {
        net.forward_into(&images, &mut arena).unwrap();
    }

    let mut checksum = 0.0f32;
    let allocs = min_allocs_over(5, 10, || {
        let out = net.forward_into(&images, &mut arena).unwrap();
        checksum += out.as_slice()[0];
    });
    assert!(checksum.is_finite());
    assert_eq!(
        allocs, 0,
        "steady-state forward passes must not allocate (got {allocs} allocations over 10 passes)",
    );

    // The observability layer must not erode the guarantee: the
    // explicitly no-op-traced path (what `forward_into` delegates to)
    // stays allocation-free, spans and all. The always-on metrics
    // counters are relaxed atomics — no heap traffic.
    let allocs = min_allocs_over(5, 10, || {
        let out = net
            .forward_into_traced(&images, &mut arena, &NoopTracer)
            .unwrap();
        checksum += out.as_slice()[0];
    });
    assert!(checksum.is_finite());
    assert_eq!(
        allocs, 0,
        "NoopTracer-instrumented forward passes must not allocate (got {allocs})",
    );

    // Even with timed metrics enabled (clock reads + histogram
    // records), recording is atomic-only: still zero allocations.
    {
        let _timing = TimingGuard::enable();
        let allocs = min_allocs_over(5, 5, || {
            net.forward_into_traced(&images, &mut arena, &NoopTracer)
                .unwrap();
        });
        assert_eq!(
            allocs, 0,
            "timed-metrics forward passes must not allocate (got {allocs})",
        );
    }

    // A FlightRecorder is designed to stay attached in release builds:
    // its record path is a ticket fetch_add plus fixed-slot atomic
    // stores — no heap. Allocate the ring (and warm the thread-id
    // assignment) up front, then verify recorded passes stay quiet.
    {
        let recorder = cap_cnn::FlightRecorder::new(64);
        net.forward_into_traced(&images, &mut arena, &recorder)
            .unwrap();
        let allocs = min_allocs_over(5, 5, || {
            net.forward_into_traced(&images, &mut arena, &recorder)
                .unwrap();
        });
        assert_eq!(
            allocs, 0,
            "flight-recorded forward passes must not allocate (got {allocs})",
        );
        assert!(!recorder.dump().is_empty());
    }

    // Changing batch size grows buffers once, then goes quiet again.
    let smaller = Tensor4::from_fn(2, 3, 19, 19, |n, c, h, w| {
        (((n * 7 + c * 3 + h + w) % 11) as f32 - 5.0) / 4.0
    });
    for _ in 0..2 {
        net.forward_into(&smaller, &mut arena).unwrap();
    }
    let allocs = min_allocs_over(5, 5, || {
        net.forward_into(&smaller, &mut arena).unwrap();
    });
    assert_eq!(allocs, 0, "shrunken batch must reuse grown buffers");

    // The batch-1 pruned-FC route: the fused CSR matvec
    // (`matvec_fused_into`) runs straight from the input slice into the
    // arena slot — no Xᵀ/Y staging matrices, no transposes. Warm-up
    // absorbs the lazy CSR build and the fusion plan; steady state
    // must stay silent.
    {
        let dense = xavier_uniform(10, 48, 21);
        let (rows, cols) = dense.shape();
        let pruned = Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c) % 4 == 0 {
                dense.get(r, c)
            } else {
                0.0
            }
        });
        let mut sparse_net = Network::new("sparse-fc", (48, 1, 1));
        sparse_net
            .add_sequential(Box::new(
                InnerProductLayer::new("fc_s", pruned, vec![0.02; 10]).unwrap(),
            ))
            .unwrap();
        sparse_net
            .add_sequential(Box::new(ReluLayer::new("relu_s")))
            .unwrap();
        sparse_net
            .add_sequential(Box::new(SoftmaxLayer::new("prob_s")))
            .unwrap();
        let one = Tensor4::from_fn(1, 48, 1, 1, |_, c, _, _| (c as f32 - 24.0) / 25.0);
        let mut sparse_arena = ForwardArena::new();
        for _ in 0..3 {
            sparse_net.forward_into(&one, &mut sparse_arena).unwrap();
        }
        let allocs = min_allocs_over(5, 5, || {
            sparse_net.forward_into(&one, &mut sparse_arena).unwrap();
        });
        assert_eq!(
            allocs, 0,
            "batch-1 sparse FC (fused spmv) must not allocate (got {allocs})",
        );
    }
}
