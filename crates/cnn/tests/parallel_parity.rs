//! Parallel/sequential parity: [`ParallelEngine::run_batched`] must be
//! bitwise-identical to [`run_batched`] — same per-image vectors, same
//! order — for every (images, batch, workers) combination, including
//! ragged trailing chunks, more workers than chunks, and repeated runs
//! through a recycled engine state pool.

use cap_cnn::layer::{
    ConcatLayer, ConvLayer, DropoutLayer, InnerProductLayer, LrnLayer, PoolLayer, PoolMode,
    ReluLayer, SoftmaxLayer,
};
use cap_cnn::network::{Network, INPUT};
use cap_cnn::{run_batched, ParallelEngine};
use cap_tensor::{init::xavier_uniform, Conv2dParams, Tensor4};
use proptest::prelude::*;

/// A branchy net (conv → relu → LRN → two conv branches → concat → pool
/// → dropout → fc → softmax) so parity covers every layer kind and the
/// DAG scheduler, not just a sequential stack.
fn build_net(seed: u64) -> Network {
    let mut net = Network::new("par-parity", (4, 9, 9));
    let p1 = Conv2dParams::grouped(4, 6, 3, 1, 1, 2);
    let c1 = net
        .add_layer(
            Box::new(
                ConvLayer::new("c1", p1, xavier_uniform(6, 2 * 9, seed), vec![0.05; 6]).unwrap(),
            ),
            &[INPUT],
        )
        .unwrap();
    let r1 = net
        .add_layer(Box::new(ReluLayer::new("r1")), &[c1])
        .unwrap();
    let n1 = net
        .add_layer(Box::new(LrnLayer::alexnet("n1")), &[r1])
        .unwrap();
    let pa = Conv2dParams::new(6, 3, 1, 0, 1);
    let ba = net
        .add_layer(
            Box::new(
                ConvLayer::new("ba", pa, xavier_uniform(3, 6, seed + 1), vec![0.0; 3]).unwrap(),
            ),
            &[n1],
        )
        .unwrap();
    let pb = Conv2dParams::new(6, 5, 3, 1, 1);
    let bb = net
        .add_layer(
            Box::new(
                ConvLayer::new("bb", pb, xavier_uniform(5, 54, seed + 2), vec![0.0; 5]).unwrap(),
            ),
            &[n1],
        )
        .unwrap();
    let cat = net
        .add_layer(Box::new(ConcatLayer::new("cat")), &[ba, bb])
        .unwrap();
    let pool = net
        .add_layer(
            Box::new(PoolLayer::new("p1", PoolMode::Max, 3, 0, 2)),
            &[cat],
        )
        .unwrap();
    let drop = net
        .add_layer(Box::new(DropoutLayer::new("d1", 0.5)), &[pool])
        .unwrap();
    let fc = net
        .add_layer(
            Box::new(
                InnerProductLayer::new("fc", xavier_uniform(10, 8 * 16, seed + 3), vec![0.01; 10])
                    .unwrap(),
            ),
            &[drop],
        )
        .unwrap();
    net.add_layer(Box::new(SoftmaxLayer::new("prob")), &[fc])
        .unwrap();
    net
}

fn images(n: usize, seed: usize) -> Tensor4 {
    Tensor4::from_fn(n, 4, 9, 9, |ni, c, h, w| {
        (((ni * 131 + c * 31 + h * 7 + w + seed) % 19) as f32 - 9.0) / 6.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Any (n, batch, workers) combination — ragged trailing chunk,
    /// workers > chunks, workers > images — reproduces the sequential
    /// output bitwise and in order.
    #[test]
    fn parallel_matches_sequential_bitwise(
        seed in 0u64..50,
        n in 1usize..14,
        batch in 1usize..6,
        workers in 1usize..9,
    ) {
        let net = build_net(seed);
        let imgs = images(n, seed as usize);
        let (seq, _) = run_batched(&net, &imgs, batch).unwrap();
        let engine = ParallelEngine::new(workers);
        let (par, report) = engine.run_batched(&net, &imgs, batch).unwrap();
        prop_assert_eq!(&par, &seq);
        // Bitwise, not approximately: compare the raw f32 bit patterns.
        for (a, b) in par.iter().zip(seq.iter()) {
            let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(ab, bb);
        }
        prop_assert_eq!(report.workers.len(), workers);
        prop_assert_eq!(
            report.workers.iter().map(|w| w.images).sum::<usize>(),
            n
        );
    }
}

#[test]
fn odd_combinations_workers_exceed_images() {
    // Deliberately awkward shards: 7 images / batch 3 → 3 chunks, split
    // across up to 16 workers; 13 of them must idle without perturbing
    // output order.
    let net = build_net(11);
    let imgs = images(7, 3);
    let (seq, _) = run_batched(&net, &imgs, 3).unwrap();
    for workers in [1, 2, 3, 5, 7, 8, 16] {
        let engine = ParallelEngine::new(workers);
        let (par, report) = engine.run_batched(&net, &imgs, 3).unwrap();
        assert_eq!(par, seq, "workers={workers}");
        let active = report.workers.iter().filter(|w| w.chunks > 0).count();
        assert!(active <= 3, "workers={workers} active={active}");
        assert_eq!(report.workers.len(), workers);
    }
}

#[test]
fn repeated_runs_through_one_engine_stay_identical() {
    // The state pool hands back grown arenas in arbitrary order; outputs
    // must not depend on which worker inherits which arena.
    let net = build_net(5);
    let engine = ParallelEngine::new(3);
    let big = images(9, 1);
    let small = images(4, 2);
    let (seq_big, _) = run_batched(&net, &big, 2).unwrap();
    let (seq_small, _) = run_batched(&net, &small, 3).unwrap();
    for _ in 0..3 {
        let (pb, _) = engine.run_batched(&net, &big, 2).unwrap();
        assert_eq!(pb, seq_big);
        let (ps, _) = engine.run_batched(&net, &small, 3).unwrap();
        assert_eq!(ps, seq_small);
    }
}

#[test]
fn batch_larger_than_workload_single_chunk() {
    let net = build_net(9);
    let imgs = images(3, 7);
    let (seq, _) = run_batched(&net, &imgs, 64).unwrap();
    let engine = ParallelEngine::new(4);
    let (par, report) = engine.run_batched(&net, &imgs, 64).unwrap();
    assert_eq!(par, seq);
    // One chunk → exactly one worker does all the images.
    assert_eq!(report.workers.iter().filter(|w| w.images == 3).count(), 1);
}
