//! DAG-parallel/sequential parity: a forward pass scheduled by the
//! intra-network DAG executor (`CAP_CNN_DAG`) must be **bitwise
//! identical** to the sequential schedule, on every bit-identical
//! kernel path, with fusion on or off, dense or pruned/CSR — the
//! whole-net closure of the scheduling-cannot-change-bits argument in
//! `cap_cnn::dag`, proptested over randomly generated branchy DAGs.
//!
//! `dag::force`, `fusion::force` and `kernels::force` are all
//! process-global, so every test serializes on one mutex (which also
//! makes the metrics-gauge assertions race-free within this binary).

use cap_cnn::dag::{self, DagMode};
use cap_cnn::fusion::{self, FusionMode};
use cap_cnn::layer::{
    ConcatLayer, ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer,
};
use cap_cnn::network::{ForwardArena, Network, INPUT};
use cap_cnn::{DagExecutor, NoopTracer, ParallelEngine};
use cap_tensor::init::xavier_uniform;
use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{Conv2dParams, Matrix, Tensor4};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Global serialization for tests that touch the process-global force
/// hooks or assert on the global metrics registry.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Zero every weight except each `keep_every`-th, so the layer crosses
/// its sparse threshold and runs the CSR kernels.
fn prune(w: &Matrix, keep_every: usize) -> Matrix {
    let (rows, cols) = w.shape();
    Matrix::from_fn(rows, cols, |r, c| {
        if (r * cols + c) % keep_every == 0 {
            w.get(r, c)
        } else {
            0.0
        }
    })
}

/// Generate a random branchy DAG: a conv→relu stem that fans out into
/// `branches` independent chains of `depth` random ops (conv+relu /
/// pool / relu — all spatial-preserving so any mix joins), a concat
/// fan-in, and an fc tail. `branches == 1` degenerates to a pure chain
/// (the zero-branch-parallelism case `DagMode::Auto` must decline).
fn build_random_net(seed: u64, branches: usize, depth: usize, sparse: bool) -> Network {
    let mut net = Network::new("dag-parity", (3, 8, 8));
    let p_stem = Conv2dParams::new(3, 4, 3, 1, 1);
    let stem = net
        .add_layer(
            Box::new(
                ConvLayer::new("stem", p_stem, xavier_uniform(4, 27, seed), vec![0.05; 4]).unwrap(),
            ),
            &[INPUT],
        )
        .unwrap();
    let stem_r = net
        .add_layer(Box::new(ReluLayer::new("stem_r")), &[stem])
        .unwrap();
    let mut heads = Vec::with_capacity(branches);
    for b in 0..branches {
        let mut cur = stem_r;
        for d in 0..depth {
            let tag = format!("b{b}d{d}");
            cur = match (seed as usize + b * 7 + d * 13) % 3 {
                0 => {
                    let p = Conv2dParams::new(4, 4, 3, 1, 1);
                    let mut w = xavier_uniform(4, 36, seed + (b * 10 + d) as u64 + 1);
                    if sparse {
                        w = prune(&w, 4);
                    }
                    let c = net
                        .add_layer(
                            Box::new(
                                ConvLayer::new(format!("conv_{tag}"), p, w, vec![-0.02; 4])
                                    .unwrap(),
                            ),
                            &[cur],
                        )
                        .unwrap();
                    net.add_layer(Box::new(ReluLayer::new(format!("relu_{tag}"))), &[c])
                        .unwrap()
                }
                1 => net
                    .add_layer(
                        Box::new(PoolLayer::new(
                            format!("pool_{tag}"),
                            PoolMode::Max,
                            3,
                            1,
                            1,
                        )),
                        &[cur],
                    )
                    .unwrap(),
                _ => net
                    .add_layer(Box::new(ReluLayer::new(format!("r_{tag}"))), &[cur])
                    .unwrap(),
            };
        }
        heads.push(cur);
    }
    let joined = if heads.len() == 1 {
        heads[0]
    } else {
        net.add_layer(Box::new(ConcatLayer::new("cat")), &heads)
            .unwrap()
    };
    let (c, h, w) = net.shape_of(joined).unwrap();
    let mut wfc = xavier_uniform(10, c * h * w, seed + 99);
    if sparse {
        wfc = prune(&wfc, 5);
    }
    net.add_layer(
        Box::new(InnerProductLayer::new("fc", wfc, vec![0.01; 10]).unwrap()),
        &[joined],
    )
    .unwrap();
    net
}

fn images(n: usize, seed: usize) -> Tensor4 {
    Tensor4::from_fn(n, 3, 8, 8, |ni, c, h, w| {
        (((ni * 131 + c * 31 + h * 7 + w + seed) % 19) as f32 - 9.0) / 6.0
    })
}

/// One forward pass under forced (dag, fusion, kernel) modes, returning
/// the output bits.
fn forward_bits(
    dag_mode: DagMode,
    fus: FusionMode,
    path: KernelPath,
    net: &Network,
    imgs: &Tensor4,
) -> Vec<u32> {
    dag::force(Some(dag_mode));
    fusion::force(Some(fus));
    kernels::force(Some(path));
    let mut arena = ForwardArena::new();
    let out = net
        .forward_into(imgs, &mut arena)
        .unwrap()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    kernels::force(None);
    fusion::force(None);
    dag::force(None);
    out
}

fn identical_paths() -> Vec<KernelPath> {
    kernels::available_paths()
        .into_iter()
        .filter(|p| p.is_bit_identical_to_scalar())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Random branchy DAGs — fan-out, fan-in, pure chains, dense and
    /// pruned — produce bitwise-identical output whether scheduled
    /// sequentially or DAG-parallel, across every bit-identical kernel
    /// path and both fusion arms.
    #[test]
    fn dag_parallel_matches_sequential_bitwise(
        seed in 0u64..40,
        branches in 1usize..5,
        depth in 1usize..4,
        sparse in proptest::bool::ANY,
        n in 1usize..4,
    ) {
        let _g = force_lock();
        let net = build_random_net(seed, branches, depth, sparse);
        let imgs = images(n, seed as usize);
        // Gold reference: sequential, unfused, scalar.
        let reference = forward_bits(DagMode::Off, FusionMode::Off, KernelPath::Scalar, &net, &imgs);
        for path in identical_paths() {
            for fus in [FusionMode::Off, FusionMode::On] {
                let seq = forward_bits(DagMode::Off, fus, path, &net, &imgs);
                prop_assert_eq!(
                    &seq, &reference,
                    "sequential arm drifted: fusion={} path={}", fus.name(), path.name()
                );
                let par = forward_bits(DagMode::On, fus, path, &net, &imgs);
                prop_assert_eq!(
                    &par, &reference,
                    "dag arm differs: fusion={} path={} branches={} depth={} sparse={}",
                    fus.name(), path.name(), branches, depth, sparse
                );
            }
        }
        // Explicit executor at several worker counts, same contract.
        for workers in [1, 2, 4] {
            let exec = DagExecutor::new(workers);
            let mut arena = ForwardArena::new();
            let out: Vec<u32> = exec
                .run(&net, &imgs, &mut arena)
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&out, &reference, "DagExecutor workers={}", workers);
        }
    }
}

/// Two DAG-parallel runs are bit-identical to each other even though
/// the scheduling order is nondeterministic — each node writes its own
/// slot from the same inputs, so interleaving cannot leak into values.
#[test]
fn dag_parallel_is_deterministic_across_runs() {
    let _g = force_lock();
    let net = build_random_net(23, 4, 3, false);
    let imgs = images(2, 5);
    let first = forward_bits(DagMode::On, FusionMode::On, KernelPath::Scalar, &net, &imgs);
    for run in 0..5 {
        let again = forward_bits(DagMode::On, FusionMode::On, KernelPath::Scalar, &net, &imgs);
        assert_eq!(first, again, "run {run} diverged");
    }
}

/// The degenerate single-node network survives every mode (and `Auto`
/// declines to parallelize a width-1 plan).
#[test]
fn single_node_net_all_modes() {
    let _g = force_lock();
    let mut net = Network::new("one", (2, 4, 4));
    net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
    let imgs = Tensor4::from_fn(3, 2, 4, 4, |n, c, h, w| (n + c + h + w) as f32 - 5.0);
    let reference = forward_bits(
        DagMode::Off,
        FusionMode::Off,
        KernelPath::Scalar,
        &net,
        &imgs,
    );
    for mode in [DagMode::Auto, DagMode::On] {
        let got = forward_bits(mode, FusionMode::Off, KernelPath::Scalar, &net, &imgs);
        assert_eq!(got, reference, "mode={}", mode.name());
    }
    let before = cap_obs::metrics().dag_parallel_passes.get();
    dag::force(Some(DagMode::Auto));
    let mut arena = ForwardArena::new();
    net.forward_into(&imgs, &mut arena).unwrap();
    dag::force(None);
    assert_eq!(
        cap_obs::metrics().dag_parallel_passes.get(),
        before,
        "auto must not schedule a width-1 plan"
    );
}

/// A kernel error inside a branch aborts the DAG pass cleanly: the
/// error is returned (not a hang, not a panic), matching the
/// sequential schedule's behavior.
#[test]
fn dag_pass_propagates_branch_errors() {
    let _g = force_lock();
    // Softmax validates 1x1 spatial at forward time only; putting it on
    // an 8x8 branch makes one node of a parallel pass fail.
    let mut net = Network::new("bad-branch", (3, 8, 8));
    let a = net
        .add_layer(Box::new(ReluLayer::new("a")), &[INPUT])
        .unwrap();
    let b = net
        .add_layer(Box::new(SoftmaxLayer::new("boom")), &[INPUT])
        .unwrap();
    net.add_layer(Box::new(ConcatLayer::new("cat")), &[a, b])
        .unwrap();
    let imgs = images(1, 0);
    dag::force(Some(DagMode::Off));
    let mut arena = ForwardArena::new();
    let seq_err = net.forward_into(&imgs, &mut arena).unwrap_err();
    dag::force(Some(DagMode::On));
    let mut arena = ForwardArena::new();
    let dag_err = net.forward_into(&imgs, &mut arena).unwrap_err();
    dag::force(None);
    assert_eq!(seq_err, dag_err, "same first error either way");
}

/// `DagMode::Auto` stays sequential inside data-parallel engine
/// workers: stacking node-parallel threads on top of the engine's
/// would oversubscribe the host. (`CAP_CNN_DAG=on` still overrides —
/// also checked.)
#[test]
fn auto_defers_to_data_parallel_engine() {
    let _g = force_lock();
    let net = build_random_net(31, 3, 2, false);
    let imgs = images(6, 7);
    let metrics = cap_obs::metrics();

    dag::force(Some(DagMode::Auto));
    let before = metrics.dag_parallel_passes.get();
    let engine = ParallelEngine::new(2);
    let (out_auto, _) = engine.run_batched(&net, &imgs, 2).unwrap();
    assert_eq!(
        metrics.dag_parallel_passes.get(),
        before,
        "auto must not nest DAG workers inside engine workers"
    );

    dag::force(Some(DagMode::On));
    let before = metrics.dag_parallel_passes.get();
    let (out_on, _) = engine.run_batched(&net, &imgs, 2).unwrap();
    assert!(
        metrics.dag_parallel_passes.get() > before,
        "on must override the engine-worker guard"
    );
    dag::force(None);
    assert_eq!(out_auto, out_on, "nesting decision cannot change bits");
}

/// The CI-matrix assert (mirrors `fusion_override_is_honored…`): the
/// un-forced selection must honor `CAP_CNN_DAG`, and the scheduler
/// metrics must track which schedule actually ran.
#[test]
fn dag_override_is_honored_and_metrics_track_it() {
    let _g = force_lock();
    let net = build_random_net(17, 4, 2, false);
    let imgs = images(2, 3);
    let metrics = cap_obs::metrics();
    let mut arena = ForwardArena::new();

    // Forced off: sequential schedule, dag_workers reads 0.
    dag::force(Some(DagMode::Off));
    net.forward_into_traced(&imgs, &mut arena, &NoopTracer)
        .unwrap();
    assert_eq!(metrics.dag_workers.get(), 0, "dag=off must run sequential");

    // Forced on: the scheduler runs with >= 1 worker and accounts every
    // step through exactly one of the two handoff paths.
    let (pushes0, chained0, passes0) = (
        metrics.dag_queue_pushes.get(),
        metrics.dag_chained_steps.get(),
        metrics.dag_parallel_passes.get(),
    );
    dag::force(Some(DagMode::On));
    net.forward_into_traced(&imgs, &mut arena, &NoopTracer)
        .unwrap();
    assert!(metrics.dag_workers.get() >= 1, "dag=on must schedule");
    assert_eq!(metrics.dag_parallel_passes.get(), passes0 + 1);
    // Every plan step reaches a worker exactly once, via the shared
    // queue or the chained fast path. Steps = nodes minus fused-away
    // ReLUs (the gauge holds this pass's fused count).
    let handoffs =
        (metrics.dag_queue_pushes.get() - pushes0) + (metrics.dag_chained_steps.get() - chained0);
    let fused = metrics.fused_layers.get();
    assert_eq!(
        handoffs,
        net.len() as u64 - fused,
        "every step is handed off exactly once"
    );
    dag::force(None);

    // Un-forced, the selection must honor CAP_CNN_DAG (what the CI
    // dag-matrix leg asserts).
    match std::env::var("CAP_CNN_DAG").as_deref() {
        Ok("off") => {
            assert_eq!(dag::selected(), DagMode::Off);
            assert!(!dag::selected().enabled());
        }
        Ok("on") => {
            assert_eq!(dag::selected(), DagMode::On);
            assert!(dag::selected().enabled());
        }
        // auto / unset / unknown: Auto (parallelize where it pays).
        _ => {
            assert_eq!(dag::selected(), DagMode::Auto);
            assert!(dag::selected().enabled());
        }
    }
}
