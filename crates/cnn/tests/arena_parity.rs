//! Arena-reuse parity: `Network::forward_into` through one long-lived
//! [`ForwardArena`] must agree with the allocating `Network::forward`
//! across batch-size changes, branchy DAGs, and sparse/dense weight
//! switches — reused buffers must never leak state between passes.

use cap_cnn::layer::{
    ConcatLayer, ConvLayer, DropoutLayer, InnerProductLayer, Layer, LrnLayer, PoolLayer, PoolMode,
    ReluLayer, SoftmaxLayer, SPARSE_THRESHOLD,
};
use cap_cnn::network::{ForwardArena, Network, INPUT};
use cap_tensor::{init::xavier_uniform, Conv2dParams, Matrix, Tensor4};
use proptest::prelude::*;

/// A small net exercising every layer type with an overridden
/// `forward_into`: grouped conv, relu, LRN, pool, branchy concat,
/// dropout, fc, softmax.
fn build_net(seed: u64, sparse_conv: bool) -> Network {
    let mut net = Network::new("parity", (4, 9, 9));
    let p1 = Conv2dParams::grouped(4, 6, 3, 1, 1, 2);
    let mut w1 = xavier_uniform(6, 2 * 9, seed);
    if sparse_conv {
        // Zero enough weights to cross the CSR threshold.
        for (i, v) in w1.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
    }
    let c1 = net
        .add_layer(
            Box::new(ConvLayer::new("c1", p1, w1, vec![0.05; 6]).unwrap()),
            &[INPUT],
        )
        .unwrap();
    let r1 = net
        .add_layer(Box::new(ReluLayer::new("r1")), &[c1])
        .unwrap();
    let n1 = net
        .add_layer(Box::new(LrnLayer::alexnet("n1")), &[r1])
        .unwrap();
    // Two branches off the normalized map, joined by concat.
    let pa = Conv2dParams::new(6, 3, 1, 0, 1);
    let ba = net
        .add_layer(
            Box::new(
                ConvLayer::new("ba", pa, xavier_uniform(3, 6, seed + 1), vec![0.0; 3]).unwrap(),
            ),
            &[n1],
        )
        .unwrap();
    let pb = Conv2dParams::new(6, 5, 3, 1, 1);
    let bb = net
        .add_layer(
            Box::new(
                ConvLayer::new("bb", pb, xavier_uniform(5, 54, seed + 2), vec![0.0; 5]).unwrap(),
            ),
            &[n1],
        )
        .unwrap();
    let cat = net
        .add_layer(Box::new(ConcatLayer::new("cat")), &[ba, bb])
        .unwrap();
    let pool = net
        .add_layer(
            Box::new(PoolLayer::new("p1", PoolMode::Max, 3, 0, 2)),
            &[cat],
        )
        .unwrap();
    let drop = net
        .add_layer(Box::new(DropoutLayer::new("d1", 0.5)), &[pool])
        .unwrap();
    // 8 channels * 4x4 spatial after pooling.
    let fc = net
        .add_layer(
            Box::new(
                InnerProductLayer::new("fc", xavier_uniform(10, 8 * 16, seed + 3), vec![0.01; 10])
                    .unwrap(),
            ),
            &[drop],
        )
        .unwrap();
    net.add_layer(Box::new(SoftmaxLayer::new("prob")), &[fc])
        .unwrap();
    net
}

fn images(n: usize, seed: usize) -> Tensor4 {
    Tensor4::from_fn(n, 4, 9, 9, |ni, c, h, w| {
        (((ni * 131 + c * 31 + h * 7 + w + seed) % 19) as f32 - 9.0) / 6.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// One arena serving passes of varying batch size (grow and shrink)
    /// must reproduce the allocating path exactly.
    #[test]
    fn arena_reuse_matches_fresh_forward(
        seed in 0u64..100,
        b1 in 1usize..4,
        b2 in 1usize..6,
        sparse in proptest::bool::ANY,
    ) {
        let net = build_net(seed, sparse);
        let mut arena = ForwardArena::new();
        for (round, &b) in [b1, b2, b1].iter().enumerate() {
            let x = images(b, seed as usize + round);
            let expect = net.forward(&x).unwrap();
            let got = net.forward_into(&x, &mut arena).unwrap();
            prop_assert_eq!(expect.shape(), got.shape());
            prop_assert!(expect.max_abs_diff(got).unwrap() == 0.0);
        }
    }
}

#[test]
fn sparse_layer_path_matches_dense_kernel() {
    // Pruned weights run through the pre-split CSR path must agree with
    // the same weights forced through the dense GEMM kernel.
    let sparse_net = build_net(7, true);
    let w = sparse_net.layer("c1").unwrap().weights().unwrap().clone();
    assert!(w.sparsity(0.0) > SPARSE_THRESHOLD);
    let x = images(3, 42);
    let p1 = Conv2dParams::grouped(4, 6, 3, 1, 1, 2);
    let bias = vec![0.05f32; 6];
    let ref_out = cap_tensor::conv2d_gemm(&x, &w, Some(&bias), &p1).unwrap();
    // Pin f32 for this comparison: the reference is the exact f32 dense
    // kernel, so an int8 precision leg would break the tight tolerance.
    cap_tensor::precision::force(Some(cap_tensor::Precision::F32));
    let via_layer = sparse_net.layer("c1").unwrap().forward(&[&x]).unwrap();
    cap_tensor::precision::force(None);
    assert!(via_layer.max_abs_diff(&ref_out).unwrap() < 1e-4);
    // End-to-end, the arena path and the allocating path agree bitwise
    // even with the sparse conv in the pipeline.
    let mut arena = ForwardArena::new();
    let got = sparse_net.forward_into(&x, &mut arena).unwrap();
    let fresh = sparse_net.forward(&x).unwrap();
    assert!(fresh.max_abs_diff(got).unwrap() == 0.0);
}

#[test]
fn arena_survives_weight_swap() {
    // Pruning mid-flight (set_layer_weights) must interoperate with an
    // existing arena: packed weights are rebuilt, buffers are reused.
    let mut net = build_net(3, false);
    let x = images(2, 5);
    let mut arena = ForwardArena::new();
    let before = net.forward_into(&x, &mut arena).unwrap().clone();

    let mut w = net.layer("c1").unwrap().weights().unwrap().clone();
    for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
        if i % 3 != 0 {
            *v = 0.0;
        }
    }
    net.set_layer_weights("c1", w).unwrap();
    let after_arena = net.forward_into(&x, &mut arena).unwrap().clone();
    let after_fresh = net.forward(&x).unwrap();
    assert!(after_arena.max_abs_diff(&after_fresh).unwrap() == 0.0);
    assert!(after_arena.max_abs_diff(&before).unwrap() > 0.0);
}

#[test]
fn empty_network_copies_input() {
    let net = Network::new("empty", (2, 3, 3));
    let x = Tensor4::from_fn(1, 2, 3, 3, |_, c, h, w| (c + h + w) as f32);
    let mut arena = ForwardArena::new();
    let y = net.forward_into(&x, &mut arena).unwrap();
    assert_eq!(y, &x);
}

#[test]
fn set_weights_keeps_matrix_weights_in_sync() {
    // InnerProduct packs its transpose; `weights()` must still expose the
    // raw matrix given to `set_weights`.
    let mut fc = InnerProductLayer::new(
        "fc",
        Matrix::from_fn(3, 4, |r, c| (r + c) as f32),
        vec![0.0; 3],
    )
    .unwrap();
    let new_w = Matrix::from_fn(3, 4, |r, c| (r * c) as f32);
    fc.set_weights(new_w.clone()).unwrap();
    assert_eq!(fc.weights().unwrap().as_slice(), new_w.as_slice());
}
