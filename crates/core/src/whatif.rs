//! What-if consumer queries over an evaluated configuration space:
//! "what is the cheapest way to hit accuracy X?", "what accuracy can I
//! afford with budget C′ and deadline T′?" — the questions a cloud
//! consumer actually asks, answered from the same evaluation the
//! Figures 9/10 machinery produces.

use crate::explorer::EvaluatedConfig;
use crate::metrics::AccuracyMetric;
use serde::{Deserialize, Serialize};

/// Answer to a what-if query: the selected candidate's coordinates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfAnswer {
    /// Index into the evaluated slice.
    pub index: usize,
    /// Accuracy achieved.
    pub accuracy: f64,
    /// Time required, seconds.
    pub time_s: f64,
    /// Cost required, USD.
    pub cost_usd: f64,
}

fn answer(evals: &[EvaluatedConfig], index: usize, metric: AccuracyMetric) -> WhatIfAnswer {
    let e = &evals[index];
    WhatIfAnswer {
        index,
        accuracy: e.accuracy(metric),
        time_s: e.time_s,
        cost_usd: e.cost_usd,
    }
}

/// Minimum cost to reach at least `accuracy_floor` (any time).
pub fn min_cost_for_accuracy(
    evals: &[EvaluatedConfig],
    metric: AccuracyMetric,
    accuracy_floor: f64,
) -> Option<WhatIfAnswer> {
    evals
        .iter()
        .enumerate()
        .filter(|(_, e)| e.accuracy(metric) + 1e-12 >= accuracy_floor)
        .min_by(|(_, a), (_, b)| a.cost_usd.partial_cmp(&b.cost_usd).unwrap())
        .map(|(i, _)| answer(evals, i, metric))
}

/// Minimum time to reach at least `accuracy_floor` (any cost).
pub fn min_time_for_accuracy(
    evals: &[EvaluatedConfig],
    metric: AccuracyMetric,
    accuracy_floor: f64,
) -> Option<WhatIfAnswer> {
    evals
        .iter()
        .enumerate()
        .filter(|(_, e)| e.accuracy(metric) + 1e-12 >= accuracy_floor)
        .min_by(|(_, a), (_, b)| a.time_s.partial_cmp(&b.time_s).unwrap())
        .map(|(i, _)| answer(evals, i, metric))
}

/// Maximum accuracy achievable within a deadline and budget (ties broken
/// by lower cost, then lower time) — the objective Algorithm 1 optimizes,
/// answered exactly from the evaluated space.
pub fn max_accuracy_within(
    evals: &[EvaluatedConfig],
    metric: AccuracyMetric,
    deadline_s: f64,
    budget_usd: f64,
) -> Option<WhatIfAnswer> {
    evals
        .iter()
        .enumerate()
        .filter(|(_, e)| e.time_s <= deadline_s && e.cost_usd <= budget_usd)
        .max_by(|(_, a), (_, b)| {
            a.accuracy(metric)
                .partial_cmp(&b.accuracy(metric))
                .unwrap()
                .then(b.cost_usd.partial_cmp(&a.cost_usd).unwrap())
                .then(b.time_s.partial_cmp(&a.time_s).unwrap())
        })
        .map(|(i, _)| answer(evals, i, metric))
}

/// The accuracy–cost trade curve: for each accuracy level present in the
/// space (descending), the minimum cost to reach it — i.e. the
/// cost-accuracy Pareto frontier expressed as a query result.
pub fn cost_curve(evals: &[EvaluatedConfig], metric: AccuracyMetric) -> Vec<WhatIfAnswer> {
    let mut levels: Vec<f64> = evals.iter().map(|e| e.accuracy(metric)).collect();
    levels.sort_by(|a, b| b.partial_cmp(a).unwrap());
    levels.dedup();
    let mut out = Vec::new();
    let mut best_cost = f64::INFINITY;
    for level in levels {
        if let Some(a) = min_cost_for_accuracy(evals, metric, level) {
            if a.cost_usd < best_cost {
                best_cost = a.cost_usd;
                out.push(a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::evaluate_all;
    use crate::version::caffenet_version_grid;
    use cap_cloud::{catalog, enumerate_configs, InstanceType};
    use cap_pruning::caffenet_profile;

    fn evals() -> Vec<EvaluatedConfig> {
        let versions = caffenet_version_grid(&caffenet_profile());
        let p2: Vec<InstanceType> = catalog()
            .into_iter()
            .filter(|i| i.family() == "p2")
            .collect();
        let configs = enumerate_configs(&p2, 2);
        evaluate_all(&versions, &configs, 200_000, 512)
    }

    #[test]
    fn min_cost_respects_floor_and_is_minimal() {
        let e = evals();
        let a = min_cost_for_accuracy(&e, AccuracyMetric::Top1, 0.50).unwrap();
        assert!(a.accuracy >= 0.50);
        for (i, cand) in e.iter().enumerate() {
            if cand.top1 >= 0.50 {
                assert!(a.cost_usd <= cand.cost_usd + 1e-12, "candidate {i} cheaper");
            }
        }
    }

    #[test]
    fn min_time_lower_for_lower_floor() {
        let e = evals();
        let strict = min_time_for_accuracy(&e, AccuracyMetric::Top5, 0.79).unwrap();
        let loose = min_time_for_accuracy(&e, AccuracyMetric::Top5, 0.40).unwrap();
        assert!(loose.time_s <= strict.time_s);
    }

    #[test]
    fn impossible_floor_is_none() {
        let e = evals();
        assert!(min_cost_for_accuracy(&e, AccuracyMetric::Top1, 0.99).is_none());
    }

    #[test]
    fn max_accuracy_within_respects_both_constraints() {
        let e = evals();
        let a = max_accuracy_within(&e, AccuracyMetric::Top1, 3600.0, 5.0).unwrap();
        assert!(a.time_s <= 3600.0);
        assert!(a.cost_usd <= 5.0);
        // No feasible candidate beats it.
        for cand in &e {
            if cand.time_s <= 3600.0 && cand.cost_usd <= 5.0 {
                assert!(cand.top1 <= a.accuracy + 1e-12);
            }
        }
    }

    #[test]
    fn zero_budget_is_none() {
        let e = evals();
        assert!(max_accuracy_within(&e, AccuracyMetric::Top1, 3600.0, 0.0).is_none());
    }

    #[test]
    fn cost_curve_is_frontier_shaped() {
        let e = evals();
        let curve = cost_curve(&e, AccuracyMetric::Top1);
        assert!(!curve.is_empty());
        // Accuracy strictly decreasing, cost strictly decreasing.
        for w in curve.windows(2) {
            assert!(w[1].accuracy < w[0].accuracy);
            assert!(w[1].cost_usd < w[0].cost_usd);
        }
        // Matches the Pareto filter's point set.
        let front = crate::explorer::frontier_indices(
            &e,
            AccuracyMetric::Top1,
            crate::explorer::Objective::Cost,
        );
        assert_eq!(curve.len(), front.len());
    }
}
