//! Pareto optimization filter (§3.4's final stage).
//!
//! Points live in the (accuracy, objective) plane where accuracy is
//! maximized and the objective (time or cost) minimized. A point is
//! Pareto-optimal iff no other point is at least as accurate *and* at
//! most as expensive, with at least one strict inequality.

use serde::{Deserialize, Serialize};

/// A point in the accuracy/objective plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Accuracy, higher is better.
    pub accuracy: f64,
    /// Time or cost, lower is better.
    pub objective: f64,
}

/// Indices of Pareto-optimal points, in descending-accuracy order.
///
/// Runs in `O(n log n)`: sort by accuracy descending (objective ascending
/// on ties), sweep keeping the running minimum objective. Duplicated
/// points are reported once (the first occurrence wins).
pub fn pareto_indices(points: &[ParetoPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[b]
            .accuracy
            .partial_cmp(&points[a].accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                points[a]
                    .objective
                    .partial_cmp(&points[b].objective)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.cmp(&b))
    });
    let mut front = Vec::new();
    let mut best_objective = f64::INFINITY;
    let mut last_kept: Option<ParetoPoint> = None;
    for &i in &order {
        let p = points[i];
        let duplicate = last_kept
            .map(|k| k.accuracy == p.accuracy && k.objective == p.objective)
            .unwrap_or(false);
        if p.objective < best_objective && !duplicate {
            front.push(i);
            best_objective = p.objective;
            last_kept = Some(p);
        }
    }
    front
}

/// The Pareto-optimal points themselves, descending accuracy.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    pareto_indices(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

/// An extracted Pareto frontier over the (accuracy ↑, objective ↓)
/// plane, retaining the indices of the frontier members in the original
/// candidate set.
///
/// ```
/// use cap_core::{ParetoFrontier, ParetoPoint};
///
/// let candidates = vec![
///     ParetoPoint { accuracy: 0.80, objective: 10.0 }, // optimal
///     ParetoPoint { accuracy: 0.78, objective: 12.0 }, // dominated
///     ParetoPoint { accuracy: 0.70, objective: 4.0 },  // optimal
///     ParetoPoint { accuracy: 0.60, objective: 2.0 },  // optimal
/// ];
/// let frontier = ParetoFrontier::of(&candidates);
/// assert_eq!(frontier.indices(), &[0, 2, 3]);
/// assert_eq!(frontier.best_accuracy().unwrap().accuracy, 0.80);
/// assert_eq!(frontier.cheapest().unwrap().objective, 2.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoFrontier {
    indices: Vec<usize>,
    points: Vec<ParetoPoint>,
}

impl ParetoFrontier {
    /// Extract the frontier of a candidate set.
    pub fn of(candidates: &[ParetoPoint]) -> Self {
        let indices = pareto_indices(candidates);
        let points = indices.iter().map(|&i| candidates[i]).collect();
        Self { indices, points }
    }

    /// Frontier points, descending accuracy.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Indices of the frontier members in the original candidate slice,
    /// aligned with [`ParetoFrontier::points`].
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the candidate set was empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The highest-accuracy frontier point (the paper's headline anchor).
    pub fn best_accuracy(&self) -> Option<ParetoPoint> {
        self.points.first().copied()
    }

    /// The lowest-objective frontier point (cheapest / fastest).
    pub fn cheapest(&self) -> Option<ParetoPoint> {
        self.points.last().copied()
    }
}

/// Naive `O(n²)` dominance check — correctness oracle for tests and the
/// baseline arm of the `pareto` ablation bench.
pub fn pareto_indices_naive(points: &[ParetoPoint]) -> Vec<usize> {
    let dominated = |i: usize| {
        points.iter().enumerate().any(|(j, q)| {
            j != i
                && q.accuracy >= points[i].accuracy
                && q.objective <= points[i].objective
                && (q.accuracy > points[i].accuracy || q.objective < points[i].objective)
        })
    };
    let mut keep: Vec<usize> = (0..points.len()).filter(|&i| !dominated(i)).collect();
    // Deduplicate identical points, keep first occurrence; order by accuracy desc.
    keep.sort_by(|&a, &b| {
        points[b]
            .accuracy
            .partial_cmp(&points[a].accuracy)
            .unwrap()
            .then(a.cmp(&b))
    });
    keep.dedup_by(|&mut a, &mut b| {
        points[a].accuracy == points[b].accuracy && points[a].objective == points[b].objective
    });
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pts(v: &[(f64, f64)]) -> Vec<ParetoPoint> {
        v.iter()
            .map(|&(accuracy, objective)| ParetoPoint {
                accuracy,
                objective,
            })
            .collect()
    }

    #[test]
    fn single_point_is_optimal() {
        let p = pts(&[(0.5, 10.0)]);
        assert_eq!(pareto_indices(&p), vec![0]);
    }

    #[test]
    fn dominated_point_removed() {
        // (0.8, 5) dominates (0.7, 6).
        let p = pts(&[(0.7, 6.0), (0.8, 5.0)]);
        assert_eq!(pareto_indices(&p), vec![1]);
    }

    #[test]
    fn incomparable_points_both_kept() {
        let p = pts(&[(0.9, 10.0), (0.5, 2.0)]);
        let f = pareto_indices(&p);
        assert_eq!(f, vec![0, 1]); // descending accuracy
    }

    #[test]
    fn equal_accuracy_keeps_cheapest_only() {
        let p = pts(&[(0.8, 5.0), (0.8, 4.0), (0.8, 6.0)]);
        assert_eq!(pareto_indices(&p), vec![1]);
    }

    #[test]
    fn equal_objective_keeps_most_accurate_only() {
        let p = pts(&[(0.6, 5.0), (0.9, 5.0)]);
        assert_eq!(pareto_indices(&p), vec![1]);
    }

    #[test]
    fn duplicates_reported_once() {
        let p = pts(&[(0.8, 5.0), (0.8, 5.0)]);
        assert_eq!(pareto_indices(&p).len(), 1);
    }

    #[test]
    fn staircase_front() {
        let p = pts(&[
            (0.9, 10.0),
            (0.8, 7.0),
            (0.7, 5.0),
            (0.85, 9.0),
            (0.75, 8.0), // dominated by (0.8, 7.0)
            (0.6, 5.5),  // dominated by (0.7, 5.0)
        ]);
        let f = pareto_front(&p);
        let accs: Vec<f64> = f.iter().map(|q| q.accuracy).collect();
        assert_eq!(accs, vec![0.9, 0.85, 0.8, 0.7]);
        // Objectives strictly decrease along descending accuracy.
        for w in f.windows(2) {
            assert!(w[1].objective < w[0].objective);
        }
    }

    #[test]
    fn empty_input() {
        assert!(pareto_indices(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_matches_naive(
            raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..100.0), 0..60)
        ) {
            let p = pts(&raw);
            let fast: std::collections::BTreeSet<usize> =
                pareto_indices(&p).into_iter().collect();
            let slow: std::collections::BTreeSet<usize> =
                pareto_indices_naive(&p).into_iter().collect();
            // Compare as point sets (duplicate points may pick different
            // representative indices).
            let fast_pts: std::collections::BTreeSet<(u64, u64)> = fast
                .iter()
                .map(|&i| (p[i].accuracy.to_bits(), p[i].objective.to_bits()))
                .collect();
            let slow_pts: std::collections::BTreeSet<(u64, u64)> = slow
                .iter()
                .map(|&i| (p[i].accuracy.to_bits(), p[i].objective.to_bits()))
                .collect();
            prop_assert_eq!(fast_pts, slow_pts);
        }

        #[test]
        fn prop_front_is_mutually_nondominated(
            raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..100.0), 1..40)
        ) {
            let p = pts(&raw);
            let f = pareto_front(&p);
            for a in &f {
                for b in &f {
                    let strictly_dominates = a.accuracy >= b.accuracy
                        && a.objective <= b.objective
                        && (a.accuracy > b.accuracy || a.objective < b.objective);
                    prop_assert!(!strictly_dominates);
                }
            }
        }

        #[test]
        fn prop_every_point_dominated_by_or_on_front(
            raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..100.0), 1..40)
        ) {
            let p = pts(&raw);
            let f = pareto_front(&p);
            for q in &p {
                let covered = f.iter().any(|fp| {
                    fp.accuracy >= q.accuracy && fp.objective <= q.objective
                });
                prop_assert!(covered);
            }
        }
    }
}
