//! Tri-objective Pareto filtering — an extension beyond the paper's two
//! separate (accuracy, time) and (accuracy, cost) planes: a candidate is
//! kept only if no other candidate is simultaneously at least as
//! accurate, as fast *and* as cheap. The paper observes its two
//! frontiers overlap (§4.4); the joint frontier makes that statement
//! precise and lets a consumer trade all three axes at once.

use serde::{Deserialize, Serialize};

/// A point in (accuracy ↑, time ↓, cost ↓) space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriPoint {
    /// Accuracy, higher is better.
    pub accuracy: f64,
    /// Execution time, lower is better.
    pub time: f64,
    /// Cost, lower is better.
    pub cost: f64,
}

impl TriPoint {
    /// True if `self` dominates `other`: no worse on every axis and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &TriPoint) -> bool {
        self.accuracy >= other.accuracy
            && self.time <= other.time
            && self.cost <= other.cost
            && (self.accuracy > other.accuracy || self.time < other.time || self.cost < other.cost)
    }
}

/// Indices of tri-objective Pareto-optimal points, in descending
/// accuracy order. Duplicate points are reported once.
///
/// Sort-accelerated: after sorting by accuracy descending, a point only
/// needs to be checked against the 2-D (time, cost) skyline of the
/// already-accepted prefix — `O(n·s)` with `s` the skyline size, versus
/// the naive `O(n²)` all-pairs check kept as [`tri_pareto_indices_naive`].
pub fn tri_pareto_indices(points: &[TriPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[b]
            .accuracy
            .partial_cmp(&points[a].accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                points[a]
                    .time
                    .partial_cmp(&points[b].time)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(
                points[a]
                    .cost
                    .partial_cmp(&points[b].cost)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.cmp(&b))
    });
    // Skylines per accuracy class: points with *strictly higher* accuracy
    // dominate on any (time, cost) no worse; equal-accuracy points also
    // compete among themselves.
    let mut front: Vec<usize> = Vec::new();
    let mut skyline: Vec<(f64, f64)> = Vec::new(); // non-dominated (time, cost) of accepted points
    let mut seen: Vec<TriPoint> = Vec::new();
    'outer: for &i in &order {
        let p = points[i];
        for &(t, c) in &skyline {
            if t <= p.time && c <= p.cost {
                // Some accepted point is no-worse on time and cost.
                // It dominates unless it is the identical point (exact
                // duplicates are dropped too — report once).
                let equal_exists = seen
                    .iter()
                    .any(|q| q.accuracy == p.accuracy && q.time == p.time && q.cost == p.cost);
                if equal_exists || seen.iter().any(|q| q.dominates(&p)) {
                    continue 'outer;
                }
            }
        }
        // Accept; update skyline.
        front.push(i);
        seen.push(p);
        skyline.retain(|&(t, c)| !(p.time <= t && p.cost <= c && (p.time < t || p.cost < c)));
        if !skyline.iter().any(|&(t, c)| t <= p.time && c <= p.cost) {
            skyline.push((p.time, p.cost));
        }
    }
    front
}

/// Naive all-pairs tri-objective filter — correctness oracle.
pub fn tri_pareto_indices_naive(points: &[TriPoint]) -> Vec<usize> {
    let mut keep: Vec<usize> = (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && q.dominates(&points[i]))
        })
        .collect();
    keep.sort_by(|&a, &b| {
        points[b]
            .accuracy
            .partial_cmp(&points[a].accuracy)
            .unwrap()
            .then(a.cmp(&b))
    });
    keep.dedup_by(|&mut a, &mut b| points[a] == points[b]);
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pts(v: &[(f64, f64, f64)]) -> Vec<TriPoint> {
        v.iter()
            .map(|&(accuracy, time, cost)| TriPoint {
                accuracy,
                time,
                cost,
            })
            .collect()
    }

    #[test]
    fn dominance_definition() {
        let a = TriPoint {
            accuracy: 0.8,
            time: 1.0,
            cost: 1.0,
        };
        let b = TriPoint {
            accuracy: 0.7,
            time: 2.0,
            cost: 2.0,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "a point never dominates itself");
    }

    #[test]
    fn incomparable_points_all_kept() {
        // Each point wins on one axis.
        let p = pts(&[(0.9, 5.0, 5.0), (0.5, 1.0, 5.0), (0.5, 5.0, 1.0)]);
        assert_eq!(tri_pareto_indices(&p).len(), 3);
    }

    #[test]
    fn dominated_in_three_axes_removed() {
        let p = pts(&[(0.9, 1.0, 1.0), (0.8, 2.0, 2.0), (0.7, 0.5, 3.0)]);
        let f = tri_pareto_indices(&p);
        assert_eq!(f, vec![0, 2]); // point 1 dominated by 0; point 2 is faster
    }

    #[test]
    fn two_objective_consistency() {
        // With all costs equal, tri-Pareto equals the 2-D time frontier.
        let p = pts(&[
            (0.9, 10.0, 1.0),
            (0.8, 7.0, 1.0),
            (0.85, 9.0, 1.0),
            (0.75, 8.0, 1.0),
        ]);
        let f = tri_pareto_indices(&p);
        let accs: Vec<f64> = f.iter().map(|&i| p[i].accuracy).collect();
        assert_eq!(accs, vec![0.9, 0.85, 0.8]);
    }

    #[test]
    fn duplicates_reported_once() {
        let p = pts(&[(0.8, 1.0, 1.0), (0.8, 1.0, 1.0), (0.8, 1.0, 1.0)]);
        assert_eq!(tri_pareto_indices(&p).len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(tri_pareto_indices(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_matches_naive(
            raw in proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..10.0, 0.0f64..10.0), 0..50)
        ) {
            // Quantize coordinates so duplicates actually occur.
            let p: Vec<TriPoint> = raw
                .iter()
                .map(|&(a, t, c)| TriPoint {
                    accuracy: (a * 4.0).round() / 4.0,
                    time: (t * 2.0).round() / 2.0,
                    cost: (c * 2.0).round() / 2.0,
                })
                .collect();
            let fast: std::collections::BTreeSet<(u64, u64, u64)> = tri_pareto_indices(&p)
                .iter()
                .map(|&i| (p[i].accuracy.to_bits(), p[i].time.to_bits(), p[i].cost.to_bits()))
                .collect();
            let slow: std::collections::BTreeSet<(u64, u64, u64)> = tri_pareto_indices_naive(&p)
                .iter()
                .map(|&i| (p[i].accuracy.to_bits(), p[i].time.to_bits(), p[i].cost.to_bits()))
                .collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_front_mutually_nondominated(
            raw in proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..10.0, 0.0f64..10.0), 1..40)
        ) {
            let p = pts(&raw);
            let f = tri_pareto_indices(&p);
            for &i in &f {
                for &j in &f {
                    if i != j {
                        prop_assert!(!p[i].dominates(&p[j]), "{i} dominates {j}");
                    }
                }
            }
        }

        #[test]
        fn prop_every_point_covered(
            raw in proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..10.0, 0.0f64..10.0), 1..40)
        ) {
            let p = pts(&raw);
            let f = tri_pareto_indices(&p);
            for q in &p {
                let covered = f.iter().any(|&i| {
                    let fp = p[i];
                    fp.accuracy >= q.accuracy && fp.time <= q.time && fp.cost <= q.cost
                });
                prop_assert!(covered);
            }
        }
    }
}
