//! Degree-of-pruning search — solving the problem §4.3.1 calls
//! non-trivial: "it is not trivial to determine how to select the best
//! layer and pruning ratio for achieving the highest accuracy with the
//! lowest execution time."
//!
//! Given a calibrated [`AppProfile`] and an accuracy floor, find the
//! prune spec minimizing batched inference time, by greedy coordinate
//! descent over per-layer ratios on the standard 10 % grid: repeatedly
//! apply the single-layer increment with the best
//! time-saved-per-accuracy-lost ratio that keeps the floor satisfied.

use cap_pruning::{AppProfile, PruneSpec};
use serde::{Deserialize, Serialize};

/// Result of a spec search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecSearchResult {
    /// The selected degree of pruning.
    pub spec: PruneSpec,
    /// Its batched time factor (relative to unpruned).
    pub time_factor: f64,
    /// Its top-1 / top-5 accuracy.
    pub top1: f64,
    /// Top-5 accuracy.
    pub top5: f64,
    /// Number of candidate evaluations performed.
    pub evaluations: u64,
}

/// Which accuracy the floor applies to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Floor {
    /// Constrain top-1 accuracy.
    Top1(f64),
    /// Constrain top-5 accuracy.
    Top5(f64),
}

impl Floor {
    fn satisfied(&self, profile: &AppProfile, spec: &PruneSpec) -> bool {
        let (t1, t5) = profile.accuracy(spec);
        match *self {
            Floor::Top1(f) => t1 + 1e-12 >= f,
            Floor::Top5(f) => t5 + 1e-12 >= f,
        }
    }
}

/// Ratio grid step used by the search (the paper's 10 % increments).
const STEP: f64 = 0.10;
/// Maximum per-layer ratio considered (the paper sweeps to 90 %).
const MAX_RATIO: f64 = 0.90;

/// Find a prune spec minimizing batched time subject to the accuracy
/// floor. Returns `None` if even the unpruned model violates the floor.
pub fn min_time_spec(profile: &AppProfile, floor: Floor) -> Option<SpecSearchResult> {
    let mut spec = PruneSpec::none();
    if !floor.satisfied(profile, &spec) {
        return None;
    }
    let layers: Vec<String> = profile
        .conv_layer_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut evaluations = 0u64;
    loop {
        let current_time = profile.batched_time_factor(&spec);
        let mut best: Option<(usize, f64)> = None; // (layer idx, score)
        for (li, layer) in layers.iter().enumerate() {
            let r = spec.ratio(layer);
            if r + STEP > MAX_RATIO + 1e-9 {
                continue;
            }
            let mut cand = spec.clone();
            cand.set(layer.clone(), r + STEP);
            evaluations += 1;
            if !floor.satisfied(profile, &cand) {
                continue;
            }
            let dt = current_time - profile.batched_time_factor(&cand);
            if dt <= 0.0 {
                continue;
            }
            // Score: time saved per accuracy damage added (plus epsilon
            // so zero-damage moves rank by raw time saving).
            let dd = profile.damage(&cand) - profile.damage(&spec);
            let score = dt / (dd.max(0.0) + 1e-6);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((li, score));
            }
        }
        match best {
            Some((li, _)) => {
                let r = spec.ratio(&layers[li]);
                spec.set(layers[li].clone(), r + STEP);
            }
            None => break,
        }
    }
    let (top1, top5) = profile.accuracy(&spec);
    Some(SpecSearchResult {
        time_factor: profile.batched_time_factor(&spec),
        top1,
        top5,
        spec,
        evaluations,
    })
}

/// Exhaustive reference: the best spec on the full grid over `layers`
/// (only tractable for small layer counts — tests use 2–3 layers).
pub fn min_time_spec_exhaustive(
    profile: &AppProfile,
    layers: &[&str],
    floor: Floor,
) -> Option<SpecSearchResult> {
    let steps = (MAX_RATIO / STEP).round() as usize + 1;
    let total = steps.pow(layers.len() as u32);
    let mut best: Option<SpecSearchResult> = None;
    for code in 0..total {
        let mut c = code;
        let mut spec = PruneSpec::none();
        for layer in layers {
            let ratio = (c % steps) as f64 * STEP;
            c /= steps;
            spec.set(layer.to_string(), ratio);
        }
        if !floor.satisfied(profile, &spec) {
            continue;
        }
        let tf = profile.batched_time_factor(&spec);
        if best.as_ref().is_none_or(|b| tf < b.time_factor) {
            let (top1, top5) = profile.accuracy(&spec);
            best = Some(SpecSearchResult {
                time_factor: tf,
                top1,
                top5,
                spec,
                evaluations: total as u64,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_pruning::caffenet_profile;

    #[test]
    fn no_accuracy_loss_floor_finds_all_sweet_spots() {
        let p = caffenet_profile();
        let r = min_time_spec(&p, Floor::Top5(0.80)).unwrap();
        // With a zero-loss floor the search should prune every layer to
        // its knee — exactly the paper's per-layer sweet spots... except
        // that combining layers incurs interaction damage, so the search
        // must stop short of combining them all.
        assert!((p.base_top5 * (1.0 - p.damage(&r.spec)) - 0.80).abs() < 1e-9 || r.top5 >= 0.80);
        assert!(r.time_factor < 1.0, "some pruning must be free");
        // conv2 alone at 50% is free; the result must be at least that good.
        assert!(
            r.time_factor
                <= p.batched_time_factor(&cap_pruning::PruneSpec::single("conv2", 0.5)) + 1e-9
        );
    }

    #[test]
    fn floor_relaxation_monotone() {
        let p = caffenet_profile();
        let mut prev_time = 1.0;
        for floor in [0.80, 0.70, 0.60, 0.50] {
            let r = min_time_spec(&p, Floor::Top5(floor)).unwrap();
            assert!(r.top5 + 1e-9 >= floor);
            assert!(
                r.time_factor <= prev_time + 1e-9,
                "floor {floor}: {} > {prev_time}",
                r.time_factor
            );
            prev_time = r.time_factor;
        }
    }

    #[test]
    fn impossible_floor_is_none() {
        let p = caffenet_profile();
        assert!(min_time_spec(&p, Floor::Top1(0.99)).is_none());
        assert!(min_time_spec(&p, Floor::Top5(0.81)).is_none());
    }

    #[test]
    fn greedy_close_to_exhaustive_on_two_layers() {
        let p = caffenet_profile();
        // Restrict damage comparison to conv1+conv2 by exhaustive search.
        let ex = min_time_spec_exhaustive(&p, &["conv1", "conv2"], Floor::Top5(0.70)).unwrap();
        let greedy = min_time_spec(&p, Floor::Top5(0.70)).unwrap();
        // The full greedy can use all five layers, so it must be at
        // least as good as the two-layer exhaustive optimum.
        assert!(
            greedy.time_factor <= ex.time_factor + 1e-9,
            "greedy {} vs exhaustive {}",
            greedy.time_factor,
            ex.time_factor
        );
        assert!(greedy.top5 + 1e-9 >= 0.70);
    }

    #[test]
    fn evaluations_polynomial() {
        let p = caffenet_profile();
        let r = min_time_spec(&p, Floor::Top5(0.60)).unwrap();
        // At most layers * steps per accepted move, 9 moves per layer:
        // well under layers^2 * steps^2.
        assert!(r.evaluations < 5 * 10 * 5 * 10, "evals {}", r.evaluations);
    }
}
