//! Joint prune × quantize exploration — the 2-D accuracy-knob grid.
//!
//! PR 10 makes precision a *second* accuracy knob next to pruning: every
//! pruned version of the application can now run on the f32 kernels or
//! on the int8 path (`CAP_TENSOR_PRECISION=int8`, see
//! `cap_tensor::precision`). This module sweeps the cross product. The
//! pruning axis comes from the calibrated [`AppProfile`] exactly as in
//! [`crate::version`]; the precision axis is a measured
//! [`PrecisionModel`] — a throughput ratio and an accuracy delta taken
//! from real f32-vs-int8 runs (the `quantize` ablation experiment in
//! `cap-bench` takes the accuracy drops from TinyNet arms and the
//! speedup from a Caffenet-conv-shaped kernel timing; paper-scale
//! models substitute their own measurements). Applying a measured
//! ratio to a calibrated profile mirrors how the paper scales its
//! reference-GPU timings across machine types.
//!
//! Outputs: the full [`JointPoint`] grid, its Pareto frontier in the
//! (top-1 ↑, time ↓) plane, and a sweet-spot map — for each accuracy
//! floor, the fastest (prune, precision) combination still above it.

use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::version::AppVersion;
use cap_pruning::{AppProfile, PruneSpec};
use cap_tensor::Precision;
use serde::{Deserialize, Serialize};

/// Measured effect of switching the weighted layers from f32 to int8,
/// relative to the f32 baseline at the same pruning level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrecisionModel {
    /// Batched-throughput speedup of int8 over f32 (> 1 when int8 is
    /// faster). Applied as a divisor to profile times.
    pub speedup: f64,
    /// Absolute top-1 accuracy drop caused by quantization (≥ 0 in the
    /// typical case; negative values — int8 scoring higher on a small
    /// eval set — are accepted and simply credit the int8 arm).
    pub top1_drop: f64,
    /// Absolute top-5 accuracy drop caused by quantization.
    pub top5_drop: f64,
}

impl PrecisionModel {
    /// Build from two measured arms of the same workload:
    /// `(top1, top5, s_per_image)` under f32 and under int8.
    pub fn from_measured(f32_arm: (f64, f64, f64), int8_arm: (f64, f64, f64)) -> Self {
        let (a1, a5, t_f32) = f32_arm;
        let (b1, b5, t_int8) = int8_arm;
        Self {
            speedup: if t_int8 > 0.0 { t_f32 / t_int8 } else { 1.0 },
            top1_drop: a1 - b1,
            top5_drop: a5 - b5,
        }
    }

    /// The identity model: int8 behaves exactly like f32. Useful as the
    /// no-measurement baseline arm of a what-if sweep.
    pub fn identity() -> Self {
        Self {
            speedup: 1.0,
            top1_drop: 0.0,
            top5_drop: 0.0,
        }
    }
}

/// One cell of the joint grid: a pruning degree × a precision, resolved
/// into accuracy and batched time per image.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointPoint {
    /// The pruning degree of this cell.
    pub spec: PruneSpec,
    /// `"f32"` or `"int8"` (the [`Precision`] name).
    pub precision: String,
    /// Top-1 accuracy in `[0, 1]` after pruning and (for int8) the
    /// measured quantization drop.
    pub top1: f64,
    /// Top-5 accuracy in `[0, 1]`.
    pub top5: f64,
    /// Batched seconds per image on the reference machine.
    pub s_per_image: f64,
}

impl JointPoint {
    /// Display label: the prune spec's label plus the precision.
    pub fn label(&self) -> String {
        format!("{}@{}", self.spec.label(), self.precision)
    }
}

/// Cross a pruned version set with both precisions: each [`AppVersion`]
/// contributes its f32 cell verbatim and an int8 cell with the model's
/// speedup and accuracy drops applied. Accuracies clamp to `[0, 1]`.
pub fn joint_grid(versions: &[AppVersion], model: &PrecisionModel) -> Vec<JointPoint> {
    let mut out = Vec::with_capacity(versions.len() * 2);
    for v in versions {
        out.push(JointPoint {
            spec: v.spec.clone(),
            precision: Precision::F32.name().to_string(),
            top1: v.top1,
            top5: v.top5,
            s_per_image: v.exec.s_per_image_batched_ref,
        });
        out.push(JointPoint {
            spec: v.spec.clone(),
            precision: Precision::Int8.name().to_string(),
            top1: (v.top1 - model.top1_drop).clamp(0.0, 1.0),
            top5: (v.top5 - model.top5_drop).clamp(0.0, 1.0),
            s_per_image: v.exec.s_per_image_batched_ref / model.speedup.max(f64::MIN_POSITIVE),
        });
    }
    out
}

/// Convenience: resolve a version grid from `profile` via
/// [`AppVersion::from_profile`] and cross it with both precisions.
pub fn joint_grid_from_profile(
    profile: &AppProfile,
    specs: &[PruneSpec],
    model: &PrecisionModel,
) -> Vec<JointPoint> {
    let versions: Vec<AppVersion> = specs
        .iter()
        .map(|s| AppVersion::from_profile(profile, s.clone()))
        .collect();
    joint_grid(&versions, model)
}

/// Pareto frontier of a joint grid in the (top-1 ↑, time ↓) plane.
/// Indices in the returned frontier refer to positions in `points`.
pub fn joint_frontier(points: &[JointPoint]) -> ParetoFrontier {
    let candidates: Vec<ParetoPoint> = points
        .iter()
        .map(|p| ParetoPoint {
            accuracy: p.top1,
            objective: p.s_per_image,
        })
        .collect();
    ParetoFrontier::of(&candidates)
}

/// Sweet-spot map: for each accuracy floor, the index (into `points`)
/// of the *fastest* joint cell whose top-1 still clears the floor, or
/// `None` when no cell does. Floors are reported back alongside the
/// picks so the map serializes as a self-describing table.
///
/// This is the joint-knob analogue of the paper's "what is the cheapest
/// configuration at accuracy ≥ A?" query: it answers whether the floor
/// is best met by pruning harder in f32 or pruning lighter in int8.
pub fn sweet_spots(points: &[JointPoint], floors: &[f64]) -> Vec<(f64, Option<usize>)> {
    floors
        .iter()
        .map(|&floor| {
            let pick = points
                .iter()
                .enumerate()
                .filter(|(_, p)| p.top1 >= floor)
                .min_by(|(_, a), (_, b)| {
                    a.s_per_image
                        .partial_cmp(&b.s_per_image)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i);
            (floor, pick)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_pruning::profile::caffenet_profile;

    fn model() -> PrecisionModel {
        PrecisionModel {
            speedup: 1.8,
            top1_drop: 0.004,
            top5_drop: 0.002,
        }
    }

    fn small_grid() -> Vec<JointPoint> {
        let profile = caffenet_profile();
        let mut specs = Vec::new();
        for &r in &[0.0, 0.3, 0.6] {
            let mut s = PruneSpec::none();
            s.set("conv1", r);
            s.set("conv2", r);
            specs.push(s);
        }
        joint_grid_from_profile(&profile, &specs, &model())
    }

    #[test]
    fn grid_doubles_versions_and_applies_model() {
        let grid = small_grid();
        assert_eq!(grid.len(), 6);
        // Cells alternate f32 / int8 per spec.
        let (f, q) = (&grid[0], &grid[1]);
        assert_eq!(f.precision, "f32");
        assert_eq!(q.precision, "int8");
        assert!((f.top1 - q.top1 - 0.004).abs() < 1e-12);
        assert!((f.s_per_image / q.s_per_image - 1.8).abs() < 1e-9);
        assert!(q.label().ends_with("@int8"));
    }

    #[test]
    fn from_measured_recovers_speedup_and_drop() {
        let m = PrecisionModel::from_measured((0.80, 0.95, 0.010), (0.79, 0.945, 0.005));
        assert!((m.speedup - 2.0).abs() < 1e-12);
        assert!((m.top1_drop - 0.01).abs() < 1e-12);
        assert!((m.top5_drop - 0.005).abs() < 1e-12);
        let id = PrecisionModel::identity();
        assert_eq!(id.speedup, 1.0);
    }

    #[test]
    fn frontier_mixes_precisions_when_int8_is_cheap() {
        let grid = small_grid();
        let frontier = joint_frontier(&grid);
        assert!(!frontier.is_empty());
        // With a small accuracy drop and a large speedup, at least one
        // int8 cell must survive on the frontier (the unpruned int8
        // cell beats every slower f32 cell at nearly the same top-1).
        let any_int8 = frontier
            .indices()
            .iter()
            .any(|&i| grid[i].precision == "int8");
        assert!(any_int8, "frontier is all-f32: {:?}", frontier.indices());
        // Frontier objectives strictly decrease along descending accuracy.
        for w in frontier.points().windows(2) {
            assert!(w[1].objective < w[0].objective);
        }
    }

    #[test]
    fn sweet_spots_prefer_int8_at_relaxed_floors() {
        let grid = small_grid();
        let top = grid.iter().map(|p| p.top1).fold(0.0f64, f64::max);
        let spots = sweet_spots(&grid, &[top, top - 0.02, 0.0, 2.0]);
        assert_eq!(spots.len(), 4);
        // An unreachable floor yields no pick.
        assert_eq!(spots[3].1, None);
        // At a floor everyone clears, the pick is the global fastest —
        // which must be an int8 cell (1.8× faster at every prune level).
        let all = spots[2].1.expect("floor 0.0 is satisfiable");
        assert_eq!(grid[all].precision, "int8");
        // Picks never violate their floor.
        for (floor, pick) in &spots {
            if let Some(i) = pick {
                assert!(grid[*i].top1 >= *floor);
            }
        }
    }
}
