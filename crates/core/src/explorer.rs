//! Configuration-space exploration — the machinery behind Figures 9/10:
//! evaluate every (application version × resource configuration) pair
//! under a workload, filter by deadline/budget feasibility, and measure
//! the savings Pareto-optimal selection buys.

use crate::metrics::{car, tar, AccuracyMetric};
use crate::pareto::{pareto_indices, ParetoPoint};
use crate::version::AppVersion;
use cap_cloud::{simulate_with, Distribution, GpuScaling, ResourceConfig};
use cap_obs::{NoopTracer, SpanInfo, SpanScope, Tracer};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One evaluated candidate: an application version on a resource
/// configuration, with predicted time and cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluatedConfig {
    /// Index into the version list.
    pub version_idx: usize,
    /// Index into the configuration list.
    pub config_idx: usize,
    /// Human-readable labels (`spec`, `resources`).
    pub version_label: String,
    /// Resource configuration label.
    pub config_label: String,
    /// Predicted total inference time, seconds (Eq. 2).
    pub time_s: f64,
    /// Predicted total cost, USD (Eq. 1).
    pub cost_usd: f64,
    /// Top-1 accuracy of the version.
    pub top1: f64,
    /// Top-5 accuracy of the version.
    pub top5: f64,
    /// Parallel inferences per GPU used for this evaluation.
    pub batch: u32,
}

impl EvaluatedConfig {
    /// Accuracy under the chosen metric.
    pub fn accuracy(&self, metric: AccuracyMetric) -> f64 {
        match metric {
            AccuracyMetric::Top1 => self.top1,
            AccuracyMetric::Top5 => self.top5,
        }
    }

    /// Time-Accuracy Ratio of this candidate.
    pub fn tar(&self, metric: AccuracyMetric) -> f64 {
        tar(self.time_s, self.accuracy(metric))
    }

    /// Cost-Accuracy Ratio of this candidate.
    pub fn car(&self, metric: AccuracyMetric) -> f64 {
        car(self.cost_usd, self.accuracy(metric))
    }

    /// Point in the (accuracy, time) plane.
    pub fn time_point(&self, metric: AccuracyMetric) -> ParetoPoint {
        ParetoPoint {
            accuracy: self.accuracy(metric),
            objective: self.time_s,
        }
    }

    /// Point in the (accuracy, cost) plane.
    pub fn cost_point(&self, metric: AccuracyMetric) -> ParetoPoint {
        ParetoPoint {
            accuracy: self.accuracy(metric),
            objective: self.cost_usd,
        }
    }

    /// Point in the joint (accuracy, time, cost) space.
    pub fn tri_point(&self, metric: AccuracyMetric) -> crate::pareto3::TriPoint {
        crate::pareto3::TriPoint {
            accuracy: self.accuracy(metric),
            time: self.time_s,
            cost: self.cost_usd,
        }
    }
}

/// Indices of candidates on the joint accuracy–time–cost Pareto
/// frontier (extension beyond the paper's two separate planes).
pub fn tri_frontier_indices(evals: &[EvaluatedConfig], metric: AccuracyMetric) -> Vec<usize> {
    let points: Vec<crate::pareto3::TriPoint> = evals.iter().map(|e| e.tri_point(metric)).collect();
    crate::pareto3::tri_pareto_indices(&points)
}

/// Evaluate the full cross-product of versions × configurations for a
/// `w`-image workload at `batch` parallel inferences per GPU.
///
/// Uses the paper's Eq. 4 equal-split distribution and the default
/// (calibrated sub-linear) multi-GPU scaling model; evaluation is
/// rayon-parallel over the cross-product.
pub fn evaluate_all(
    versions: &[AppVersion],
    configs: &[ResourceConfig],
    w: u64,
    batch: u32,
) -> Vec<EvaluatedConfig> {
    evaluate_grid(versions, configs, w, &[batch])
}

/// Evaluate versions × configurations × batch sizes. The batch dimension
/// is part of the paper's configuration space (Table 2's `bᵢ`): running
/// below GPU saturation is a legitimate — if usually dominated — choice,
/// and it is what puts the slow, infeasible candidates into Figures 9/10.
///
/// Multi-GPU instances scale along the calibrated efficiency curve; use
/// [`evaluate_grid_with`] with [`GpuScaling::Ideal`] for paper-fidelity
/// numbers.
pub fn evaluate_grid(
    versions: &[AppVersion],
    configs: &[ResourceConfig],
    w: u64,
    batches: &[u32],
) -> Vec<EvaluatedConfig> {
    evaluate_grid_with(versions, configs, w, batches, &GpuScaling::default())
}

/// [`evaluate_grid`] under an explicit multi-GPU scaling model.
pub fn evaluate_grid_with(
    versions: &[AppVersion],
    configs: &[ResourceConfig],
    w: u64,
    batches: &[u32],
    scaling: &GpuScaling,
) -> Vec<EvaluatedConfig> {
    evaluate_grid_traced(versions, configs, w, batches, scaling, &NoopTracer)
}

/// [`evaluate_grid_with`] with observability hooks: reports one
/// [`SpanScope::GridEval`] span covering the whole sweep (`shape` =
/// `[versions, configs, batches, 0]`) and counts every evaluated
/// (version, configuration, batch) triple in
/// [`cap_obs::metrics()`].`grid_candidates` — the Figures 9/10 sweeps
/// become visible in a metrics snapshot instead of being a silent
/// rayon loop. With [`NoopTracer`] this is exactly
/// [`evaluate_grid_with`].
pub fn evaluate_grid_traced<T: Tracer>(
    versions: &[AppVersion],
    configs: &[ResourceConfig],
    w: u64,
    batches: &[u32],
    scaling: &GpuScaling,
    tracer: &T,
) -> Vec<EvaluatedConfig> {
    cap_obs::metrics()
        .grid_candidates
        .add((versions.len() * configs.len() * batches.len()) as u64);
    let t0 = if tracer.enabled() {
        Some(Instant::now())
    } else {
        None
    };
    let evals = evaluate_grid_inner(versions, configs, w, batches, scaling);
    if let Some(t0) = t0 {
        tracer.span_exit(
            &SpanInfo {
                scope: SpanScope::GridEval,
                name: "evaluate_grid",
                kind: "",
                shape: [versions.len(), configs.len(), batches.len(), 0],
                index: 0,
            },
            t0.elapsed(),
        );
    }
    evals
}

fn evaluate_grid_inner(
    versions: &[AppVersion],
    configs: &[ResourceConfig],
    w: u64,
    batches: &[u32],
    scaling: &GpuScaling,
) -> Vec<EvaluatedConfig> {
    let triples: Vec<(usize, usize, u32)> = (0..versions.len())
        .flat_map(|v| (0..configs.len()).flat_map(move |c| batches.iter().map(move |&b| (v, c, b))))
        .collect();
    triples
        .par_iter()
        .filter_map(|&(vi, ci, batch)| {
            let v = &versions[vi];
            let cfg = &configs[ci];
            let est = simulate_with(cfg, &v.exec, w, batch, Distribution::EqualSplit, scaling)?;
            Some(EvaluatedConfig {
                version_idx: vi,
                config_idx: ci,
                version_label: v.label(),
                config_label: cfg.label(),
                time_s: est.time_s,
                cost_usd: est.cost_usd,
                top1: v.top1,
                top5: v.top5,
                batch,
            })
        })
        .collect()
}

/// Candidates completing within the deadline `T′` (Figure 9's filter).
pub fn feasible_by_deadline(evals: &[EvaluatedConfig], deadline_s: f64) -> Vec<EvaluatedConfig> {
    evals
        .iter()
        .filter(|e| e.time_s <= deadline_s)
        .cloned()
        .collect()
}

/// Candidates costing at most the budget `C′` (Figure 10's filter).
pub fn feasible_by_budget(evals: &[EvaluatedConfig], budget_usd: f64) -> Vec<EvaluatedConfig> {
    evals
        .iter()
        .filter(|e| e.cost_usd <= budget_usd)
        .cloned()
        .collect()
}

/// Which objective a frontier is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total inference time.
    Time,
    /// Minimize total cost.
    Cost,
}

/// Indices of Pareto-optimal candidates in the chosen plane.
pub fn frontier_indices(
    evals: &[EvaluatedConfig],
    metric: AccuracyMetric,
    objective: Objective,
) -> Vec<usize> {
    let points: Vec<ParetoPoint> = evals
        .iter()
        .map(|e| match objective {
            Objective::Time => e.time_point(metric),
            Objective::Cost => e.cost_point(metric),
        })
        .collect();
    pareto_indices(&points)
}

/// The paper's headline measurement (§4.3.3 / §4.4): among candidates
/// whose accuracy matches the *highest-accuracy Pareto point* (within
/// `acc_tol`), how much does picking the Pareto-optimal one save versus
/// the worst same-accuracy candidate?
///
/// Returns `(best, worst, saving_fraction)` or `None` when no frontier
/// exists.
pub fn savings_at_best_accuracy(
    evals: &[EvaluatedConfig],
    metric: AccuracyMetric,
    objective: Objective,
    acc_tol: f64,
) -> Option<(EvaluatedConfig, EvaluatedConfig, f64)> {
    let front = frontier_indices(evals, metric, objective);
    let best_idx = *front.first()?; // frontier is descending accuracy
    let best = &evals[best_idx];
    let best_acc = best.accuracy(metric);
    let obj = |e: &EvaluatedConfig| match objective {
        Objective::Time => e.time_s,
        Objective::Cost => e.cost_usd,
    };
    let worst = evals
        .iter()
        .filter(|e| (e.accuracy(metric) - best_acc).abs() <= acc_tol)
        .max_by(|a, b| obj(a).partial_cmp(&obj(b)).unwrap())?
        .clone();
    let saving = 1.0 - obj(best) / obj(&worst);
    Some((best.clone(), worst, saving))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_cloud::{catalog, enumerate_configs, InstanceType};
    use cap_pruning::caffenet_profile;

    fn fig9_setup() -> (Vec<AppVersion>, Vec<ResourceConfig>) {
        let profile = caffenet_profile();
        let versions = crate::version::caffenet_version_grid(&profile);
        let p2: Vec<InstanceType> = catalog()
            .into_iter()
            .filter(|i| i.family() == "p2")
            .collect();
        let configs = enumerate_configs(&p2, 3);
        (versions, configs)
    }

    /// The batch grid used for the Figure 9/10 configuration space: one
    /// saturated setting plus two below-saturation settings.
    const BATCH_GRID: [u32; 3] = [48, 160, 512];

    #[test]
    fn cross_product_size() {
        let (versions, configs) = fig9_setup();
        let evals = evaluate_grid(&versions, &configs, 1_000_000, &BATCH_GRID);
        assert_eq!(evals.len(), 60 * 63 * 3);
    }

    #[test]
    fn fig9_feasible_set_and_frontier() {
        let (versions, configs) = fig9_setup();
        let evals = evaluate_grid(&versions, &configs, 1_000_000, &BATCH_GRID);
        // 10-hour deadline.
        let feasible = feasible_by_deadline(&evals, 10.0 * 3600.0);
        assert!(!feasible.is_empty());
        assert!(feasible.len() < evals.len(), "deadline must bind");
        // Multiple Pareto-optimal configurations exist (Observation 4).
        let front = frontier_indices(&feasible, AccuracyMetric::Top1, Objective::Time);
        assert!(front.len() >= 3, "frontier size {}", front.len());
        // Frontier accuracies span a range, descending.
        let accs: Vec<f64> = front.iter().map(|&i| feasible[i].top1).collect();
        assert!(accs.windows(2).all(|w| w[0] >= w[1]));
        assert!(accs[0] - accs[accs.len() - 1] > 0.1);
    }

    #[test]
    fn calibrated_scaling_reshapes_multi_gpu_candidates() {
        let (versions, configs) = fig9_setup();
        let few: Vec<AppVersion> = versions.into_iter().take(4).collect();
        let cal = evaluate_grid(&few, &configs, 1_000_000, &[512]);
        let ideal = evaluate_grid_with(&few, &configs, 1_000_000, &[512], &GpuScaling::Ideal);
        assert_eq!(cal.len(), ideal.len());
        // Calibrated times are pointwise no faster than ideal, and
        // multi-GPU configurations are strictly slower.
        let mut strictly_slower = 0usize;
        for (c, i) in cal.iter().zip(&ideal) {
            assert!(c.time_s >= i.time_s - 1e-9, "{}", c.config_label);
            if c.time_s > i.time_s * 1.05 {
                strictly_slower += 1;
            }
        }
        assert!(strictly_slower > 0, "multi-GPU configs must pay the curve");
        // Single p2.xlarge (one GPU) candidates are identical either way.
        let mut singles = 0usize;
        for (c, i) in cal.iter().zip(&ideal) {
            if c.config_label == "1xp2.xlarge" {
                assert!((c.time_s - i.time_s).abs() < 1e-9);
                singles += 1;
            }
        }
        assert!(singles > 0, "expected single-GPU candidates in the grid");
    }

    #[test]
    fn fig10_budget_filter() {
        let (versions, configs) = fig9_setup();
        let evals = evaluate_grid(&versions, &configs, 1_000_000, &BATCH_GRID);
        let feasible = feasible_by_budget(&evals, 300.0);
        assert!(!feasible.is_empty());
        for e in &feasible {
            assert!(e.cost_usd <= 300.0);
        }
        let front = frontier_indices(&feasible, AccuracyMetric::Top5, Objective::Cost);
        assert!(front.len() >= 3);
    }

    #[test]
    fn savings_at_best_accuracy_positive() {
        let (versions, configs) = fig9_setup();
        let evals = evaluate_grid(&versions, &configs, 1_000_000, &BATCH_GRID);
        let feasible = feasible_by_deadline(&evals, 10.0 * 3600.0);
        let (best, worst, saving) =
            savings_at_best_accuracy(&feasible, AccuracyMetric::Top1, Objective::Time, 1e-9)
                .unwrap();
        assert!(saving > 0.3, "time saving {saving}");
        assert!(best.time_s < worst.time_s);
        assert_eq!(best.top1, worst.top1);
    }

    #[test]
    fn tar_car_accessors_consistent() {
        let (versions, configs) = fig9_setup();
        let evals = evaluate_all(&versions[..2], &configs[..2], 50_000, 512);
        for e in &evals {
            assert!((e.tar(AccuracyMetric::Top1) - e.time_s / e.top1).abs() < 1e-9);
            assert!((e.car(AccuracyMetric::Top5) - e.cost_usd / e.top5).abs() < 1e-9);
        }
    }

    #[test]
    fn tri_frontier_subset_of_both_two_d_frontiers_union_superset() {
        // Every 2-D frontier point is also on the 3-D frontier (a point
        // non-dominated in (acc, time) cannot be dominated in
        // (acc, time, cost) unless an equal-time dominator is cheaper).
        let (versions, configs) = fig9_setup();
        let evals = evaluate_all(&versions, &configs[..20], 500_000, 512);
        let tri: std::collections::HashSet<usize> =
            tri_frontier_indices(&evals, AccuracyMetric::Top1)
                .into_iter()
                .collect();
        assert!(!tri.is_empty());
        for &i in &tri {
            // No member of the 3-D frontier is dominated by any candidate.
            let p = evals[i].tri_point(AccuracyMetric::Top1);
            for e in &evals {
                let q = e.tri_point(AccuracyMetric::Top1);
                assert!(!q.dominates(&p));
            }
        }
    }

    #[test]
    fn deadline_zero_filters_everything() {
        let (versions, configs) = fig9_setup();
        let evals = evaluate_all(&versions[..1], &configs[..1], 50_000, 512);
        assert!(feasible_by_deadline(&evals, 0.0).is_empty());
    }
}
