//! Time-Accuracy Ratio and Cost-Accuracy Ratio (§3.5).
//!
//! `TAR = t / a` and `CAR = c / a` express the time (cost) spent per unit
//! of accuracy delivered. Lower is better; accuracy is in `[0, 1]`, time
//! and cost in `(0, ∞)`. Comparing two configurations that reach the same
//! accuracy, the one with lower TAR (CAR) is faster (cheaper) — which is
//! what makes the ratios usable as greedy sort keys in Algorithm 1.

use serde::{Deserialize, Serialize};

/// Which accuracy definition a metric is computed against (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccuracyMetric {
    /// Highest-probability class is the label.
    Top1,
    /// Label is among the five highest classes.
    Top5,
}

/// Time-Accuracy Ratio: seconds per unit accuracy. Returns `+∞` for
/// non-positive accuracy (an application that achieves nothing has
/// unbounded time-per-accuracy).
pub fn tar(time_s: f64, accuracy: f64) -> f64 {
    if accuracy <= 0.0 {
        return f64::INFINITY;
    }
    time_s / accuracy
}

/// Cost-Accuracy Ratio: dollars per unit accuracy. Same conventions as
/// [`tar`].
pub fn car(cost_usd: f64, accuracy: f64) -> f64 {
    if accuracy <= 0.0 {
        return f64::INFINITY;
    }
    cost_usd / accuracy
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lower_time_same_accuracy_means_lower_tar() {
        assert!(tar(10.0, 0.8) < tar(12.0, 0.8));
    }

    #[test]
    fn higher_accuracy_same_time_means_lower_tar() {
        assert!(tar(10.0, 0.9) < tar(10.0, 0.5));
    }

    #[test]
    fn zero_accuracy_is_infinite() {
        assert!(tar(1.0, 0.0).is_infinite());
        assert!(car(1.0, -0.1).is_infinite());
    }

    #[test]
    fn car_example_from_fig12_scale() {
        // Cost $0.27 at 57 % top-1 -> CAR ≈ 0.47 $/accuracy.
        let v = car(0.27, 0.57);
        assert!((v - 0.4737).abs() < 0.001);
    }

    proptest! {
        #[test]
        fn prop_tar_positive_and_scales(t in 0.001f64..1e6, a in 0.01f64..1.0, k in 1.1f64..10.0) {
            prop_assert!(tar(t, a) > 0.0);
            // TAR is linear in time and inverse in accuracy.
            prop_assert!((tar(k * t, a) - k * tar(t, a)).abs() < 1e-6 * tar(t, a).max(1.0));
            prop_assert!(tar(t, (a * k).min(1.0)) <= tar(t, a) + 1e-12);
        }

        #[test]
        fn prop_car_order_consistent_with_cost(c1 in 0.0f64..100.0, c2 in 0.0f64..100.0, a in 0.01f64..1.0) {
            prop_assert_eq!(car(c1, a) <= car(c2, a), c1 <= c2);
        }
    }
}
