//! Application versions: a degree of pruning resolved into accuracy and
//! reference timing (the elements of the paper's set `P`).

use cap_cloud::AppExecModel;
use cap_pruning::{AppProfile, PruneSpec};
use serde::{Deserialize, Serialize};

/// One version of the application — a CNN pruned by a specific degree —
/// with its accuracy and reference-GPU execution model attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppVersion {
    /// The degree of pruning producing this version.
    pub spec: PruneSpec,
    /// Top-1 inference accuracy in `[0, 1]`.
    pub top1: f64,
    /// Top-5 inference accuracy in `[0, 1]`.
    pub top5: f64,
    /// Reference (K80) timing for the cloud execution simulator.
    pub exec: AppExecModel,
}

impl AppVersion {
    /// Resolve a prune spec against a calibrated profile.
    pub fn from_profile(profile: &AppProfile, spec: PruneSpec) -> Self {
        let (top1, top5) = profile.accuracy(&spec);
        let exec = AppExecModel {
            s_per_image_batched_ref: profile.batched_s_per_image(&spec),
            single_latency_ref: profile.single_latency_s(&spec),
        };
        Self {
            spec,
            top1,
            top5,
            exec,
        }
    }

    /// Accuracy under the chosen metric.
    pub fn accuracy(&self, metric: crate::metrics::AccuracyMetric) -> f64 {
        match metric {
            crate::metrics::AccuracyMetric::Top1 => self.top1,
            crate::metrics::AccuracyMetric::Top5 => self.top5,
        }
    }

    /// Display label (the spec's label).
    pub fn label(&self) -> String {
        self.spec.label()
    }
}

/// The paper's Figure 9/10 version set: "60 versions of Caffenet CNN
/// pruned in different degrees spanning a wide accuracy range".
///
/// We realize it as a 5×4×3 grid: conv1 ∈ {0, 15, 30, 45, 60} %,
/// conv2 ∈ {0, 20, 40, 60} %, conv3–5 jointly ∈ {0, 30, 60} %.
pub fn caffenet_version_grid(profile: &AppProfile) -> Vec<AppVersion> {
    let r1 = [0.0, 0.15, 0.30, 0.45, 0.60];
    let r2 = [0.0, 0.20, 0.40, 0.60];
    let r_rest = [0.0, 0.30, 0.60];
    let mut out = Vec::with_capacity(60);
    for &a in &r1 {
        for &b in &r2 {
            for &c in &r_rest {
                let mut spec = PruneSpec::none();
                spec.set("conv1", a);
                spec.set("conv2", b);
                spec.set("conv3", c);
                spec.set("conv4", c);
                spec.set("conv5", c);
                out.push(AppVersion::from_profile(profile, spec));
            }
        }
    }
    out
}

/// A Googlenet version grid (extension — the paper restricts Figures
/// 9–12 to Caffenet "for simplicity"): 72 versions over the stem and the
/// inception branch families.
///
/// Axes: conv2-3x3 ∈ {0, 20, 40, 60} %, every inception 3×3 branch
/// jointly ∈ {0, 30, 60} %, every inception 5×5 branch jointly ∈
/// {0, 30, 60} %, conv1-7x7 ∈ {0, 30} %.
pub fn googlenet_version_grid(profile: &AppProfile) -> Vec<AppVersion> {
    let inception_3x3: Vec<String> = profile
        .conv_layer_names()
        .iter()
        .filter(|n| n.starts_with("inception-") && n.ends_with("-3x3"))
        .map(|s| s.to_string())
        .collect();
    let inception_5x5: Vec<String> = profile
        .conv_layer_names()
        .iter()
        .filter(|n| n.starts_with("inception-") && n.ends_with("-5x5"))
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::with_capacity(72);
    for &r_stem in &[0.0, 0.20, 0.40, 0.60] {
        for &r3 in &[0.0, 0.30, 0.60] {
            for &r5 in &[0.0, 0.30, 0.60] {
                for &r1 in &[0.0, 0.30] {
                    let mut spec = PruneSpec::none();
                    spec.set("conv2-3x3", r_stem);
                    spec.set("conv1-7x7-s2", r1);
                    for l in &inception_3x3 {
                        spec.set(l.clone(), r3);
                    }
                    for l in &inception_5x5 {
                        spec.set(l.clone(), r5);
                    }
                    out.push(AppVersion::from_profile(profile, spec));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::AccuracyMetric;
    use cap_pruning::caffenet_profile;

    #[test]
    fn unpruned_version_matches_profile_base() {
        let p = caffenet_profile();
        let v = AppVersion::from_profile(&p, PruneSpec::none());
        assert_eq!(v.top1, p.base_top1);
        assert_eq!(v.top5, p.base_top5);
        assert_eq!(v.exec.single_latency_ref, p.base_single_latency_s);
        assert_eq!(v.accuracy(AccuracyMetric::Top1), v.top1);
        assert_eq!(v.accuracy(AccuracyMetric::Top5), v.top5);
    }

    #[test]
    fn pruned_version_is_faster_and_no_more_accurate() {
        let p = caffenet_profile();
        let base = AppVersion::from_profile(&p, PruneSpec::none());
        let pruned = AppVersion::from_profile(&p, p.uniform_spec(0.6));
        assert!(pruned.exec.s_per_image_batched_ref < base.exec.s_per_image_batched_ref);
        assert!(pruned.top5 <= base.top5);
        assert!(pruned.top1 <= base.top1);
    }

    #[test]
    fn googlenet_grid_has_72_distinct_versions() {
        use cap_pruning::googlenet_profile;
        let p = googlenet_profile();
        let grid = googlenet_version_grid(&p);
        assert_eq!(grid.len(), 72);
        let labels: std::collections::HashSet<String> = grid.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 72);
        // Spans a wide accuracy range and includes the unpruned point.
        let max5 = grid.iter().map(|v| v.top5).fold(0.0, f64::max);
        let min5 = grid.iter().map(|v| v.top5).fold(1.0, f64::min);
        assert_eq!(max5, p.base_top5);
        assert!(min5 < 0.7 * p.base_top5, "min top5 {min5}");
    }

    #[test]
    fn grid_has_60_distinct_versions_spanning_wide_accuracy() {
        let p = caffenet_profile();
        let grid = caffenet_version_grid(&p);
        assert_eq!(grid.len(), 60);
        let labels: std::collections::HashSet<String> = grid.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 60);
        let max5 = grid.iter().map(|v| v.top5).fold(0.0, f64::max);
        let min5 = grid.iter().map(|v| v.top5).fold(1.0, f64::min);
        assert!(max5 >= 0.79, "max top5 {max5}");
        assert!(min5 <= 0.55, "min top5 {min5}");
    }
}
