//! # cap-core — the paper's primary contribution
//!
//! Characterizing the cost-accuracy performance of cloud applications:
//! given an application with tunable accuracy (degrees of pruning) and a
//! space of cloud resource configurations, quantify the time-accuracy
//! and cost-accuracy trade-offs and select configurations efficiently.
//!
//! * [`metrics`] — **TAR** (Time-Accuracy Ratio, `t/a`) and **CAR**
//!   (Cost-Accuracy Ratio, `c/a`), §3.5.
//! * [`version`] — application versions: one [`cap_pruning::PruneSpec`]
//!   resolved against a calibrated profile into accuracy + reference
//!   timing, plus generators for the paper's 60-version Caffenet set.
//! * [`explorer`] — evaluate the cross-product of versions × resource
//!   configurations under a workload (Figures 9, 10), with feasibility
//!   filters for deadline `T′` and budget `C′`.
//! * [`pareto`] — Pareto filtering of (accuracy ↑, time/cost ↓) point
//!   sets and frontier extraction.
//! * [`joint`] — the 2-D prune × quantize knob grid: cross every pruned
//!   version with the f32 and int8 execution paths (PR 10), extract the
//!   joint Pareto frontier and accuracy-floor sweet spots.
//! * [`allocation`] — **Algorithm 1**: greedy TAR/CAR-guided resource
//!   allocation in `O(|P|·|G| log |G|)`.
//! * [`exhaustive`] — the exponential `O(2^|G|)` baseline the paper
//!   compares against.
//! * [`characterize`] — the application-characterization stage (§4.2):
//!   layer time distribution, single-inference pruning sweep, GPU
//!   saturation curve — from the calibrated profiles *and* from real
//!   [`cap_cnn::Network`] execution.

#![warn(missing_docs)]

pub mod allocation;
pub mod characterize;
pub mod exhaustive;
pub mod explorer;
pub mod joint;
pub mod metrics;
pub mod pareto;
pub mod pareto3;
pub mod spec_search;
pub mod version;
pub mod whatif;

pub use allocation::{
    allocate, allocate_ordered, allocate_ordered_with, allocate_traced, AllocationRequest,
    AllocationResult, GreedyOrder,
};
pub use exhaustive::{exhaustive_search, ExhaustiveResult};
pub use explorer::{
    evaluate_all, evaluate_grid, evaluate_grid_traced, evaluate_grid_with, feasible_by_budget,
    feasible_by_deadline, frontier_indices, savings_at_best_accuracy, EvaluatedConfig, Objective,
};
pub use joint::{
    joint_frontier, joint_grid, joint_grid_from_profile, sweet_spots, JointPoint, PrecisionModel,
};
pub use metrics::{car, tar, AccuracyMetric};
pub use pareto::{pareto_front, pareto_indices, ParetoFrontier, ParetoPoint};
pub use pareto3::{tri_pareto_indices, TriPoint};
pub use spec_search::{min_time_spec, Floor, SpecSearchResult};
pub use version::{caffenet_version_grid, googlenet_version_grid, AppVersion};
pub use whatif::{
    cost_curve, max_accuracy_within, min_cost_for_accuracy, min_time_for_accuracy, WhatIfAnswer,
};
