//! Algorithm 1 — greedy resource allocation with TAR and CAR heuristics
//! (§4.5.3).
//!
//! Given degrees of pruning `P`, cloud resource instances `G`, a time
//! deadline `T′` and cost budget `C′`:
//!
//! 1. Sort `P` by accuracy descending, TAR ascending on accuracy ties.
//! 2. For each version, sort `G` by CAR ascending and add resources
//!    greedily until the configuration meets both constraints.
//!
//! Per version the work is the `O(|G| log |G|)` sort plus a linear
//! scan — polynomial, versus the `O(2^|G|)` exhaustive subset search
//! ([`crate::exhaustive`]).

use crate::metrics::{car, tar, AccuracyMetric};
use crate::version::AppVersion;
use cap_cloud::{simulate_with, Distribution, GpuScaling, InstanceType, ResourceConfig};
use cap_obs::{NoopTracer, SpanInfo, SpanScope, Tracer};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Constraints and workload for an allocation request.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Images to infer (`W`).
    pub w: u64,
    /// Parallel inferences per GPU (`b`).
    pub batch: u32,
    /// Time deadline `T′`, seconds.
    pub deadline_s: f64,
    /// Cost budget `C′`, USD.
    pub budget_usd: f64,
    /// Accuracy definition used for TAR/CAR ordering.
    pub metric: AccuracyMetric,
}

/// Successful allocation: the chosen version and resource configuration
/// with their predicted time and cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationResult {
    /// Index of the selected version in the caller's `P` slice.
    pub version_idx: usize,
    /// Selected resource configuration `R`.
    pub config: ResourceConfig,
    /// Predicted inference time `T`, seconds.
    pub time_s: f64,
    /// Predicted cost `C`, USD.
    pub cost_usd: f64,
    /// Number of `(version, partial configuration)` evaluations performed
    /// — the algorithm's work measure for the complexity comparison.
    pub evaluations: u64,
}

/// Reference TAR of a version: time to infer `w` images on a single
/// reference-GPU instance, per unit accuracy.
fn version_tar(v: &AppVersion, w: u64, metric: AccuracyMetric) -> f64 {
    tar(
        v.exec.s_per_image_batched_ref * w as f64,
        v.accuracy(metric),
    )
}

/// CAR of one resource instance for a version: cost of running the whole
/// workload on that instance alone, per unit accuracy, under the given
/// GPU-scaling model (the calibrated curve penalizes many-GPU instances
/// here, which reorders the greedy scan relative to the paper's ideal
/// split).
fn instance_car(
    inst: &InstanceType,
    v: &AppVersion,
    w: u64,
    batch: u32,
    metric: AccuracyMetric,
    scaling: &GpuScaling,
) -> f64 {
    let rate = v.exec.instance_rate_with(inst, inst.gpus, batch, scaling);
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let time_s = w as f64 / rate;
    car(
        cap_cloud::cost_usd(inst.price_per_hour, time_s),
        v.accuracy(metric),
    )
}

/// Resource ordering used by the greedy loop — the paper's Algorithm 1
/// uses [`GreedyOrder::CarAscending`]; the alternatives exist for the
/// ablation in `repro --exp ablation-alloc` and the `alloc_scaling` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyOrder {
    /// Ascending Cost-Accuracy Ratio (the paper's heuristic).
    CarAscending,
    /// Ascending hourly price, ignoring performance.
    PriceAscending,
    /// Descending raw throughput, ignoring price.
    ThroughputDescending,
    /// Caller-given order, untouched (a "no heuristic" control).
    AsGiven,
}

/// Run Algorithm 1 under the default (calibrated) multi-GPU scaling
/// model. Returns `None` when no prefix of the CAR-sorted resource list
/// satisfies both constraints for any version.
pub fn allocate(
    versions: &[AppVersion],
    resources: &[InstanceType],
    req: &AllocationRequest,
) -> Option<AllocationResult> {
    allocate_ordered(versions, resources, req, GreedyOrder::CarAscending)
}

/// Algorithm 1 with a configurable resource ordering (ablation hook).
pub fn allocate_ordered(
    versions: &[AppVersion],
    resources: &[InstanceType],
    req: &AllocationRequest,
    order: GreedyOrder,
) -> Option<AllocationResult> {
    allocate_ordered_with(versions, resources, req, order, &GpuScaling::default())
}

/// Algorithm 1 with explicit ordering *and* GPU-scaling model — pass
/// [`GpuScaling::Ideal`] to reproduce the paper's analytic selection.
pub fn allocate_ordered_with(
    versions: &[AppVersion],
    resources: &[InstanceType],
    req: &AllocationRequest,
    order: GreedyOrder,
    scaling: &GpuScaling,
) -> Option<AllocationResult> {
    allocate_traced(versions, resources, req, order, scaling, &NoopTracer)
}

/// [`allocate_ordered_with`] with observability hooks: reports one
/// [`SpanScope::Allocation`] span covering the greedy search (`shape` =
/// `[versions, resources, 0, 0]`) and counts the run in
/// [`cap_obs::metrics()`].`allocation_runs`. With [`NoopTracer`] this
/// is exactly [`allocate_ordered_with`].
pub fn allocate_traced<T: Tracer>(
    versions: &[AppVersion],
    resources: &[InstanceType],
    req: &AllocationRequest,
    order: GreedyOrder,
    scaling: &GpuScaling,
    tracer: &T,
) -> Option<AllocationResult> {
    cap_obs::metrics().allocation_runs.inc();
    let t0 = if tracer.enabled() {
        Some(Instant::now())
    } else {
        None
    };
    let result = allocate_inner(versions, resources, req, order, scaling);
    if let Some(t0) = t0 {
        tracer.span_exit(
            &SpanInfo {
                scope: SpanScope::Allocation,
                name: "algorithm1",
                kind: "",
                shape: [versions.len(), resources.len(), 0, 0],
                index: 0,
            },
            t0.elapsed(),
        );
    }
    result
}

fn allocate_inner(
    versions: &[AppVersion],
    resources: &[InstanceType],
    req: &AllocationRequest,
    order: GreedyOrder,
    scaling: &GpuScaling,
) -> Option<AllocationResult> {
    // Line 1: sort P by (accuracy desc, TAR asc).
    let mut p_order: Vec<usize> = (0..versions.len()).collect();
    p_order.sort_by(|&a, &b| {
        let (va, vb) = (&versions[a], &versions[b]);
        vb.accuracy(req.metric)
            .partial_cmp(&va.accuracy(req.metric))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                version_tar(va, req.w, req.metric)
                    .partial_cmp(&version_tar(vb, req.w, req.metric))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });

    let mut evaluations = 0u64;
    for &vi in &p_order {
        let v = &versions[vi];
        // Line 3: order G per the chosen heuristic (paper: CAR ascending).
        let mut g_order: Vec<usize> = (0..resources.len()).collect();
        match order {
            GreedyOrder::CarAscending => g_order.sort_by(|&a, &b| {
                instance_car(&resources[a], v, req.w, req.batch, req.metric, scaling)
                    .partial_cmp(&instance_car(
                        &resources[b],
                        v,
                        req.w,
                        req.batch,
                        req.metric,
                        scaling,
                    ))
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
            GreedyOrder::PriceAscending => g_order.sort_by(|&a, &b| {
                resources[a]
                    .price_per_hour
                    .partial_cmp(&resources[b].price_per_hour)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
            GreedyOrder::ThroughputDescending => g_order.sort_by(|&a, &b| {
                let ra = v
                    .exec
                    .instance_rate(&resources[a], resources[a].gpus, req.batch);
                let rb = v
                    .exec
                    .instance_rate(&resources[b], resources[b].gpus, req.batch);
                rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
            }),
            GreedyOrder::AsGiven => {}
        }
        // Lines 4-12: grow R greedily.
        let mut config = ResourceConfig::empty();
        for &gi in &g_order {
            config.add(resources[gi].clone(), 1);
            evaluations += 1;
            // Line 7: distribute workload (we balance finish times so the
            // added resource actually helps — the paper's "distribute
            // workload in R" step).
            let Some(est) = simulate_with(
                &config,
                &v.exec,
                req.w,
                req.batch,
                Distribution::Proportional,
                scaling,
            ) else {
                continue;
            };
            if est.time_s <= req.deadline_s && est.cost_usd <= req.budget_usd {
                return Some(AllocationResult {
                    version_idx: vi,
                    config,
                    time_s: est.time_s,
                    cost_usd: est.cost_usd,
                    evaluations,
                });
            }
            // Adding more resources cannot reduce cost once the budget is
            // blown at this time scale, but can still fix a deadline miss;
            // only bail for this version when cost alone already exceeds
            // the budget with the single cheapest-CAR resource unable to
            // meet time — i.e. keep scanning, the loop is linear anyway.
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::{caffenet_version_grid, AppVersion};
    use cap_cloud::catalog;
    use cap_pruning::{caffenet_profile, PruneSpec};

    fn versions() -> Vec<AppVersion> {
        caffenet_version_grid(&caffenet_profile())
    }

    /// A pool of instances: 3 of each catalog type.
    fn pool() -> Vec<InstanceType> {
        let mut out = Vec::new();
        for inst in catalog() {
            for _ in 0..3 {
                out.push(inst.clone());
            }
        }
        out
    }

    fn req(deadline_h: f64, budget: f64) -> AllocationRequest {
        AllocationRequest {
            w: 1_000_000,
            batch: 512,
            deadline_s: deadline_h * 3600.0,
            budget_usd: budget,
            metric: AccuracyMetric::Top1,
        }
    }

    #[test]
    fn generous_constraints_pick_highest_accuracy() {
        let vs = versions();
        let r = allocate(&vs, &pool(), &req(100.0, 10_000.0)).unwrap();
        let best_acc = vs.iter().map(|v| v.top1).fold(0.0, f64::max);
        assert_eq!(vs[r.version_idx].top1, best_acc);
        assert!(r.time_s <= 100.0 * 3600.0);
        assert!(r.cost_usd <= 10_000.0);
    }

    #[test]
    fn tight_deadline_forces_pruned_version_or_more_resources() {
        let vs = versions();
        // 1 hour for a million images is tight on a single GPU
        // (unpruned: ~6.3 h on one K80).
        let r = allocate(&vs, &pool(), &req(1.0, 10_000.0)).unwrap();
        assert!(r.time_s <= 3600.0);
        assert!(r.config.total_gpus() > 1 || !vs[r.version_idx].spec.is_none());
    }

    #[test]
    fn infeasible_constraints_return_none() {
        let vs = versions();
        assert!(allocate(&vs, &pool(), &req(0.0001, 0.01)).is_none());
    }

    #[test]
    fn result_respects_both_constraints() {
        let vs = versions();
        let request = req(4.0, 50.0);
        if let Some(r) = allocate(&vs, &pool(), &request) {
            assert!(r.time_s <= request.deadline_s);
            assert!(r.cost_usd <= request.budget_usd);
        }
    }

    #[test]
    fn evaluation_count_polynomial_in_g() {
        let vs = versions();
        let r = allocate(&vs, &pool(), &req(100.0, 10_000.0)).unwrap();
        // First version already satisfiable: at most |G| evaluations.
        assert!(r.evaluations <= pool().len() as u64);
    }

    #[test]
    fn accuracy_ties_broken_by_tar() {
        // Two versions with identical accuracy but different speed: the
        // faster (lower TAR) must be tried first and win.
        let p = caffenet_profile();
        let slow = AppVersion::from_profile(&p, PruneSpec::none());
        let mut fast = slow.clone();
        fast.exec.s_per_image_batched_ref *= 0.5; // same accuracy, faster
        let r = allocate(&[slow, fast], &pool(), &req(100.0, 10_000.0)).unwrap();
        assert_eq!(r.version_idx, 1);
    }

    #[test]
    fn ordering_ablation_all_orders_feasible_car_cheapest_or_tied() {
        let vs = versions();
        let pool = pool();
        let request = req(100.0, 10_000.0);
        let mut costs = std::collections::HashMap::new();
        for order in [
            GreedyOrder::CarAscending,
            GreedyOrder::PriceAscending,
            GreedyOrder::ThroughputDescending,
            GreedyOrder::AsGiven,
        ] {
            let r = allocate_ordered(&vs, &pool, &request, order)
                .unwrap_or_else(|| panic!("{order:?} found nothing"));
            assert!(r.time_s <= request.deadline_s);
            assert!(r.cost_usd <= request.budget_usd);
            costs.insert(format!("{order:?}"), r.cost_usd);
        }
        // The paper's CAR ordering is never beaten on cost by the naive
        // price ordering in this single-resource-satisfiable setting.
        assert!(
            costs["CarAscending"] <= costs["PriceAscending"] + 1e-9,
            "CAR {} vs price {}",
            costs["CarAscending"],
            costs["PriceAscending"]
        );
    }

    #[test]
    fn prefers_cheaper_car_family() {
        // g3 (M60) has lower CAR than p2 for this app; the greedy pick
        // should start with a g3 instance.
        let vs = versions();
        let r = allocate(&vs, &pool(), &req(100.0, 10_000.0)).unwrap();
        assert!(
            r.config.entries.iter().all(|(i, _)| i.family() == "g3"),
            "config {}",
            r.config.label()
        );
    }
}
