//! Application characterization (§3.2 / §4.2): the three preparatory
//! measurements — per-layer time distribution, single-inference pruning
//! headroom, and GPU saturation — produced both from calibrated profiles
//! (paper scale) and from real [`cap_cnn::Network`] execution.

use cap_cloud::{AppExecModel, BatchModel, GpuKind};
use cap_cnn::{ForwardArena, Network};
use cap_obs::{CollectingTracer, SpanScope};
use cap_pruning::{AppProfile, PruneSpec};
use cap_tensor::{Tensor4, TensorResult};
use serde::{Deserialize, Serialize};

/// One row of a layer time distribution (Figure 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerShare {
    /// Layer name.
    pub name: String,
    /// Layer kind tag (`conv`, `fc`, ...).
    pub kind: String,
    /// Fraction of total execution time.
    pub share: f64,
}

/// Figure 3 from the calibrated profile: convolution layers carry their
/// calibrated single-inference shares; the remainder is attributed to
/// the non-conv layers ("fc + other").
pub fn layer_time_distribution_model(profile: &AppProfile) -> Vec<LayerShare> {
    let mut out: Vec<LayerShare> = profile
        .layers
        .iter()
        .map(|l| LayerShare {
            name: l.name.clone(),
            kind: "conv".to_string(),
            share: l.single_time_share,
        })
        .collect();
    let conv_total: f64 = out.iter().map(|l| l.share).sum();
    out.push(LayerShare {
        name: "fc+other".to_string(),
        kind: "fc".to_string(),
        share: (1.0 - conv_total).max(0.0),
    });
    out
}

/// Figure 3 measured for real: run one timed forward pass of a network
/// and report each layer's wall-clock share.
pub fn layer_time_distribution_measured(
    net: &Network,
    input: &Tensor4,
) -> TensorResult<Vec<LayerShare>> {
    layer_time_distribution_min_of(net, input, 1)
}

/// Figure 3 with the paper's §3.3 protocol: `runs` timed passes,
/// per-layer minimum duration, normalized to shares.
///
/// Timing comes from the observability layer — each pass runs through
/// [`Network::forward_into_traced`] with a [`CollectingTracer`] and the
/// per-layer spans are reduced to minima — so these shares are the same
/// data any attached tracer would see, not a bespoke timer. The passes
/// share one [`ForwardArena`]; run 0 absorbs the buffer growth and the
/// min strips it back out.
pub fn layer_time_distribution_min_of(
    net: &Network,
    input: &Tensor4,
    runs: usize,
) -> TensorResult<Vec<LayerShare>> {
    let mut arena = ForwardArena::new();
    let mut min_times: Vec<(String, String, f64)> = Vec::new();
    for run in 0..runs.max(1) {
        let tracer = CollectingTracer::new();
        net.forward_into_traced(input, &mut arena, &tracer)?;
        let spans = tracer.take_spans();
        for (i, s) in spans
            .iter()
            .filter(|s| s.scope == SpanScope::Layer)
            .enumerate()
        {
            let secs = s.elapsed.as_secs_f64();
            if run == 0 {
                min_times.push((s.name.clone(), s.kind.clone(), secs));
            } else {
                min_times[i].2 = min_times[i].2.min(secs);
            }
        }
    }
    let total: f64 = min_times.iter().map(|(_, _, s)| s).sum();
    Ok(min_times
        .into_iter()
        .map(|(name, kind, secs)| LayerShare {
            name,
            kind,
            share: if total > 0.0 { secs / total } else { 0.0 },
        })
        .collect())
}

/// Figure 4: single-inference latency across uniform prune ratios.
pub fn single_inference_sweep(profile: &AppProfile, ratios: &[f64]) -> Vec<(f64, f64)> {
    ratios
        .iter()
        .map(|&r| {
            let spec = if r == 0.0 {
                PruneSpec::none()
            } else {
                profile.uniform_spec(r)
            };
            (r, profile.single_latency_s(&spec))
        })
        .collect()
}

/// Figure 5: time to infer `w` images versus the number of parallel
/// inferences, on one GPU of the given kind.
pub fn parallel_saturation_curve(
    profile: &AppProfile,
    gpu: GpuKind,
    w: u64,
    batches: &[u32],
) -> Vec<(u32, f64)> {
    let exec = AppExecModel {
        s_per_image_batched_ref: profile.base_batched_s_per_image,
        single_latency_ref: profile.base_single_latency_s,
    };
    let model: BatchModel = exec.batch_model(gpu);
    batches.iter().map(|&b| (b, model.time_s(w, b))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_cnn::models::{caffenet, WeightInit};
    use cap_pruning::caffenet_profile;

    #[test]
    fn model_distribution_matches_fig3_shares() {
        let shares = layer_time_distribution_model(&caffenet_profile());
        assert_eq!(shares.len(), 6);
        let conv1 = shares.iter().find(|l| l.name == "conv1").unwrap();
        assert!((conv1.share - 0.51).abs() < 1e-9);
        let total: f64 = shares.iter().map(|l| l.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measured_distribution_convs_dominate() {
        // Real execution of the real Caffenet: the GEMM-bound layers
        // (conv + fc) should dominate wall-clock, as Figure 3 reports.
        // With the SIMD-dispatched conv kernels the conv share at batch
        // 1 sits near 0.40 — the ~2× faster packed GEMM shrinks conv
        // wall-clock while the memory-bound fc6 matvec does not move
        // (lanes don't help a bandwidth-bound row walk), so conv is
        // co-dominant rather than outright majority. Floor at 0.25 to
        // leave headroom for scheduler noise when the suite shares one
        // core; the combined conv+fc bound below is the real claim.
        let net = caffenet(WeightInit::Gaussian { std: 0.01, seed: 7 }).unwrap();
        let input = Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
            ((c * 31 + h * 7 + w) % 17) as f32 / 17.0 - 0.5
        });
        // §3.3 protocol: min over repeated runs strips scheduler noise,
        // which matters when the test suite shares a single core.
        let shares = layer_time_distribution_min_of(&net, &input, 3).unwrap();
        // Prefix match: fused rows report "conv+relu" / "fc+relu" when
        // the executor absorbs the activation (DESIGN.md §6c), and the
        // absorbed ReLU's time belongs to the conv/fc row either way.
        let conv: f64 = shares
            .iter()
            .filter(|l| l.kind.starts_with("conv"))
            .map(|l| l.share)
            .sum();
        let fc: f64 = shares
            .iter()
            .filter(|l| l.kind.starts_with("fc"))
            .map(|l| l.share)
            .sum();
        assert!(conv > 0.25, "conv share {conv}");
        assert!(conv + fc > 0.8, "conv+fc share {}", conv + fc);
        let total: f64 = shares.iter().map(|l| l.share).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn single_sweep_is_fig4_shaped() {
        let p = caffenet_profile();
        let ratios: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
        let sweep = single_inference_sweep(&p, &ratios);
        assert_eq!(sweep.len(), 10);
        assert!((sweep[0].1 - 0.090).abs() < 1e-9);
        assert!((sweep[9].1 - 0.050).abs() < 0.003);
        assert!(sweep.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12));
    }

    #[test]
    fn saturation_curve_flattens_after_300() {
        let p = caffenet_profile();
        let batches = [1u32, 10, 50, 100, 200, 300, 600, 2000];
        let curve = parallel_saturation_curve(&p, GpuKind::K80, 50_000, &batches);
        assert!(curve.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9));
        let t300 = curve.iter().find(|(b, _)| *b == 300).unwrap().1;
        let t2000 = curve.iter().find(|(b, _)| *b == 2000).unwrap().1;
        assert!((t300 - t2000) / t300 < 0.03);
    }
}
