//! Exhaustive configuration search — the `O(2^|G|)` baseline of §4.5.3.
//!
//! Enumerates every non-empty subset of the instance pool `G` for every
//! application version, and returns the feasible candidate with the
//! highest accuracy (ties broken by lower cost, then lower time). The
//! subset space is the source of the exponential bound the paper's
//! TAR/CAR greedy algorithm avoids.

use crate::metrics::AccuracyMetric;
use crate::version::AppVersion;
use cap_cloud::{simulate, Distribution, InstanceType, ResourceConfig};
use serde::{Deserialize, Serialize};

/// Outcome of the exhaustive search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// Selected version index.
    pub version_idx: usize,
    /// Selected resource subset.
    pub config: ResourceConfig,
    /// Predicted time, seconds.
    pub time_s: f64,
    /// Predicted cost, USD.
    pub cost_usd: f64,
    /// Accuracy of the selected version under the requested metric.
    pub accuracy: f64,
    /// Total `(version, subset)` evaluations performed — grows as
    /// `|P| · (2^|G|−1)`.
    pub evaluations: u64,
}

/// Search every version × subset combination. `resources.len()` is capped
/// at 24 to keep the enumeration addressable; larger pools are a caller
/// bug (that's the point of the paper's heuristic).
pub fn exhaustive_search(
    versions: &[AppVersion],
    resources: &[InstanceType],
    w: u64,
    batch: u32,
    deadline_s: f64,
    budget_usd: f64,
    metric: AccuracyMetric,
) -> Option<ExhaustiveResult> {
    assert!(
        resources.len() <= 24,
        "exhaustive search over {} resources is intractable by design",
        resources.len()
    );
    let mut best: Option<ExhaustiveResult> = None;
    let mut evaluations = 0u64;
    let subsets = (1u64 << resources.len()) - 1;
    for (vi, v) in versions.iter().enumerate() {
        let acc = v.accuracy(metric);
        for mask in 1..=subsets {
            evaluations += 1;
            let mut config = ResourceConfig::empty();
            for (i, inst) in resources.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    config.add(inst.clone(), 1);
                }
            }
            let Some(est) = simulate(&config, &v.exec, w, batch, Distribution::Proportional) else {
                continue;
            };
            if est.time_s > deadline_s || est.cost_usd > budget_usd {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    acc > b.accuracy
                        || (acc == b.accuracy && est.cost_usd < b.cost_usd)
                        || (acc == b.accuracy
                            && est.cost_usd == b.cost_usd
                            && est.time_s < b.time_s)
                }
            };
            if better {
                best = Some(ExhaustiveResult {
                    version_idx: vi,
                    config,
                    time_s: est.time_s,
                    cost_usd: est.cost_usd,
                    accuracy: acc,
                    evaluations: 0, // patched below
                });
            }
        }
    }
    best.map(|mut b| {
        b.evaluations = evaluations;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{allocate, AllocationRequest};
    use crate::version::caffenet_version_grid;
    use cap_cloud::catalog;
    use cap_pruning::caffenet_profile;

    fn small_pool() -> Vec<InstanceType> {
        // 2 × p2.xlarge + 2 × g3.4xlarge: 4 instances, 15 subsets.
        let cat = catalog();
        vec![
            cat[0].clone(),
            cat[0].clone(),
            cat[3].clone(),
            cat[3].clone(),
        ]
    }

    #[test]
    fn finds_optimum_and_counts_exponential_evaluations() {
        let versions = caffenet_version_grid(&caffenet_profile());
        let r = exhaustive_search(
            &versions,
            &small_pool(),
            200_000,
            512,
            24.0 * 3600.0,
            1000.0,
            AccuracyMetric::Top1,
        )
        .unwrap();
        assert_eq!(r.evaluations, 60 * 15);
        let best_acc = versions.iter().map(|v| v.top1).fold(0.0, f64::max);
        assert_eq!(r.accuracy, best_acc);
    }

    #[test]
    fn infeasible_is_none() {
        let versions = caffenet_version_grid(&caffenet_profile());
        assert!(exhaustive_search(
            &versions,
            &small_pool(),
            1_000_000,
            512,
            1.0,
            0.01,
            AccuracyMetric::Top1
        )
        .is_none());
    }

    #[test]
    fn greedy_matches_exhaustive_accuracy() {
        // The paper's claim: the TAR/CAR heuristic finds a configuration
        // of the same (highest feasible) accuracy the exhaustive search
        // finds — at polynomially many evaluations.
        let versions = caffenet_version_grid(&caffenet_profile());
        let pool = small_pool();
        let deadline = 6.0 * 3600.0;
        let budget = 50.0;
        let ex = exhaustive_search(
            &versions,
            &pool,
            200_000,
            512,
            deadline,
            budget,
            AccuracyMetric::Top1,
        );
        let greedy = allocate(
            &versions,
            &pool,
            &AllocationRequest {
                w: 200_000,
                batch: 512,
                deadline_s: deadline,
                budget_usd: budget,
                metric: AccuracyMetric::Top1,
            },
        );
        let ex = ex.unwrap();
        let greedy = greedy.unwrap();
        assert_eq!(versions[greedy.version_idx].top1, ex.accuracy);
        assert!(greedy.evaluations < ex.evaluations);
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn refuses_oversized_pools() {
        let versions = caffenet_version_grid(&caffenet_profile());
        let pool: Vec<InstanceType> = (0..25).map(|_| catalog()[0].clone()).collect();
        let _ = exhaustive_search(&versions, &pool, 1000, 512, 1e9, 1e9, AccuracyMetric::Top1);
    }
}
