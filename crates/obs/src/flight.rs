//! The flight recorder: an always-on, fixed-capacity, lock-free ring
//! of the last N spans.
//!
//! A [`CollectingTracer`](crate::CollectingTracer) is a profiling tool:
//! it allocates per span and grows without bound, so it is attached
//! deliberately and briefly. A [`FlightRecorder`] is the opposite — an
//! instrument cheap enough to leave attached in release builds, like an
//! aircraft's: it remembers only the most recent [`capacity`] spans,
//! recording into preallocated fixed-size slots with **no allocation,
//! no locks, and no waiting**, and answers "what was the pipeline doing
//! just now?" after a panic, a latency spike, or on demand via
//! [`dump`].
//!
//! [`capacity`]: FlightRecorder::capacity
//! [`dump`]: FlightRecorder::dump
//!
//! # How recording stays lock-free
//!
//! Each span claims a slot by bumping a global ticket counter (one
//! relaxed `fetch_add`; ticket modulo capacity picks the slot, so the
//! ring overwrites oldest-first). The slot itself is a seqlock: a
//! sequence word that is odd while a writer is inside, plus the record
//! encoded into plain `AtomicU64` words (names truncated into inline
//! byte arrays — no heap). Writers make the sequence odd, store the
//! words, and publish with a release store of the next even value.
//! [`dump`] retries any slot whose sequence changed mid-copy, so a
//! record is either observed whole or not at all — **never torn**
//! (`crates/cnn/tests/flight_recorder.rs` hammers this with the
//! parallel engine). Two writers can only contend for the *same* slot
//! a full ring apart, in which case the later ticket spins for the
//! handful of stores the earlier writer has left.
//!
//! Because a stalled writer could in principle hold a slot odd, `dump`
//! bounds its retries and skips such a slot rather than blocking —
//! the recorder is diagnostic, best-effort by design.

use crate::span::{current_tid, SpanInfo, SpanRecord, SpanScope, Tracer};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Bytes of a span name retained inline (longer names truncate).
const NAME_BYTES: usize = 40;
/// Bytes of a kind tag retained inline (longer tags truncate).
const KIND_BYTES: usize = 16;
/// `u64` words per encoded record: 11 header words (ticket, scope,
/// index, elapsed, start, tid, 4x shape, lens) plus the inline strings
/// (see the `w_*` offsets below).
const SLOT_WORDS: usize = 11 + NAME_BYTES / 8 + KIND_BYTES / 8;

// Word layout of one encoded record.
const W_TICKET: usize = 0;
const W_SCOPE: usize = 1;
const W_INDEX: usize = 2;
const W_ELAPSED_NS: usize = 3;
const W_START_NS: usize = 4;
const W_TID: usize = 5;
const W_SHAPE: usize = 6; // ..W_SHAPE+4
const W_LENS: usize = W_SHAPE + 4; // name_len | kind_len << 32
const W_NAME: usize = W_LENS + 1; // 5 words
const W_KIND: usize = W_NAME + NAME_BYTES / 8; // 2 words

fn scope_code(s: SpanScope) -> u64 {
    match s {
        SpanScope::Forward => 0,
        SpanScope::Layer => 1,
        SpanScope::Worker => 2,
        SpanScope::GridEval => 3,
        SpanScope::Allocation => 4,
        SpanScope::Request => 5,
        SpanScope::QueueWait => 6,
        SpanScope::BatchAssembly => 7,
        SpanScope::ServeCompute => 8,
    }
}

fn scope_from_code(c: u64) -> SpanScope {
    match c {
        0 => SpanScope::Forward,
        1 => SpanScope::Layer,
        2 => SpanScope::Worker,
        3 => SpanScope::GridEval,
        5 => SpanScope::Request,
        6 => SpanScope::QueueWait,
        7 => SpanScope::BatchAssembly,
        8 => SpanScope::ServeCompute,
        _ => SpanScope::Allocation,
    }
}

/// Copy up to `max` bytes of `s` into consecutive little-endian words
/// starting at `words[at]`, returning the byte count stored.
fn store_str(words: &[AtomicU64], at: usize, s: &str, max: usize) -> u64 {
    // Truncate on a char boundary so decoding yields valid UTF-8.
    let mut len = s.len().min(max);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    let bytes = &s.as_bytes()[..len];
    for (w, chunk) in bytes.chunks(8).enumerate() {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        words[at + w].store(u64::from_le_bytes(buf), Ordering::Relaxed);
    }
    // Zero any trailing words a longer previous occupant left behind.
    for w in len.div_ceil(8)..max / 8 {
        words[at + w].store(0, Ordering::Relaxed);
    }
    len as u64
}

/// Decode `len` bytes (clamped to `max`) of little-endian words
/// starting at `words[at]`.
fn load_str(words: &[u64], at: usize, len: u64, max: usize) -> String {
    let len = (len as usize).min(max);
    let mut bytes = Vec::with_capacity(len.div_ceil(8) * 8);
    for w in 0..len.div_ceil(8) {
        bytes.extend_from_slice(&words[at + w].to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8_lossy(&bytes).into_owned()
}

/// One seqlock-guarded slot: `seq` is odd while a writer is inside.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            seq: AtomicU64::new(0),
            words: [ZERO; SLOT_WORDS],
        }
    }
}

/// A fixed-capacity lock-free ring buffer of the last N spans — the
/// always-on counterpart of [`crate::CollectingTracer`] (module docs
/// explain the seqlock protocol).
///
/// Implements [`Tracer`], so it attaches anywhere a tracer goes:
///
/// ```
/// use cap_obs::{FlightRecorder, SpanInfo, SpanScope, Tracer};
/// use std::time::Duration;
///
/// let fr = FlightRecorder::new(4);
/// for i in 0..6u64 {
///     let mut info = SpanInfo::new(SpanScope::Layer, "conv1");
///     info.index = i as usize;
///     fr.span_exit(&info, Duration::from_micros(i));
/// }
/// let spans = fr.dump();
/// // Only the last 4 of the 6 spans survive, oldest first.
/// assert_eq!(spans.len(), 4);
/// assert_eq!(spans[0].index, 2);
/// assert_eq!(spans[3].index, 5);
/// ```
pub struct FlightRecorder {
    epoch: Instant,
    next: AtomicU64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.next.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` spans (min 1). All slot
    /// memory is allocated here, once; recording never allocates again.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            next: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Ring capacity: how many most-recent spans [`dump`](Self::dump)
    /// can return.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans currently retained: `min(total recorded, capacity)`.
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.next.load(Ordering::Relaxed) == 0
    }

    /// Record one span. Lock-free and allocation-free: one ticket
    /// `fetch_add`, then plain atomic stores into the claimed slot.
    pub fn record(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];

        // Acquire the slot seqlock: flip even -> odd. Contention here
        // means another writer lapped the ring onto this very slot;
        // spin out its handful of stores.
        let mut seq = slot.seq.load(Ordering::Acquire);
        loop {
            if seq & 1 == 0 {
                match slot.seq.compare_exchange_weak(
                    seq,
                    seq + 1,
                    Ordering::Acquire,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(cur) => seq = cur,
                }
            } else {
                std::hint::spin_loop();
                seq = slot.seq.load(Ordering::Acquire);
            }
        }

        let start = self.epoch.elapsed().saturating_sub(elapsed);
        let w = &slot.words;
        w[W_TICKET].store(ticket, Ordering::Relaxed);
        w[W_SCOPE].store(scope_code(info.scope), Ordering::Relaxed);
        w[W_INDEX].store(info.index as u64, Ordering::Relaxed);
        w[W_ELAPSED_NS].store(elapsed.as_nanos() as u64, Ordering::Relaxed);
        w[W_START_NS].store(start.as_nanos() as u64, Ordering::Relaxed);
        w[W_TID].store(current_tid(), Ordering::Relaxed);
        for (i, &d) in info.shape.iter().enumerate() {
            w[W_SHAPE + i].store(d as u64, Ordering::Relaxed);
        }
        let name_len = store_str(w, W_NAME, info.name, NAME_BYTES);
        let kind_len = store_str(w, W_KIND, info.kind, KIND_BYTES);
        w[W_LENS].store(name_len | (kind_len << 32), Ordering::Relaxed);

        // Publish: even sequence again, release-ordering the stores.
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Copy out the retained spans, oldest first (chronological by
    /// claim ticket), allocating only here — never on the record path.
    ///
    /// Safe to call concurrently with recording: each slot is re-read
    /// until a consistent copy is observed (bounded retries; a slot
    /// overwritten faster than it can be copied is skipped, keeping
    /// the dump non-blocking).
    pub fn dump(&self) -> Vec<SpanRecord> {
        let cap = self.slots.len() as u64;
        let end = self.next.load(Ordering::Acquire);
        let begin = end.saturating_sub(cap);
        let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity((end - begin) as usize);
        for t in begin..end {
            let slot = &self.slots[(t % cap) as usize];
            let mut copied = [0u64; SLOT_WORDS];
            let mut attempts = 0;
            let consistent = loop {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 & 1 == 0 {
                    for (dst, src) in copied.iter_mut().zip(slot.words.iter()) {
                        *dst = src.load(Ordering::Relaxed);
                    }
                    // Order the word loads before the re-check so a
                    // concurrent writer is always detected.
                    fence(Ordering::Acquire);
                    if slot.seq.load(Ordering::Relaxed) == s1 {
                        break true;
                    }
                }
                attempts += 1;
                if attempts > 1000 {
                    break false; // writer stalled mid-slot: skip it
                }
                std::hint::spin_loop();
            };
            if !consistent {
                continue;
            }
            let name_len = copied[W_LENS] & 0xffff_ffff;
            let kind_len = copied[W_LENS] >> 32;
            out.push((
                copied[W_TICKET],
                SpanRecord {
                    scope: scope_from_code(copied[W_SCOPE]),
                    name: load_str(&copied, W_NAME, name_len, NAME_BYTES),
                    kind: load_str(&copied, W_KIND, kind_len, KIND_BYTES),
                    shape: [
                        copied[W_SHAPE] as usize,
                        copied[W_SHAPE + 1] as usize,
                        copied[W_SHAPE + 2] as usize,
                        copied[W_SHAPE + 3] as usize,
                    ],
                    index: copied[W_INDEX] as usize,
                    elapsed: Duration::from_nanos(copied[W_ELAPSED_NS]),
                    start: Duration::from_nanos(copied[W_START_NS]),
                    tid: copied[W_TID],
                },
            ));
        }
        // Slots are visited in ticket order, but a slot may hold a
        // record newer than its visiting ticket (ring overwrite while
        // dumping); the stored ticket restores true chronology.
        out.sort_by_key(|(ticket, _)| *ticket);
        out.dedup_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Render the retained spans as one-line-per-span plain text —
    /// what the `repro` binary's panic hook prints.
    pub fn dump_text(&self) -> String {
        use std::fmt::Write;
        let spans = self.dump();
        let mut out = String::new();
        writeln!(
            out,
            "# flight recorder: last {} span(s) (capacity {})",
            spans.len(),
            self.capacity()
        )
        .unwrap();
        for s in &spans {
            writeln!(
                out,
                "{:>12.3}ms +{:>10.3}ms tid={:<3} {:<10} {}{}",
                s.start.as_secs_f64() * 1000.0,
                s.elapsed.as_secs_f64() * 1000.0,
                s.tid,
                s.scope.tag(),
                s.name,
                if s.kind.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", s.kind)
                },
            )
            .unwrap();
        }
        out
    }
}

impl Tracer for FlightRecorder {
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        self.record(info, elapsed);
    }
}

/// The process-wide flight recorder (capacity [`GLOBAL_CAPACITY`]),
/// created on first use. Binaries install it behind their panic hook
/// (`repro` does) and attach it to long-running work with a
/// [`crate::TeeTracer`], so the last moments before a crash are always
/// recoverable.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(GLOBAL_CAPACITY))
}

/// Capacity of the [`global`] flight recorder.
pub const GLOBAL_CAPACITY: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str, index: usize) -> SpanInfo<'_> {
        SpanInfo {
            scope: SpanScope::Layer,
            name,
            kind: "conv",
            shape: [1, 2, 3, 4],
            index,
        }
    }

    #[test]
    fn keeps_exactly_the_last_n_in_order() {
        let fr = FlightRecorder::new(8);
        assert!(fr.is_empty());
        for i in 0..20 {
            fr.record(&info("layer", i), Duration::from_micros(i as u64));
        }
        assert_eq!(fr.len(), 8);
        let spans = fr.dump();
        assert_eq!(spans.len(), 8);
        let indices: Vec<usize> = spans.iter().map(|s| s.index).collect();
        assert_eq!(indices, (12..20).collect::<Vec<_>>());
        assert_eq!(spans[0].shape, [1, 2, 3, 4]);
        assert_eq!(spans[0].kind, "conv");
    }

    #[test]
    fn fewer_than_capacity_returns_all() {
        let fr = FlightRecorder::new(16);
        fr.record(&info("a", 0), Duration::from_micros(1));
        fr.record(&info("b", 1), Duration::from_micros(2));
        let spans = fr.dump();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[1].elapsed, Duration::from_micros(2));
    }

    #[test]
    fn long_names_truncate_on_char_boundary() {
        let fr = FlightRecorder::new(2);
        let long = "x".repeat(NAME_BYTES + 20);
        fr.record(&info(&long, 0), Duration::from_micros(1));
        // Multi-byte char straddling the cut: é is 2 bytes.
        let multi = format!("{}é", "y".repeat(NAME_BYTES - 1));
        fr.record(&info(&multi, 1), Duration::from_micros(1));
        let spans = fr.dump();
        assert_eq!(spans[0].name.len(), NAME_BYTES);
        assert!(spans[0].name.chars().all(|c| c == 'x'));
        assert_eq!(spans[1].name, "y".repeat(NAME_BYTES - 1));
    }

    #[test]
    fn shorter_reuse_zeroes_stale_name_bytes() {
        let fr = FlightRecorder::new(1);
        fr.record(&info("a_rather_long_layer_name", 0), Duration::ZERO);
        fr.record(&info("b", 1), Duration::ZERO);
        let spans = fr.dump();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "b");
    }

    #[test]
    fn concurrent_recording_never_tears() {
        let fr = FlightRecorder::new(32);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let fr = &fr;
                s.spawn(move || {
                    // Per-thread distinctive name/index pairing; a torn
                    // record would mix them.
                    let name = format!("thread-{t}");
                    for i in 0..500 {
                        let mut inf = SpanInfo::new(SpanScope::Worker, &name);
                        inf.index = (t * 1000 + i) as usize;
                        fr.record(&inf, Duration::from_nanos(t * 1000 + i));
                    }
                });
            }
        });
        let spans = fr.dump();
        assert_eq!(spans.len(), 32);
        for s in &spans {
            let t: u64 = s.name.strip_prefix("thread-").unwrap().parse().unwrap();
            assert_eq!(
                s.index as u64 / 1000,
                t,
                "index {} does not belong to {}",
                s.index,
                s.name
            );
            assert_eq!(s.elapsed, Duration::from_nanos(s.index as u64));
        }
    }

    #[test]
    fn global_is_a_singleton() {
        assert_eq!(global().capacity(), GLOBAL_CAPACITY);
        assert!(std::ptr::eq(global(), global()));
    }

    #[test]
    fn dump_text_lists_spans() {
        let fr = FlightRecorder::new(4);
        fr.record(&info("conv1", 0), Duration::from_micros(250));
        let text = fr.dump_text();
        assert!(text.contains("conv1"), "{text}");
        assert!(text.contains("layer"), "{text}");
        assert!(text.contains("capacity 4"), "{text}");
    }
}
