//! Span tracing: the [`Tracer`] trait and its two standard
//! implementations.
//!
//! A *span* is one timed region of the pipeline — a layer's forward
//! pass, a parallel worker's chunk loop, a configuration-grid sweep.
//! Instrumented code is generic over `T: Tracer`; callers that want
//! visibility pass a [`CollectingTracer`], everyone else gets
//! [`NoopTracer`] and pays nothing (see the crate docs for the
//! zero-overhead contract).

use std::sync::Mutex;
use std::time::Duration;

/// Which part of the pipeline a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanScope {
    /// One whole forward pass through a network (all layers).
    Forward,
    /// One DAG node (layer) inside a forward pass.
    Layer,
    /// One data-parallel worker's chunk-range loop.
    Worker,
    /// One versions × configurations × batches grid evaluation.
    GridEval,
    /// One run of Algorithm 1 (greedy TAR/CAR allocation).
    Allocation,
}

impl SpanScope {
    /// Stable lower-case tag for exporters (`"layer"`, `"worker"`, ...).
    pub fn tag(self) -> &'static str {
        match self {
            SpanScope::Forward => "forward",
            SpanScope::Layer => "layer",
            SpanScope::Worker => "worker",
            SpanScope::GridEval => "grid_eval",
            SpanScope::Allocation => "allocation",
        }
    }
}

/// Borrowed description of a span, passed to [`Tracer`] hooks.
///
/// Everything is borrowed or `Copy` so that building one performs no
/// allocation; a tracer that needs to retain the data (like
/// [`CollectingTracer`]) copies what it wants on exit.
#[derive(Debug, Clone, Copy)]
pub struct SpanInfo<'a> {
    /// Pipeline region this span covers.
    pub scope: SpanScope,
    /// Span name: the layer name, `"worker"`, `"evaluate_grid"`, ...
    pub name: &'a str,
    /// Secondary tag: the layer kind (`"conv"`, `"fc"`, ...) for layer
    /// spans, empty otherwise.
    pub kind: &'a str,
    /// NCHW shape of the span's output (layer/forward spans), or a
    /// scope-specific size vector (e.g. `[versions, configs, batches, 0]`
    /// for grid spans). All zeros when not applicable.
    pub shape: [usize; 4],
    /// Execution index: node index for layers, worker index for workers,
    /// 0 otherwise.
    pub index: usize,
}

impl<'a> SpanInfo<'a> {
    /// A span with only a scope and name; shape and index zeroed.
    pub fn new(scope: SpanScope, name: &'a str) -> Self {
        Self {
            scope,
            name,
            kind: "",
            shape: [0; 4],
            index: 0,
        }
    }
}

/// Span enter/exit hooks.
///
/// Implementations must be cheap to call and thread-safe: layer spans
/// fire on every forward pass, and `ParallelEngine` workers report
/// concurrently. The trait is dyn-compatible, but instrumented code
/// takes `T: Tracer` generically so that the no-op implementation
/// monomorphizes away entirely.
pub trait Tracer: Send + Sync {
    /// Whether this tracer wants spans at all. Hot paths consult this
    /// before reading the clock; returning `false` (statically, like
    /// [`NoopTracer`]) removes the instrumentation at compile time.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A span is about to start. Default: do nothing.
    #[inline]
    fn span_enter(&self, _info: &SpanInfo<'_>) {}

    /// A span finished after `elapsed`.
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration);
}

/// Blanket impl so instrumented generics accept `&T` as well as `T`.
impl<T: Tracer + ?Sized> Tracer for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn span_enter(&self, info: &SpanInfo<'_>) {
        (**self).span_enter(info)
    }

    #[inline]
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        (**self).span_exit(info, elapsed)
    }
}

/// The disabled tracer: every hook is an empty inline function and
/// [`Tracer::enabled`] is statically `false`, so instrumented code
/// monomorphized over `NoopTracer` contains no tracing residue — no
/// clock reads, no branches that survive constant folding, and no
/// allocation (verified by `cap-cnn`'s allocator-counting test).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_exit(&self, _info: &SpanInfo<'_>, _elapsed: Duration) {}
}

/// An owned copy of one finished span, as retained by
/// [`CollectingTracer`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Pipeline region.
    pub scope: SpanScope,
    /// Span name (layer name, `"worker"`, ...).
    pub name: String,
    /// Layer kind tag, empty for non-layer spans.
    pub kind: String,
    /// Output shape / size vector (see [`SpanInfo::shape`]).
    pub shape: [usize; 4],
    /// Execution index (node or worker index).
    pub index: usize,
    /// Wall-clock time spent inside the span.
    pub elapsed: Duration,
}

/// A tracer that records every finished span for later aggregation
/// (feed the records to [`crate::ProfileReport::from_spans`]).
///
/// Recording allocates (the span's name/kind are copied into owned
/// strings and pushed onto a mutex-guarded `Vec`) — that cost is the
/// tracer's, by design: the *instrumented code* stays allocation-free
/// and the collection overhead appears only when profiling is on.
///
/// ```
/// use cap_obs::{CollectingTracer, SpanInfo, SpanScope, Tracer};
/// use std::time::Duration;
///
/// let tracer = CollectingTracer::new();
/// tracer.span_exit(
///     &SpanInfo::new(SpanScope::Layer, "conv1"),
///     Duration::from_micros(250),
/// );
/// let spans = tracer.take_spans();
/// assert_eq!(spans.len(), 1);
/// assert_eq!(spans[0].name, "conv1");
/// ```
#[derive(Debug, Default)]
pub struct CollectingTracer {
    spans: Mutex<Vec<SpanRecord>>,
}

impl CollectingTracer {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span lock poisoned").len()
    }

    /// True if no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return all recorded spans (collection order).
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock().expect("span lock poisoned"))
    }

    /// Clone of all recorded spans, leaving them in place.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span lock poisoned").clone()
    }
}

impl Tracer for CollectingTracer {
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        let record = SpanRecord {
            scope: info.scope,
            name: info.name.to_string(),
            kind: info.kind.to_string(),
            shape: info.shape,
            index: info.index,
            elapsed,
        };
        self.spans.lock().expect("span lock poisoned").push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopTracer.enabled());
        // And via the blanket &T impl, as generic call sites see it.
        fn enabled_behind_ref<T: Tracer + ?Sized>(tracer: &T) -> bool {
            Tracer::enabled(&tracer)
        }
        assert!(!enabled_behind_ref(&NoopTracer));
    }

    #[test]
    fn collector_records_in_order() {
        let t = CollectingTracer::new();
        assert!(t.is_empty());
        for (i, name) in ["conv1", "relu1", "pool1"].iter().enumerate() {
            let mut info = SpanInfo::new(SpanScope::Layer, name);
            info.index = i;
            t.span_exit(&info, Duration::from_micros(i as u64 + 1));
        }
        assert_eq!(t.len(), 3);
        let spans = t.take_spans();
        assert!(t.is_empty());
        assert_eq!(spans[0].name, "conv1");
        assert_eq!(spans[2].index, 2);
        assert_eq!(spans[1].elapsed, Duration::from_micros(2));
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let t = CollectingTracer::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let t = &t;
                s.spawn(move || {
                    let mut info = SpanInfo::new(SpanScope::Worker, "worker");
                    info.index = w;
                    t.span_exit(&info, Duration::from_micros(10 * (w as u64 + 1)));
                });
            }
        });
        let mut spans = t.take_spans();
        spans.sort_by_key(|s| s.index);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[3].elapsed, Duration::from_micros(40));
    }

    #[test]
    fn scope_tags_are_stable() {
        assert_eq!(SpanScope::Layer.tag(), "layer");
        assert_eq!(SpanScope::GridEval.tag(), "grid_eval");
    }
}
