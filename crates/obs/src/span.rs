//! Span tracing: the [`Tracer`] trait and its two standard
//! implementations.
//!
//! A *span* is one timed region of the pipeline — a layer's forward
//! pass, a parallel worker's chunk loop, a configuration-grid sweep.
//! Instrumented code is generic over `T: Tracer`; callers that want
//! visibility pass a [`CollectingTracer`], everyone else gets
//! [`NoopTracer`] and pays nothing (see the crate docs for the
//! zero-overhead contract).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Next process-local thread id to hand out (ids start at 1 so the
/// thread-local `0` can mean "not yet assigned").
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// A small, stable, process-local id for the calling thread.
///
/// Ids are assigned on first use, in first-call order, starting at 1 —
/// dense enough to use as Chrome-trace track ids, unlike
/// [`std::thread::ThreadId`] which has no stable integer form. The
/// lookup is one thread-local read (no allocation, no lock), so tracers
/// can stamp every span with it.
#[inline]
pub fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

/// Which part of the pipeline a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanScope {
    /// One whole forward pass through a network (all layers).
    Forward,
    /// One DAG node (layer) inside a forward pass.
    Layer,
    /// One data-parallel worker's chunk-range loop.
    Worker,
    /// One versions × configurations × batches grid evaluation.
    GridEval,
    /// One run of Algorithm 1 (greedy TAR/CAR allocation).
    Allocation,
    /// One served request's whole lifecycle (enqueue → completion) on
    /// its tenant's track; virtual-clock timestamped by the router.
    Request,
    /// The queue-wait portion of a served request (enqueue → dispatch),
    /// nested inside its [`SpanScope::Request`] span.
    QueueWait,
    /// One batch's assembly window (head-of-line arrival → dispatch) on
    /// the tenant's track.
    BatchAssembly,
    /// One dispatched batch's virtual service time on a router worker
    /// slot (dispatch → completion).
    ServeCompute,
}

impl SpanScope {
    /// Stable lower-case tag for exporters (`"layer"`, `"worker"`, ...).
    pub fn tag(self) -> &'static str {
        match self {
            SpanScope::Forward => "forward",
            SpanScope::Layer => "layer",
            SpanScope::Worker => "worker",
            SpanScope::GridEval => "grid_eval",
            SpanScope::Allocation => "allocation",
            SpanScope::Request => "request",
            SpanScope::QueueWait => "queue_wait",
            SpanScope::BatchAssembly => "batch_assembly",
            SpanScope::ServeCompute => "serve_compute",
        }
    }
}

/// Borrowed description of a span, passed to [`Tracer`] hooks.
///
/// Everything is borrowed or `Copy` so that building one performs no
/// allocation; a tracer that needs to retain the data (like
/// [`CollectingTracer`]) copies what it wants on exit.
#[derive(Debug, Clone, Copy)]
pub struct SpanInfo<'a> {
    /// Pipeline region this span covers.
    pub scope: SpanScope,
    /// Span name: the layer name, `"worker"`, `"evaluate_grid"`, ...
    pub name: &'a str,
    /// Secondary tag: the layer kind (`"conv"`, `"fc"`, ...) for layer
    /// spans, empty otherwise.
    pub kind: &'a str,
    /// NCHW shape of the span's output (layer/forward spans), or a
    /// scope-specific size vector (e.g. `[versions, configs, batches, 0]`
    /// for grid spans). All zeros when not applicable.
    pub shape: [usize; 4],
    /// Execution index: node index for layers, worker index for workers,
    /// 0 otherwise.
    pub index: usize,
}

impl<'a> SpanInfo<'a> {
    /// A span with only a scope and name; shape and index zeroed.
    pub fn new(scope: SpanScope, name: &'a str) -> Self {
        Self {
            scope,
            name,
            kind: "",
            shape: [0; 4],
            index: 0,
        }
    }
}

/// Span enter/exit hooks.
///
/// Implementations must be cheap to call and thread-safe: layer spans
/// fire on every forward pass, and `ParallelEngine` workers report
/// concurrently. The trait is dyn-compatible, but instrumented code
/// takes `T: Tracer` generically so that the no-op implementation
/// monomorphizes away entirely.
pub trait Tracer: Send + Sync {
    /// Whether this tracer wants spans at all. Hot paths consult this
    /// before reading the clock; returning `false` (statically, like
    /// [`NoopTracer`]) removes the instrumentation at compile time.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A span is about to start. Default: do nothing.
    #[inline]
    fn span_enter(&self, _info: &SpanInfo<'_>) {}

    /// A span finished after `elapsed`.
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration);

    /// A span with an *externally supplied* timeline position: `start`
    /// is an offset on the caller's own epoch and `track` is the
    /// caller's track id (in place of the recording thread's
    /// [`current_tid`]). This is how the `cap-serve` router reports
    /// virtual-clock request-lifecycle spans — the router's clock, not
    /// the wall clock, owns both coordinates, so same seed ⇒ identical
    /// spans.
    ///
    /// The default forwards to [`Tracer::span_exit`], discarding the
    /// placement — correct for aggregating tracers that only care about
    /// durations; timeline-retaining tracers ([`CollectingTracer`])
    /// override it to keep `start`/`track` verbatim.
    #[inline]
    fn span_at(&self, info: &SpanInfo<'_>, start: Duration, elapsed: Duration, track: u64) {
        let _ = (start, track);
        self.span_exit(info, elapsed);
    }
}

/// Blanket impl so instrumented generics accept `&T` as well as `T`.
impl<T: Tracer + ?Sized> Tracer for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn span_enter(&self, info: &SpanInfo<'_>) {
        (**self).span_enter(info)
    }

    #[inline]
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        (**self).span_exit(info, elapsed)
    }

    #[inline]
    fn span_at(&self, info: &SpanInfo<'_>, start: Duration, elapsed: Duration, track: u64) {
        (**self).span_at(info, start, elapsed, track)
    }
}

/// The disabled tracer: every hook is an empty inline function and
/// [`Tracer::enabled`] is statically `false`, so instrumented code
/// monomorphized over `NoopTracer` contains no tracing residue — no
/// clock reads, no branches that survive constant folding, and no
/// allocation (verified by `cap-cnn`'s allocator-counting test).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_exit(&self, _info: &SpanInfo<'_>, _elapsed: Duration) {}
}

/// An owned copy of one finished span, as retained by
/// [`CollectingTracer`] and [`crate::FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Pipeline region.
    pub scope: SpanScope,
    /// Span name (layer name, `"worker"`, ...).
    pub name: String,
    /// Layer kind tag, empty for non-layer spans.
    pub kind: String,
    /// Output shape / size vector (see [`SpanInfo::shape`]).
    pub shape: [usize; 4],
    /// Execution index (node or worker index).
    pub index: usize,
    /// Wall-clock time spent inside the span.
    pub elapsed: Duration,
    /// Wall-clock start of the span, as an offset from the recording
    /// tracer's epoch (its construction instant). Spans recorded by the
    /// same tracer therefore share a timeline — what
    /// [`crate::trace_export::chrome_trace_json`] lays out as `ts`.
    ///
    /// Derived on exit as `epoch.elapsed() - elapsed`, since
    /// instrumented code only reports finished spans.
    pub start: Duration,
    /// Process-local id of the thread the span ran on (see
    /// [`current_tid`]): the Chrome-trace track id. Spans from
    /// different [`ParallelEngine`](https://docs.rs/cap-cnn) workers
    /// carry different `tid`s because each worker is its own thread.
    pub tid: u64,
}

/// A tracer that records every finished span for later aggregation
/// (feed the records to [`crate::ProfileReport::from_spans`]).
///
/// Recording allocates (the span's name/kind are copied into owned
/// strings and pushed onto a mutex-guarded `Vec`) — that cost is the
/// tracer's, by design: the *instrumented code* stays allocation-free
/// and the collection overhead appears only when profiling is on.
///
/// ```
/// use cap_obs::{CollectingTracer, SpanInfo, SpanScope, Tracer};
/// use std::time::Duration;
///
/// let tracer = CollectingTracer::new();
/// tracer.span_exit(
///     &SpanInfo::new(SpanScope::Layer, "conv1"),
///     Duration::from_micros(250),
/// );
/// let spans = tracer.take_spans();
/// assert_eq!(spans.len(), 1);
/// assert_eq!(spans[0].name, "conv1");
/// assert!(spans[0].tid > 0); // stamped with the recording thread's id
/// ```
#[derive(Debug)]
pub struct CollectingTracer {
    /// Construction instant: the zero point of every retained span's
    /// [`SpanRecord::start`] offset.
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for CollectingTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingTracer {
    /// An empty collector; its construction instant becomes the epoch
    /// that retained spans' [`SpanRecord::start`] offsets count from.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span lock poisoned").len()
    }

    /// True if no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return all recorded spans (collection order).
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock().expect("span lock poisoned"))
    }

    /// Clone of all recorded spans, leaving them in place.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span lock poisoned").clone()
    }
}

impl Tracer for CollectingTracer {
    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        // The span just finished, so it started `elapsed` ago;
        // saturating guards spans reported before the tracer's epoch
        // (possible only if a tracer is created mid-span).
        let start = self.epoch.elapsed().saturating_sub(elapsed);
        self.span_at(info, start, elapsed, current_tid());
    }

    /// Retains the caller's `start` offset and `track` id verbatim —
    /// the hook virtual-clock instrumentation (the `cap-serve` router)
    /// relies on for reproducible timelines.
    fn span_at(&self, info: &SpanInfo<'_>, start: Duration, elapsed: Duration, track: u64) {
        let record = SpanRecord {
            scope: info.scope,
            name: info.name.to_string(),
            kind: info.kind.to_string(),
            shape: info.shape,
            index: info.index,
            elapsed,
            start,
            tid: track,
        };
        self.spans.lock().expect("span lock poisoned").push(record);
    }
}

/// A tracer that fans every span out to two underlying tracers — e.g.
/// a [`CollectingTracer`] for a profile report *and* the process-wide
/// [`crate::FlightRecorder`], in one pass.
///
/// Enabled iff either side is; each hook is forwarded only to the sides
/// that report themselves enabled, so pairing with a disabled side adds
/// one inlined boolean check and nothing else.
///
/// ```
/// use cap_obs::{CollectingTracer, NoopTracer, SpanInfo, SpanScope, TeeTracer, Tracer};
/// use std::time::Duration;
///
/// let collector = CollectingTracer::new();
/// let tee = TeeTracer::new(&collector, NoopTracer);
/// assert!(tee.enabled());
/// tee.span_exit(&SpanInfo::new(SpanScope::Layer, "conv1"), Duration::from_micros(5));
/// assert_eq!(collector.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TeeTracer<A, B>(A, B);

impl<A: Tracer, B: Tracer> TeeTracer<A, B> {
    /// Fan spans out to `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        Self(a, b)
    }
}

impl<A: Tracer, B: Tracer> Tracer for TeeTracer<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    #[inline]
    fn span_enter(&self, info: &SpanInfo<'_>) {
        if self.0.enabled() {
            self.0.span_enter(info);
        }
        if self.1.enabled() {
            self.1.span_enter(info);
        }
    }

    fn span_exit(&self, info: &SpanInfo<'_>, elapsed: Duration) {
        if self.0.enabled() {
            self.0.span_exit(info, elapsed);
        }
        if self.1.enabled() {
            self.1.span_exit(info, elapsed);
        }
    }

    fn span_at(&self, info: &SpanInfo<'_>, start: Duration, elapsed: Duration, track: u64) {
        if self.0.enabled() {
            self.0.span_at(info, start, elapsed, track);
        }
        if self.1.enabled() {
            self.1.span_at(info, start, elapsed, track);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopTracer.enabled());
        // And via the blanket &T impl, as generic call sites see it.
        fn enabled_behind_ref<T: Tracer + ?Sized>(tracer: &T) -> bool {
            Tracer::enabled(&tracer)
        }
        assert!(!enabled_behind_ref(&NoopTracer));
    }

    #[test]
    fn collector_records_in_order() {
        let t = CollectingTracer::new();
        assert!(t.is_empty());
        for (i, name) in ["conv1", "relu1", "pool1"].iter().enumerate() {
            let mut info = SpanInfo::new(SpanScope::Layer, name);
            info.index = i;
            t.span_exit(&info, Duration::from_micros(i as u64 + 1));
        }
        assert_eq!(t.len(), 3);
        let spans = t.take_spans();
        assert!(t.is_empty());
        assert_eq!(spans[0].name, "conv1");
        assert_eq!(spans[2].index, 2);
        assert_eq!(spans[1].elapsed, Duration::from_micros(2));
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let t = CollectingTracer::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let t = &t;
                s.spawn(move || {
                    let mut info = SpanInfo::new(SpanScope::Worker, "worker");
                    info.index = w;
                    t.span_exit(&info, Duration::from_micros(10 * (w as u64 + 1)));
                });
            }
        });
        let mut spans = t.take_spans();
        spans.sort_by_key(|s| s.index);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[3].elapsed, Duration::from_micros(40));
    }

    #[test]
    fn scope_tags_are_stable() {
        assert_eq!(SpanScope::Layer.tag(), "layer");
        assert_eq!(SpanScope::GridEval.tag(), "grid_eval");
    }

    #[test]
    fn collector_stamps_start_offsets_and_tid() {
        let t = CollectingTracer::new();
        let info = SpanInfo::new(SpanScope::Layer, "conv1");
        t.span_exit(&info, Duration::from_micros(10));
        std::thread::sleep(Duration::from_millis(2));
        t.span_exit(&info, Duration::from_micros(10));
        let spans = t.take_spans();
        assert_eq!(spans[0].tid, current_tid());
        assert_eq!(spans[1].tid, spans[0].tid, "same thread, same tid");
        assert!(
            spans[1].start > spans[0].start,
            "later span starts later on the tracer's timeline"
        );
        // An elapsed longer than the tracer's whole lifetime saturates
        // to a zero start instead of wrapping.
        t.span_exit(&info, Duration::from_secs(3600));
        assert_eq!(t.take_spans()[0].start, Duration::ZERO);
    }

    #[test]
    fn tids_are_distinct_per_thread_and_stable_within_one() {
        let here = current_tid();
        assert_eq!(here, current_tid());
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, other);
        assert!(here > 0 && other > 0);
    }

    #[test]
    fn tee_fans_out_to_both_enabled_sides() {
        let a = CollectingTracer::new();
        let b = CollectingTracer::new();
        let tee = TeeTracer::new(&a, &b);
        assert!(tee.enabled());
        tee.span_exit(
            &SpanInfo::new(SpanScope::Worker, "worker"),
            Duration::from_micros(7),
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);

        // A disabled side is skipped but does not disable the pair.
        let tee = TeeTracer::new(&a, NoopTracer);
        assert!(tee.enabled());
        tee.span_exit(
            &SpanInfo::new(SpanScope::Worker, "worker"),
            Duration::from_micros(7),
        );
        assert_eq!(a.len(), 2);

        // Both sides disabled: the tee is disabled too.
        assert!(!TeeTracer::new(NoopTracer, NoopTracer).enabled());
    }
}
