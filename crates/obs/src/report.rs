//! Per-layer profile aggregation: turn a pile of [`SpanRecord`]s into
//! the table a human (or a latency model like PROFET's) wants — layer,
//! kind, calls, total/mean time, share of the pass — plus text and JSON
//! exporters and a side-by-side comparison for pruning levels.

use crate::span::{SpanRecord, SpanScope};
use std::collections::HashMap;
use std::time::Duration;

/// Aggregated time for one layer across all collected passes.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Layer name.
    pub name: String,
    /// Layer kind tag (`conv`, `fc`, ...).
    pub kind: String,
    /// Output NCHW shape observed for this layer.
    pub shape: [usize; 4],
    /// Number of spans (forward passes) aggregated.
    pub calls: u64,
    /// Total time across all calls.
    pub total: Duration,
    /// Whether this row is a fused step (its kind tag carries a
    /// `+relu` suffix — the executor absorbed the following ReLU into
    /// this layer's kernel epilogue).
    pub fused: bool,
    /// Whether this row executed on the quantized int8 path: the
    /// process precision resolved to int8 at report-build time *and*
    /// the row is a weighted (conv/fc) layer — pooling, softmax and the
    /// other shape/activation layers stay f32 even under int8.
    pub quantized: bool,
}

impl LayerRow {
    /// Mean time per call.
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / self.calls as u32
        }
    }
}

/// Critical-path context attached to a [`ProfileReport`]: how close a
/// measured batch-1 latency came to the network's theoretical floor.
///
/// Produced by `cap_cnn::CriticalPathReport` (the longest-path analysis
/// lives there, next to the DAG); this is only the rendering-side
/// record, so `cap-obs` stays dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSummary {
    /// Theoretical batch-1 latency floor: the longest dependency chain
    /// through the network at measured per-node times.
    pub critical_path: Duration,
    /// Sequential batch-1 latency: the sum of all per-node times.
    pub total_work: Duration,
    /// Measured latency of the schedule being reported.
    pub achieved: Duration,
    /// Worker count the schedule ran with (0 = sequential).
    pub workers: u64,
}

impl DagSummary {
    /// Achieved parallel efficiency against the floor:
    /// `critical_path / achieved` (1.0 = the scheduler hit the floor).
    pub fn efficiency(&self) -> f64 {
        let a = self.achieved.as_secs_f64();
        if a <= 0.0 {
            0.0
        } else {
            self.critical_path.as_secs_f64() / a
        }
    }
}

/// A per-layer time table built from tracer spans, comparable across
/// pruning levels (same layer names, different times).
///
/// ```
/// use cap_obs::{ProfileReport, SpanInfo, SpanScope, Tracer, CollectingTracer};
/// use std::time::Duration;
///
/// let t = CollectingTracer::new();
/// let mut conv = SpanInfo::new(SpanScope::Layer, "conv1");
/// conv.kind = "conv";
/// t.span_exit(&conv, Duration::from_micros(300));
/// t.span_exit(&SpanInfo::new(SpanScope::Layer, "relu1"), Duration::from_micros(100));
///
/// let report = ProfileReport::from_spans("demo", &t.take_spans());
/// assert_eq!(report.layers().len(), 2);
/// assert_eq!(report.layers()[0].name, "conv1");
/// assert!((report.share("conv1").unwrap() - 0.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileReport {
    label: String,
    layers: Vec<LayerRow>,
    /// Microkernel backend name captured from the `kernel_path` metrics
    /// gauge at build time — which SIMD path produced these numbers.
    kernel: &'static str,
    /// Numeric precision name captured from the `precision_path`
    /// metrics gauge at build time (`"unset"` when no weighted layer
    /// has resolved the precision knob yet).
    precision: &'static str,
    /// Optional critical-path context (floor vs. achieved latency).
    dag: Option<DagSummary>,
}

impl ProfileReport {
    /// Aggregate [`SpanScope::Layer`] spans by layer name, preserving
    /// first-seen (execution) order. Non-layer spans are ignored.
    ///
    /// The report also captures the current `kernel_path` gauge, so the
    /// rendered table and JSON record which microkernel backend
    /// (`scalar` / `avx2` / …) the profiled run dispatched to.
    pub fn from_spans(label: impl Into<String>, spans: &[SpanRecord]) -> Self {
        let precision = crate::metrics::precision_path_name(crate::metrics().precision_path.get());
        let int8 = precision == "int8";
        let mut index: HashMap<&str, usize> = HashMap::new();
        let mut layers: Vec<LayerRow> = Vec::new();
        for s in spans.iter().filter(|s| s.scope == SpanScope::Layer) {
            match index.get(s.name.as_str()) {
                Some(&i) => {
                    layers[i].calls += 1;
                    layers[i].total += s.elapsed;
                }
                None => {
                    index.insert(s.name.as_str(), layers.len());
                    layers.push(LayerRow {
                        name: s.name.clone(),
                        kind: s.kind.clone(),
                        shape: s.shape,
                        calls: 1,
                        total: s.elapsed,
                        fused: s.kind.contains("+relu"),
                        quantized: int8 && (s.kind.starts_with("conv") || s.kind.starts_with("fc")),
                    });
                }
            }
        }
        Self {
            label: label.into(),
            layers,
            kernel: crate::metrics::kernel_path_name(crate::metrics().kernel_path.get()),
            precision,
            dag: None,
        }
    }

    /// Attach critical-path context; the text table gains a
    /// `# critical path:` line and the JSON a `"dag"` object.
    ///
    /// ```
    /// use cap_obs::{DagSummary, ProfileReport};
    /// use std::time::Duration;
    ///
    /// let r = ProfileReport::from_spans("m", &[]).with_dag_summary(DagSummary {
    ///     critical_path: Duration::from_micros(800),
    ///     total_work: Duration::from_micros(1400),
    ///     achieved: Duration::from_micros(1000),
    ///     workers: 4,
    /// });
    /// assert!((r.dag().unwrap().efficiency() - 0.8).abs() < 1e-9);
    /// assert!(r.to_json().contains("\"workers\":4"));
    /// ```
    pub fn with_dag_summary(mut self, dag: DagSummary) -> Self {
        self.dag = Some(dag);
        self
    }

    /// Critical-path context, if one was attached.
    pub fn dag(&self) -> Option<&DagSummary> {
        self.dag.as_ref()
    }

    /// Report label (e.g. `"caffenet @ 60% pruning"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Microkernel backend the profiled process dispatched to
    /// (`"unset"` if no kernel had run when the report was built).
    pub fn kernel(&self) -> &'static str {
        self.kernel
    }

    /// Numeric precision the profiled process resolved for weighted
    /// layers (`"unset"` if the knob had not resolved at build time).
    pub fn precision(&self) -> &'static str {
        self.precision
    }

    /// Aggregated rows in execution order.
    pub fn layers(&self) -> &[LayerRow] {
        &self.layers
    }

    /// Total time across all layers.
    pub fn total_time(&self) -> Duration {
        self.layers.iter().map(|l| l.total).sum()
    }

    /// Fraction of total time spent in layer `name`, if present.
    pub fn share(&self, name: &str) -> Option<f64> {
        let total = self.total_time().as_secs_f64();
        let row = self.layers.iter().find(|l| l.name == name)?;
        Some(if total > 0.0 {
            row.total.as_secs_f64() / total
        } else {
            0.0
        })
    }

    /// Render as an aligned text table: name, kind, shape, calls,
    /// mean ms/call and share of total.
    pub fn to_text_table(&self) -> String {
        use std::fmt::Write;
        let total = self.total_time().as_secs_f64();
        let mut out = String::new();
        writeln!(
            out,
            "# profile: {} (kernel: {}, precision: {})",
            self.label, self.kernel, self.precision
        )
        .unwrap();
        writeln!(
            out,
            "{:<12} {:<6} {:>18} {:>6} {:>12} {:>7}",
            "layer", "kind", "out shape", "calls", "mean ms", "share"
        )
        .unwrap();
        for l in &self.layers {
            let share = if total > 0.0 {
                l.total.as_secs_f64() / total
            } else {
                0.0
            };
            let [n, c, h, w] = l.shape;
            writeln!(
                out,
                "{:<12} {:<6} {:>18} {:>6} {:>12.3} {:>6.1}%",
                l.name,
                l.kind,
                format!("{n}x{c}x{h}x{w}"),
                l.calls,
                l.mean().as_secs_f64() * 1000.0,
                share * 100.0
            )
            .unwrap();
        }
        writeln!(
            out,
            "{:<12} {:<6} {:>18} {:>6} {:>12.3} {:>6.1}%",
            "total",
            "",
            "",
            "",
            total * 1000.0 / self.layers.iter().map(|l| l.calls).max().unwrap_or(1) as f64,
            100.0
        )
        .unwrap();
        if let Some(d) = &self.dag {
            writeln!(
                out,
                "# critical path: {:.3} ms floor, {:.3} ms sequential work, \
                 achieved {:.3} ms on {} workers ({:.0}% of floor)",
                d.critical_path.as_secs_f64() * 1000.0,
                d.total_work.as_secs_f64() * 1000.0,
                d.achieved.as_secs_f64() * 1000.0,
                d.workers,
                d.efficiency() * 100.0
            )
            .unwrap();
        }
        out
    }

    /// JSON export (stable key order, no external dependencies). Layer
    /// names, kinds and the label are string-escaped, so the output
    /// stays valid whatever the layers are called
    /// (`crates/bench/tests/json_exports.rs` parses it).
    pub fn to_json(&self) -> String {
        use crate::jsonutil::write_json_str;
        use std::fmt::Write;
        let total = self.total_time().as_secs_f64();
        let mut out = String::from("{\"label\":");
        write_json_str(&mut out, &self.label);
        out.push_str(",\"kernel\":");
        write_json_str(&mut out, self.kernel);
        out.push_str(",\"precision\":");
        write_json_str(&mut out, self.precision);
        write!(out, ",\"total_ms\":{:.6},\"layers\":[", total * 1000.0).unwrap();
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let share = if total > 0.0 {
                l.total.as_secs_f64() / total
            } else {
                0.0
            };
            let [n, c, h, w] = l.shape;
            out.push_str("{\"name\":");
            write_json_str(&mut out, &l.name);
            out.push_str(",\"kind\":");
            write_json_str(&mut out, &l.kind);
            write!(
                out,
                ",\"shape\":[{n},{c},{h},{w}],\"fused\":{},\"quantized\":{},\
                 \"calls\":{},\"total_ms\":{:.6},\"mean_ms\":{:.6},\"share\":{:.6}}}",
                l.fused,
                l.quantized,
                l.calls,
                l.total.as_secs_f64() * 1000.0,
                l.mean().as_secs_f64() * 1000.0,
                share
            )
            .unwrap();
        }
        out.push(']');
        if let Some(d) = &self.dag {
            write!(
                out,
                ",\"dag\":{{\"critical_path_ms\":{:.6},\"total_work_ms\":{:.6},\
                 \"achieved_ms\":{:.6},\"workers\":{},\"efficiency\":",
                d.critical_path.as_secs_f64() * 1000.0,
                d.total_work.as_secs_f64() * 1000.0,
                d.achieved.as_secs_f64() * 1000.0,
                d.workers
            )
            .unwrap();
            let eff = d.efficiency();
            if eff.is_finite() {
                write!(out, "{eff:.6}").unwrap();
            } else {
                out.push_str("null");
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Side-by-side comparison with another report (e.g. the same model
    /// at a different pruning level): per-layer mean ms for both, plus
    /// the speedup of `other` relative to `self`.
    pub fn compare_table(&self, other: &ProfileReport) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{:<12} {:<6} {:>14} {:>14} {:>8}",
            "layer",
            "kind",
            format!("[{}] ms", self.label),
            format!("[{}] ms", other.label),
            "speedup"
        )
        .unwrap();
        for l in &self.layers {
            let a = l.mean().as_secs_f64() * 1000.0;
            let b = other
                .layers
                .iter()
                .find(|o| o.name == l.name)
                .map(|o| o.mean().as_secs_f64() * 1000.0);
            match b {
                Some(b) if b > 0.0 => writeln!(
                    out,
                    "{:<12} {:<6} {:>14.3} {:>14.3} {:>7.2}x",
                    l.name,
                    l.kind,
                    a,
                    b,
                    a / b
                )
                .unwrap(),
                _ => writeln!(
                    out,
                    "{:<12} {:<6} {:>14.3} {:>14} {:>8}",
                    l.name, l.kind, a, "-", "-"
                )
                .unwrap(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{CollectingTracer, SpanInfo, Tracer};

    fn span(name: &str, kind: &str, us: u64) -> SpanRecord {
        SpanRecord {
            scope: SpanScope::Layer,
            name: name.into(),
            kind: kind.into(),
            shape: [1, 8, 4, 4],
            index: 0,
            elapsed: Duration::from_micros(us),
            start: Duration::ZERO,
            tid: 1,
        }
    }

    #[test]
    fn aggregates_repeat_passes_in_execution_order() {
        let spans = vec![
            span("conv1", "conv", 100),
            span("relu1", "relu", 10),
            span("conv1", "conv", 300),
            span("relu1", "relu", 30),
        ];
        let r = ProfileReport::from_spans("t", &spans);
        assert_eq!(r.layers().len(), 2);
        assert_eq!(r.layers()[0].name, "conv1");
        assert_eq!(r.layers()[0].calls, 2);
        assert_eq!(r.layers()[0].mean(), Duration::from_micros(200));
        assert_eq!(r.total_time(), Duration::from_micros(440));
        assert!((r.share("conv1").unwrap() - 400.0 / 440.0).abs() < 1e-9);
        assert!(r.share("nope").is_none());
    }

    #[test]
    fn ignores_non_layer_spans() {
        let mut worker = span("worker", "", 999);
        worker.scope = SpanScope::Worker;
        let r = ProfileReport::from_spans("t", &[worker, span("conv1", "conv", 5)]);
        assert_eq!(r.layers().len(), 1);
    }

    #[test]
    fn text_table_and_json_render() {
        let r =
            ProfileReport::from_spans("m", &[span("conv1", "conv", 750), span("fc", "fc", 250)]);
        let table = r.to_text_table();
        assert!(table.contains("conv1"));
        assert!(table.contains("75.0%"));
        let json = r.to_json();
        assert!(json.contains("\"label\":\"m\""));
        assert!(json.contains("\"name\":\"conv1\""));
        assert!(json.contains("\"share\":0.75"));
    }

    #[test]
    fn report_records_kernel_path_label() {
        crate::metrics().kernel_path.set(1);
        let r = ProfileReport::from_spans("k", &[span("conv1", "conv", 10)]);
        assert_eq!(r.kernel(), "scalar");
        assert!(r.to_text_table().contains("(kernel: scalar,"));
        assert!(r.to_json().contains("\"kernel\":\"scalar\""));
        crate::metrics().kernel_path.set(0);
    }

    #[test]
    fn report_records_precision_and_flags_quantized_rows() {
        crate::metrics().precision_path.set(2);
        let r = ProfileReport::from_spans(
            "q",
            &[
                span("conv1", "conv+relu", 100),
                span("pool1", "pool", 20),
                span("fc", "fc", 40),
            ],
        );
        assert_eq!(r.precision(), "int8");
        assert!(r.to_text_table().contains("precision: int8"));
        let json = r.to_json();
        assert!(json.contains("\"precision\":\"int8\""), "{json}");
        // Weighted layers (conv, fc) are flagged; pooling stays f32.
        assert!(r.layers()[0].quantized && r.layers()[2].quantized);
        assert!(!r.layers()[1].quantized);
        assert!(json.contains("\"quantized\":true"), "{json}");
        assert!(json.contains("\"quantized\":false"), "{json}");

        // Back to f32: nothing is flagged.
        crate::metrics().precision_path.set(1);
        let r = ProfileReport::from_spans("f", &[span("conv1", "conv", 10)]);
        assert_eq!(r.precision(), "f32");
        assert!(!r.layers()[0].quantized);
        crate::metrics().precision_path.set(0);
    }

    #[test]
    fn compare_table_reports_speedup() {
        let dense = ProfileReport::from_spans("0%", &[span("conv1", "conv", 800)]);
        let pruned = ProfileReport::from_spans("60%", &[span("conv1", "conv", 400)]);
        let cmp = dense.compare_table(&pruned);
        assert!(cmp.contains("2.00x"), "{cmp}");
    }

    #[test]
    fn fused_rows_are_flagged_and_exported() {
        let r = ProfileReport::from_spans(
            "f",
            &[span("conv1", "conv+relu", 100), span("pool1", "pool", 50)],
        );
        assert!(r.layers()[0].fused);
        assert!(!r.layers()[1].fused);
        let json = r.to_json();
        assert!(json.contains("\"kind\":\"conv+relu\""), "{json}");
        assert!(json.contains("\"fused\":true"), "{json}");
        assert!(json.contains("\"fused\":false"), "{json}");
    }

    #[test]
    fn dag_summary_renders_in_text_and_json() {
        let r = ProfileReport::from_spans("d", &[span("conv1", "conv", 100)]).with_dag_summary(
            DagSummary {
                critical_path: Duration::from_micros(600),
                total_work: Duration::from_micros(1200),
                achieved: Duration::from_micros(750),
                workers: 2,
            },
        );
        let d = r.dag().unwrap();
        assert!((d.efficiency() - 0.8).abs() < 1e-9);
        let table = r.to_text_table();
        assert!(table.contains("# critical path: 0.600 ms floor"), "{table}");
        assert!(table.contains("on 2 workers (80% of floor)"), "{table}");
        let json = r.to_json();
        assert!(
            json.contains("\"dag\":{\"critical_path_ms\":0.600000"),
            "{json}"
        );
        assert!(json.contains("\"efficiency\":0.8"), "{json}");
        // Reports without a summary keep the old shape.
        let plain = ProfileReport::from_spans("p", &[span("c", "conv", 1)]);
        assert!(plain.dag().is_none());
        assert!(!plain.to_json().contains("\"dag\""));
    }

    #[test]
    fn roundtrip_from_collecting_tracer() {
        let t = CollectingTracer::new();
        let mut info = SpanInfo::new(SpanScope::Layer, "conv1");
        info.kind = "conv";
        info.shape = [2, 4, 8, 8];
        t.span_exit(&info, Duration::from_micros(42));
        let r = ProfileReport::from_spans("rt", &t.take_spans());
        assert_eq!(r.layers()[0].shape, [2, 4, 8, 8]);
    }
}
