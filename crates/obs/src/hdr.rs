//! Log-linear (HDR-style) histograms with quantile estimation.
//!
//! The power-of-two [`Histogram`](crate::Histogram) answers "roughly
//! what order of magnitude" — good enough for batch sizes, useless for
//! a p99: a single bucket spanning `[512, 1024)` µs cannot distinguish
//! a 520 µs tail from a 1 ms tail. [`HdrHistogram`] subdivides every
//! power-of-two range into [`SUB_BUCKETS`] linear sub-buckets, which
//! bounds the *relative* width of any bucket and therefore the error of
//! any quantile read from it.
//!
//! # Error bound
//!
//! Values below [`SUB_BUCKETS`] are recorded exactly (one bucket per
//! integer). A value `v ≥ SUB_BUCKETS` lands in a sub-bucket of width
//! `2^(e-SUB_BITS)` where `2^e ≤ v < 2^(e+1)`; since the sub-bucket's
//! lower bound is at least `SUB_BUCKETS · 2^(e-SUB_BITS)`, the width
//! never exceeds `1/SUB_BUCKETS` of the value. [`HdrSnapshot::quantile`]
//! returns the lower bound of the bucket containing the rank-`q`
//! observation, so
//!
//! > `quantile(q) ≤ true_value < quantile(q) + width(bucket)`, with
//! > `width(bucket) ≤ max(1, true_value / SUB_BUCKETS)` — a relative
//! > error of at most `1/SUB_BUCKETS` ≈ 3.1 %, and exact below
//! > [`SUB_BUCKETS`].
//!
//! The property test in `crates/obs/tests/hdr_proptest.rs` checks this
//! bound against an exact sorted-vector quantile over arbitrary inputs.
//!
//! # Concurrency
//!
//! Like the power-of-two histogram, recording is a handful of relaxed
//! atomic adds — lock-free and wait-free, safe to call from every
//! [`ParallelEngine`](https://docs.rs/cap-cnn) worker concurrently.
//! Bucketing depends only on the value, so merging per-worker
//! [`HdrSnapshot`]s is bucket-wise addition: associative, commutative,
//! order-independent (also property-tested).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of [`SUB_BUCKETS`]: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: usize = 5;

/// Sub-buckets per power-of-two range (32): the reciprocal of the
/// documented worst-case relative quantile error.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range: `SUB_BUCKETS`
/// exact unit buckets, then `SUB_BUCKETS` sub-buckets per exponent
/// `SUB_BITS..64`.
pub const HDR_BUCKETS: usize = (64 - SUB_BITS) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index for a value.
///
/// Values `< SUB_BUCKETS` map to themselves (exact). Otherwise, with
/// `e = floor(log2 v)`, the index is `(e - SUB_BITS) · SUB_BUCKETS +
/// (v >> (e - SUB_BITS))` — the `SUB_BITS + 1` leading significant bits
/// of `v` select the sub-bucket.
#[inline]
pub fn hdr_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        (e - SUB_BITS) * SUB_BUCKETS + (v >> (e - SUB_BITS)) as usize
    }
}

/// `[lo, hi)` value bounds of bucket `i` (inverse of [`hdr_index`]).
///
/// The final bucket's exclusive upper bound is 2^64, which does not fit
/// in a `u64`; it saturates to `u64::MAX` instead.
pub fn hdr_bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_BUCKETS {
        (i as u64, i as u64 + 1)
    } else {
        let shift = i / SUB_BUCKETS - 1;
        let sub = (i % SUB_BUCKETS) as u64;
        let lo = (SUB_BUCKETS as u64 + sub) << shift;
        (lo, lo.saturating_add(1u64 << shift))
    }
}

/// A lock-free log-linear histogram: relative bucket width bounded by
/// `1/`[`SUB_BUCKETS`], so quantiles read from it carry a documented
/// ≤ 3.1 % relative error (see the module docs for the exact bound).
///
/// ```
/// use cap_obs::HdrHistogram;
///
/// let h = HdrHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// let p50 = snap.quantile(0.50).unwrap();
/// // True median is 500; the estimate is the containing bucket's lower
/// // bound, within 1/32 relative error.
/// assert!(p50 <= 500 && 500 < p50 + p50 / 16 + 1);
/// ```
#[derive(Debug)]
pub struct HdrHistogram {
    buckets: [AtomicU64; HDR_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HdrHistogram {
    /// An empty histogram (const: usable in statics).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; HDR_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Three relaxed atomic adds; lock-free,
    /// wait-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[hdr_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state. (Not atomic across
    /// buckets under concurrent recording; take snapshots at quiescent
    /// points when exact totals matter.)
    pub fn snapshot(&self) -> HdrSnapshot {
        let mut buckets = vec![0u64; HDR_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HdrSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Reset every bucket and the totals to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Owned, mergeable copy of an [`HdrHistogram`]'s state, with quantile
/// estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdrSnapshot {
    /// Per-bucket observation counts, length [`HDR_BUCKETS`]
    /// (see [`hdr_bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HdrSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HdrSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HDR_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Fold another snapshot into this one. Pure bucket-wise addition:
    /// associative, commutative, order-independent — merging per-worker
    /// histograms yields bit-identical results regardless of join order
    /// (property-tested in `crates/obs/tests/hdr_proptest.rs`).
    pub fn merge(&mut self, other: &HdrSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), or `None` when empty.
    ///
    /// Returns the lower bound of the bucket containing the observation
    /// of rank `⌈q · count⌉` (clamped to `[1, count]`), so the true
    /// value `t` satisfies `quantile(q) ≤ t < quantile(q) + w` with
    /// bucket width `w ≤ max(1, t / `[`SUB_BUCKETS`]`)` — the bound
    /// documented in the [module docs](crate::hdr).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(hdr_bucket_bounds(i).0);
            }
        }
        // Unreachable when count equals the bucket total; under a torn
        // concurrent snapshot fall back to the highest non-empty bucket.
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| hdr_bucket_bounds(i).0)
    }

    /// The standard latency percentiles `(p50, p90, p95, p99)`, or
    /// `None` when empty.
    pub fn percentiles(&self) -> Option<(u64, u64, u64, u64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_are_inverse() {
        assert_eq!(hdr_index(0), 0);
        assert_eq!(hdr_index(31), 31);
        assert_eq!(hdr_index(32), 32);
        assert_eq!(hdr_index(u64::MAX), HDR_BUCKETS - 1);
        for i in 0..HDR_BUCKETS {
            let (lo, hi) = hdr_bucket_bounds(i);
            assert_eq!(hdr_index(lo), i, "lo of bucket {i}");
            assert_eq!(hdr_index(hi - 1), i, "hi-1 of bucket {i}");
            if i + 1 < HDR_BUCKETS {
                assert_eq!(hdr_bucket_bounds(i + 1).0, hi, "buckets are contiguous");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = HdrHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..SUB_BUCKETS as u64 {
            // Quantile that lands exactly on rank v+1.
            let q = (v + 1) as f64 / SUB_BUCKETS as f64;
            assert_eq!(s.quantile(q), Some(v));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = HdrHistogram::new();
        let values: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile(q).unwrap();
            let (lo, hi) = hdr_bucket_bounds(hdr_index(truth));
            assert_eq!(est, lo, "estimate is the true value's bucket floor");
            assert!(est <= truth && truth < hi);
            let width = hi - lo;
            assert!(
                width as f64 <= (truth as f64 / SUB_BUCKETS as f64).max(1.0),
                "width {width} too wide for value {truth}"
            );
        }
    }

    #[test]
    fn empty_quantile_is_none() {
        let s = HdrSnapshot::empty();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.percentiles(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_matches_concurrent_shared_recording() {
        let values: Vec<u64> = (0..2000u64).map(|i| (i * 7919) % 123_457).collect();
        let shared = HdrHistogram::new();
        std::thread::scope(|s| {
            for chunk in values.chunks(500) {
                let shared = &shared;
                s.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });
        let privates: Vec<HdrHistogram> = (0..4).map(|_| HdrHistogram::new()).collect();
        for (h, chunk) in privates.iter().zip(values.chunks(500)) {
            for &v in chunk {
                h.record(v);
            }
        }
        let mut fwd = HdrSnapshot::empty();
        for h in &privates {
            fwd.merge(&h.snapshot());
        }
        let mut rev = HdrSnapshot::empty();
        for h in privates.iter().rev() {
            rev.merge(&h.snapshot());
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, shared.snapshot());
        assert_eq!(fwd.count, 2000);
    }

    #[test]
    fn reset_clears() {
        let h = HdrHistogram::new();
        h.record(12345);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), None);
    }
}
