//! Windowed time-series rollups over a virtual clock.
//!
//! The [`MetricsRegistry`](crate::MetricsRegistry) answers "what
//! happened over the whole run"; this module answers "how did it evolve"
//! — a fixed-capacity ring of per-window rollups, each window holding
//! counter deltas and mergeable [`HdrSnapshot`] histograms. Window
//! boundaries are computed from caller-supplied timestamps (the
//! `cap-serve` router feeds its virtual clock), never from a wall
//! clock, so the same seed produces a byte-identical series on every
//! machine and every rerun.
//!
//! Windows are stored sparsely: a window with no events is simply
//! absent, and consumers treat gaps as zero. When the ring exceeds its
//! capacity the oldest window is evicted (counted in
//! [`TimeSeries::evicted`]); events that arrive for an already-evicted
//! window are dropped and counted in [`TimeSeries::late_dropped`]
//! rather than silently resurrecting history.

use crate::hdr::HdrSnapshot;
use crate::jsonutil::{write_json_opt_u64, write_json_str};
use std::collections::VecDeque;
use std::fmt::Write;

/// One time window's rollup: counter deltas plus histogram merges for
/// every series the owning [`TimeSeries`] declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Window ordinal: `floor(t_us / window_us)`. Sparse — consecutive
    /// retained windows may skip indexes (empty windows are absent).
    pub index: u64,
    /// Counter deltas within this window, parallel to
    /// [`TimeSeries::counter_names`].
    pub counters: Vec<u64>,
    /// Histogram state for observations within this window, parallel to
    /// [`TimeSeries::hist_names`].
    pub hists: Vec<HdrSnapshot>,
}

impl Window {
    fn new(index: u64, n_counters: usize, n_hists: usize) -> Self {
        Self {
            index,
            counters: vec![0; n_counters],
            hists: vec![HdrSnapshot::empty(); n_hists],
        }
    }
}

/// A fixed-capacity ring of per-window rollups keyed by an external
/// (virtual) clock.
///
/// ```
/// use cap_obs::TimeSeries;
///
/// let mut ts = TimeSeries::new(1_000, 64, &["completed"], &["latency_us"]);
/// ts.add(250, 0, 1); // window 0
/// ts.add(1_700, 0, 2); // window 1
/// ts.observe(1_700, 0, 420);
/// assert_eq!(ts.windows().len(), 2);
/// assert_eq!(ts.counter_total(0), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window_us: u64,
    capacity: usize,
    counter_names: Vec<&'static str>,
    hist_names: Vec<&'static str>,
    windows: VecDeque<Window>,
    evicted: u64,
    late_dropped: u64,
}

impl TimeSeries {
    /// A new empty series with `capacity` retained windows of
    /// `window_us` virtual microseconds each, rolling up the named
    /// counters and histograms.
    ///
    /// # Panics
    ///
    /// If `window_us` is 0 or `capacity` is 0.
    pub fn new(
        window_us: u64,
        capacity: usize,
        counter_names: &[&'static str],
        hist_names: &[&'static str],
    ) -> Self {
        assert!(window_us > 0, "window_us must be positive");
        assert!(capacity > 0, "capacity must be positive");
        Self {
            window_us,
            capacity,
            counter_names: counter_names.to_vec(),
            hist_names: hist_names.to_vec(),
            windows: VecDeque::new(),
            evicted: 0,
            late_dropped: 0,
        }
    }

    /// Window width in virtual microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Declared counter names, in column order.
    pub fn counter_names(&self) -> &[&'static str] {
        &self.counter_names
    }

    /// Declared histogram names, in column order.
    pub fn hist_names(&self) -> &[&'static str] {
        &self.hist_names
    }

    /// Retained windows in ascending `index` order (sparse: empty
    /// windows are absent).
    pub fn windows(&self) -> &VecDeque<Window> {
        &self.windows
    }

    /// Windows evicted from the front of the ring to stay within
    /// capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events dropped because they targeted an already-evicted window.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Column index of a counter name, if declared.
    pub fn counter_idx(&self, name: &str) -> Option<usize> {
        self.counter_names.iter().position(|&n| n == name)
    }

    /// Column index of a histogram name, if declared.
    pub fn hist_idx(&self, name: &str) -> Option<usize> {
        self.hist_names.iter().position(|&n| n == name)
    }

    /// Sum of counter column `idx` across all retained windows.
    pub fn counter_total(&self, idx: usize) -> u64 {
        self.windows.iter().map(|w| w.counters[idx]).sum()
    }

    /// Merge of histogram column `idx` across all retained windows.
    pub fn hist_merged(&self, idx: usize) -> HdrSnapshot {
        let mut out = HdrSnapshot::empty();
        for w in &self.windows {
            out.merge(&w.hists[idx]);
        }
        out
    }

    /// The window covering `t_us`, creating (and evicting) as needed.
    /// Returns `None` when the target window was already evicted.
    fn window_mut(&mut self, t_us: u64) -> Option<&mut Window> {
        let index = t_us / self.window_us;
        // Fast path: events arrive in virtual-time order, so the match
        // is almost always the newest window.
        if let Some(back) = self.windows.back() {
            if back.index == index {
                return self.windows.back_mut();
            }
            if back.index < index {
                self.windows.push_back(Window::new(
                    index,
                    self.counter_names.len(),
                    self.hist_names.len(),
                ));
                while self.windows.len() > self.capacity {
                    self.windows.pop_front();
                    self.evicted += 1;
                }
                return self.windows.back_mut();
            }
            // Out-of-order event: find or insert within the retained
            // range, drop if it precedes everything retained after an
            // eviction has occurred.
            if self.evicted > 0 && index < self.windows.front().map_or(0, |w| w.index) {
                self.late_dropped += 1;
                return None;
            }
            let pos = self.windows.partition_point(|w| w.index < index);
            if self.windows.get(pos).map(|w| w.index) != Some(index) {
                self.windows.insert(
                    pos,
                    Window::new(index, self.counter_names.len(), self.hist_names.len()),
                );
            }
            return self.windows.get_mut(pos);
        }
        self.windows.push_back(Window::new(
            index,
            self.counter_names.len(),
            self.hist_names.len(),
        ));
        self.windows.back_mut()
    }

    /// Add `n` to counter column `counter_idx` in the window covering
    /// virtual time `t_us`.
    pub fn add(&mut self, t_us: u64, counter_idx: usize, n: u64) {
        if let Some(w) = self.window_mut(t_us) {
            w.counters[counter_idx] += n;
        }
    }

    /// Record `value` into histogram column `hist_idx` in the window
    /// covering virtual time `t_us`.
    pub fn observe(&mut self, t_us: u64, hist_idx: usize, value: u64) {
        if let Some(w) = self.window_mut(t_us) {
            let h = &mut w.hists[hist_idx];
            h.buckets[crate::hdr::hdr_index(value)] += 1;
            h.count += 1;
            h.sum += value;
        }
    }

    /// Plain-text table: one row per retained window, one column per
    /// counter, then `count/mean/p50/p99` per histogram.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write!(out, "{:>8} {:>12}", "window", "start_us").unwrap();
        for name in &self.counter_names {
            write!(out, " {name:>12}").unwrap();
        }
        for name in &self.hist_names {
            write!(
                out,
                " {:>12} {:>12} {:>12} {:>12}",
                name, "mean", "p50", "p99"
            )
            .unwrap();
        }
        out.push('\n');
        for w in &self.windows {
            write!(out, "{:>8} {:>12}", w.index, w.index * self.window_us).unwrap();
            for &c in &w.counters {
                write!(out, " {c:>12}").unwrap();
            }
            for h in &w.hists {
                write!(
                    out,
                    " {:>12} {:>12.1} {:>12} {:>12}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                )
                .unwrap();
            }
            out.push('\n');
        }
        if self.evicted > 0 || self.late_dropped > 0 {
            writeln!(
                out,
                "({} windows evicted, {} late events dropped)",
                self.evicted, self.late_dropped
            )
            .unwrap();
        }
        out
    }

    /// Deterministic JSON export: schema header plus one object per
    /// retained window (counter values by name; histograms as
    /// `count`/`sum`/`p50`/`p90`/`p95`/`p99`).
    ///
    /// Byte-identical across reruns for identical event sequences —
    /// nothing here reads a wall clock, and map order is the fixed
    /// declaration order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"cap-timeseries-v1\",\"window_us\":");
        write!(out, "{}", self.window_us).unwrap();
        write!(
            out,
            ",\"capacity\":{},\"evicted\":{},\"late_dropped\":{}",
            self.capacity, self.evicted, self.late_dropped
        )
        .unwrap();
        out.push_str(",\"counters\":[");
        for (i, name) in self.counter_names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, name);
        }
        out.push_str("],\"hists\":[");
        for (i, name) in self.hist_names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, name);
        }
        out.push_str("],\"windows\":[");
        for (wi, w) in self.windows.iter().enumerate() {
            if wi > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"index\":{},\"start_us\":{}",
                w.index,
                w.index * self.window_us
            )
            .unwrap();
            out.push_str(",\"counters\":{");
            for (i, (name, &c)) in self.counter_names.iter().zip(&w.counters).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, name);
                write!(out, ":{c}").unwrap();
            }
            out.push_str("},\"hists\":{");
            for (i, (name, h)) in self.hist_names.iter().zip(&w.hists).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, name);
                write!(out, ":{{\"count\":{},\"sum\":{}", h.count, h.sum).unwrap();
                for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)] {
                    write!(out, ",\"{label}\":").unwrap();
                    write_json_opt_u64(&mut out, h.quantile(q));
                }
                out.push('}');
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(1_000, 4, &["good", "bad"], &["lat_us"])
    }

    #[test]
    fn windows_are_sparse_and_ordered() {
        let mut ts = series();
        ts.add(100, 0, 1); // window 0
        ts.add(3_500, 1, 2); // window 3 — windows 1..2 absent
        assert_eq!(ts.windows().len(), 2);
        assert_eq!(ts.windows()[0].index, 0);
        assert_eq!(ts.windows()[1].index, 3);
        assert_eq!(ts.counter_total(0), 1);
        assert_eq!(ts.counter_total(1), 2);
    }

    #[test]
    fn eviction_keeps_capacity_and_counts() {
        let mut ts = series();
        for w in 0..6u64 {
            ts.add(w * 1_000, 0, 1);
        }
        assert_eq!(ts.windows().len(), 4);
        assert_eq!(ts.evicted(), 2);
        assert_eq!(ts.windows()[0].index, 2);
        // A late event for the evicted window 0 is dropped, not
        // resurrected.
        ts.add(10, 0, 1);
        assert_eq!(ts.late_dropped(), 1);
        assert_eq!(ts.windows()[0].index, 2);
    }

    #[test]
    fn out_of_order_within_retained_range_lands_in_place() {
        let mut ts = series();
        ts.add(2_500, 0, 1); // window 2
        ts.add(500, 0, 1); // window 0, inserted before
        assert_eq!(ts.windows()[0].index, 0);
        assert_eq!(ts.windows()[1].index, 2);
        ts.add(700, 1, 3); // joins existing window 0
        assert_eq!(ts.windows().len(), 2);
        assert_eq!(ts.windows()[0].counters, vec![1, 3]);
    }

    #[test]
    fn observe_rolls_into_window_histograms() {
        let mut ts = series();
        for v in [100u64, 200, 300] {
            ts.observe(50, 0, v);
        }
        let h = &ts.windows()[0].hists[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 600);
        let merged = ts.hist_merged(0);
        assert_eq!(merged.count, 3);
        assert!(merged.quantile(0.5).unwrap() <= 200);
    }

    #[test]
    fn json_is_deterministic_and_reflects_schema() {
        let build = || {
            let mut ts = series();
            ts.add(100, 0, 5);
            ts.add(1_200, 1, 1);
            ts.observe(1_200, 0, 333);
            ts.to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same event sequence must serialize identically");
        assert!(a.starts_with("{\"schema\":\"cap-timeseries-v1\""));
        assert!(a.contains("\"good\":5"));
        assert!(a.contains("\"count\":1,\"sum\":333"));
    }

    #[test]
    fn text_table_mentions_every_window() {
        let mut ts = series();
        ts.add(0, 0, 1);
        ts.add(2_000, 0, 1);
        let text = ts.to_text();
        assert!(text.contains("window"));
        assert_eq!(text.lines().count(), 3); // header + 2 windows
    }
}
