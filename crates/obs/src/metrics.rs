//! Lock-free metrics: counters, gauges, histograms, and the
//! process-global [`MetricsRegistry`] that instrumented crates feed.
//!
//! Two histogram flavors coexist: the compact power-of-two
//! [`Histogram`] (40 buckets, order-of-magnitude resolution) and the
//! log-linear [`HdrHistogram`] (sub-bucketed, so
//! p50/p95/p99 read out with a bounded ≤ 1/32 relative error). The
//! registry's timed histograms use the log-linear flavor — tail
//! latencies are what a serving system is operated on.
//!
//! Everything here is a relaxed atomic — no locks anywhere, so workers
//! of a [`ParallelEngine`](https://docs.rs/cap-cnn) shard record into
//! the same registry without contention-induced serialization, and
//! recording never allocates. Cheap structural metrics (pool hits,
//! batch sizes, arena bytes) are always on; metrics that need a clock
//! read at the recording site (GEMM/im2col split, per-layer time) are
//! additionally gated behind the [`timing_enabled`] flag so the default
//! configuration pays one relaxed load and a never-taken branch.

use crate::hdr::{HdrHistogram, HdrSnapshot};
use crate::jsonutil::{write_json_f64, write_json_opt_u64, write_json_str};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket additionally
/// absorbs everything beyond `2^(BUCKETS-1)`.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    ///
    /// Interaction with [`MetricsRegistry::reset`]: a reset drops the
    /// mark to zero, and the next `record_max` re-publishes whatever
    /// high-water the *next* recording site observes — not the
    /// pre-reset peak. A gauge like `arena_bytes` therefore reflects
    /// the era since the last reset only if recording sites re-report
    /// their current value afterwards (the forward pass does, every
    /// pass). Snapshot consumers that compare against a baseline (the
    /// `sentinel` experiment) must reset **before** their warm-up so
    /// the mark they capture covers exactly their own run; resetting
    /// mid-run would otherwise publish a partial, stale-looking
    /// high-water into the baseline. Tested by
    /// `reset_then_record_max_republishes_current_high_water` below.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A lock-free histogram with power-of-two buckets.
///
/// Bucketing depends only on the recorded value — never on recording
/// order or on which thread recorded — so merging per-worker snapshots
/// is associative and commutative (asserted by the merge-stability unit
/// test below).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2 v) + 1`, clamped
/// to the last bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state. (Not atomic across
    /// buckets under concurrent recording; take snapshots at quiescent
    /// points when exact totals matter.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Reset every bucket and the totals to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Fold another snapshot into this one. Pure bucket-wise addition:
    /// associative, commutative, order-independent — merging per-worker
    /// histograms yields bit-identical results regardless of join order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `[lo, hi)` value bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ => (1u64 << (i - 1), 1u64 << i),
        }
    }
}

/// Global switch for metrics that need a clock read at the recording
/// site. Nesting-safe: a counter of active enables, not a boolean.
static TIMING_ENABLES: AtomicU64 = AtomicU64::new(0);

/// Whether timed metrics (per-layer time, GEMM/im2col split, forward
/// latency) should be recorded. One relaxed load; false by default.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING_ENABLES.load(Ordering::Relaxed) > 0
}

/// RAII guard that turns timed-metrics recording on for its lifetime.
///
/// ```
/// assert!(!cap_obs::timing_enabled());
/// {
///     let _g = cap_obs::TimingGuard::enable();
///     assert!(cap_obs::timing_enabled());
/// }
/// assert!(!cap_obs::timing_enabled());
/// ```
#[derive(Debug)]
pub struct TimingGuard(());

impl TimingGuard {
    /// Enable timed metrics until the guard drops. Guards nest: timing
    /// stays on while any guard is alive.
    pub fn enable() -> Self {
        TIMING_ENABLES.fetch_add(1, Ordering::Relaxed);
        Self(())
    }
}

impl Drop for TimingGuard {
    fn drop(&mut self) {
        TIMING_ENABLES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The fixed set of pipeline metrics, fed by `cap-tensor`, `cap-cnn`
/// and `cap-core` instrumentation. Obtain the process-global instance
/// with [`metrics()`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Forward passes started (`Network::forward_into*`). Always on.
    pub forward_passes: Counter,
    /// Whole-pass latency in microseconds. Gated by [`timing_enabled`].
    /// Log-linear ([`HdrHistogram`]), so p50/p95/p99 read out with a
    /// bounded ≤ 1/32 relative error.
    pub forward_latency_us: HdrHistogram,
    /// Per-layer forward time in microseconds. Gated by [`timing_enabled`].
    pub layer_time_us: HdrHistogram,
    /// Nanoseconds inside packed-GEMM kernels during convolution.
    /// Gated by [`timing_enabled`].
    pub gemm_time_ns: Counter,
    /// Nanoseconds inside im2col lowering during convolution.
    /// Gated by [`timing_enabled`].
    pub im2col_time_ns: Counter,
    /// High-water mark of `ForwardArena` activation bytes. Always on.
    pub arena_bytes: Gauge,
    /// Workspace-pool checkouts satisfied by a recycled workspace.
    /// Always on.
    pub workspace_hits: Counter,
    /// Workspace-pool checkouts that had to build a new workspace.
    /// Always on.
    pub workspace_misses: Counter,
    /// Batch sizes seen by forward passes. Always on.
    pub batch_sizes: HdrHistogram,
    /// (version, configuration, batch) candidates evaluated by grid
    /// exploration. Always on.
    pub grid_candidates: Counter,
    /// Algorithm 1 allocation runs. Always on.
    pub allocation_runs: Counter,
    /// Which SIMD microkernel backend `cap-tensor` dispatched to, as a
    /// code decoded by [`kernel_path_name`] (0 until the first kernel
    /// resolves the path). An environment descriptor, not a workload
    /// counter: [`MetricsRegistry::reset`] deliberately leaves it alone
    /// so experiment boundaries don't erase which backend is running.
    pub kernel_path: Gauge,
    /// Which numeric precision `cap-tensor` resolved for the weighted
    /// layers, as a code decoded by [`precision_path_name`] (0 until
    /// the precision knob first resolves). Like `kernel_path` an
    /// environment descriptor, not a workload counter:
    /// [`MetricsRegistry::reset`] deliberately leaves it alone so
    /// experiment boundaries don't erase which precision is running.
    pub precision_path: Gauge,
    /// Number of fused producer→ReLU steps in the network most recently
    /// executed by `Network::forward_into*` (0 when fusion is off or
    /// nothing matched). Overwritten by every traced forward pass and,
    /// unlike `kernel_path`, reset with the workload metrics — it
    /// describes what the last run did, not the process environment.
    /// Always on.
    pub fused_layers: Gauge,
    /// Forward passes executed on the intra-network DAG-parallel
    /// scheduler (a subset of `forward_passes`; sequential passes do
    /// not count). Always on.
    pub dag_parallel_passes: Counter,
    /// Ready-queue insertions by the DAG scheduler (seed steps plus
    /// every cross-worker handoff that went through the queue). Always
    /// on.
    pub dag_queue_pushes: Counter,
    /// Steps executed via the chained fast path — a finishing worker
    /// directly running the first successor it made ready, skipping the
    /// queue. `dag_queue_pushes + dag_chained_steps` equals the total
    /// steps executed by DAG-parallel passes. Always on.
    pub dag_chained_steps: Counter,
    /// Worker count of the most recent forward pass: 0 when it ran the
    /// sequential schedule, `n ≥ 1` when the DAG scheduler ran with `n`
    /// workers. A workload descriptor like `fused_layers` — overwritten
    /// every pass and cleared by [`MetricsRegistry::reset`]. Always on.
    pub dag_workers: Gauge,
    /// Critical-path length in microseconds of the last network
    /// analyzed by `cap_cnn::CriticalPathReport` — the theoretical
    /// batch-1 latency floor no node-parallel schedule can beat.
    /// Published on analysis, not per pass; cleared by reset.
    pub dag_critical_path_us: Gauge,
    /// Requests offered to the `cap-serve` router (admitted + shed).
    /// Always on.
    pub serve_requests: Counter,
    /// Requests admitted into a tenant queue. Always on.
    pub serve_admitted: Counter,
    /// Requests shed at admission because the tenant's bounded queue
    /// was full — the counted reject path; nothing is ever dropped
    /// silently. Always on.
    pub serve_shed: Counter,
    /// Batches the router dispatched to the engine. Always on.
    pub serve_batches: Counter,
    /// High-water mark of any tenant queue's depth. Always on.
    pub serve_queue_depth: Gauge,
    /// Formed batch sizes at dispatch (occupancy of the dynamic
    /// batcher). Always on.
    pub serve_batch_occupancy: HdrHistogram,
    /// End-to-end request latency (queue wait + service) in *virtual*
    /// microseconds from the router's deterministic clock — no clock
    /// read at the recording site, so unlike `forward_latency_us` this
    /// is always on and reproducible run-to-run. Always on.
    pub serve_latency_us: HdrHistogram,
}

static REGISTRY: MetricsRegistry = MetricsRegistry {
    forward_passes: Counter::new(),
    forward_latency_us: HdrHistogram::new(),
    layer_time_us: HdrHistogram::new(),
    gemm_time_ns: Counter::new(),
    im2col_time_ns: Counter::new(),
    arena_bytes: Gauge::new(),
    workspace_hits: Counter::new(),
    workspace_misses: Counter::new(),
    batch_sizes: HdrHistogram::new(),
    grid_candidates: Counter::new(),
    allocation_runs: Counter::new(),
    kernel_path: Gauge::new(),
    precision_path: Gauge::new(),
    fused_layers: Gauge::new(),
    dag_parallel_passes: Counter::new(),
    dag_queue_pushes: Counter::new(),
    dag_chained_steps: Counter::new(),
    dag_workers: Gauge::new(),
    dag_critical_path_us: Gauge::new(),
    serve_requests: Counter::new(),
    serve_admitted: Counter::new(),
    serve_shed: Counter::new(),
    serve_batches: Counter::new(),
    serve_queue_depth: Gauge::new(),
    serve_batch_occupancy: HdrHistogram::new(),
    serve_latency_us: HdrHistogram::new(),
};

/// Human-readable name for a `kernel_path` gauge code. The codes are
/// published by `cap_tensor::kernels` (`KernelPath::code`); the two
/// tables are cross-checked by a test in that crate.
pub fn kernel_path_name(code: u64) -> &'static str {
    match code {
        0 => "unset",
        1 => "scalar",
        2 => "avx2",
        3 => "avx2-fma",
        _ => "unknown",
    }
}

/// Human-readable name for a `precision_path` gauge code. The codes
/// are published by `cap_tensor::precision` (`Precision::code`); the
/// two tables are cross-checked by a test in that crate.
pub fn precision_path_name(code: u64) -> &'static str {
    match code {
        0 => "unset",
        1 => "f32",
        2 => "int8",
        _ => "unknown",
    }
}

/// The process-global metrics registry.
///
/// ```
/// let m = cap_obs::metrics();
/// let before = m.workspace_hits.get();
/// m.workspace_hits.inc();
/// assert_eq!(m.workspace_hits.get() - before, 1);
/// ```
pub fn metrics() -> &'static MetricsRegistry {
    &REGISTRY
}

impl MetricsRegistry {
    /// Point-in-time copy of every metric, for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            forward_passes: self.forward_passes.get(),
            forward_latency_us: self.forward_latency_us.snapshot(),
            layer_time_us: self.layer_time_us.snapshot(),
            gemm_time_ns: self.gemm_time_ns.get(),
            im2col_time_ns: self.im2col_time_ns.get(),
            arena_bytes: self.arena_bytes.get(),
            workspace_hits: self.workspace_hits.get(),
            workspace_misses: self.workspace_misses.get(),
            batch_sizes: self.batch_sizes.snapshot(),
            grid_candidates: self.grid_candidates.get(),
            allocation_runs: self.allocation_runs.get(),
            kernel_path: self.kernel_path.get(),
            precision_path: self.precision_path.get(),
            fused_layers: self.fused_layers.get(),
            dag_parallel_passes: self.dag_parallel_passes.get(),
            dag_queue_pushes: self.dag_queue_pushes.get(),
            dag_chained_steps: self.dag_chained_steps.get(),
            dag_workers: self.dag_workers.get(),
            dag_critical_path_us: self.dag_critical_path_us.get(),
            serve_requests: self.serve_requests.get(),
            serve_admitted: self.serve_admitted.get(),
            serve_shed: self.serve_shed.get(),
            serve_batches: self.serve_batches.get(),
            serve_queue_depth: self.serve_queue_depth.get(),
            serve_batch_occupancy: self.serve_batch_occupancy.snapshot(),
            serve_latency_us: self.serve_latency_us.snapshot(),
        }
    }

    /// Reset every workload metric to zero (tests and between-experiment
    /// boundaries; concurrent recorders may interleave).
    ///
    /// `kernel_path` and `precision_path` are *not* reset: they
    /// describe the process environment (which SIMD backend and which
    /// numeric precision dispatch selected), not work done, and the
    /// dispatch layer publishes them only once — a reset would erase
    /// them for every later snapshot. Tested by
    /// `reset_preserves_kernel_path` below.
    pub fn reset(&self) {
        self.forward_passes.reset();
        self.forward_latency_us.reset();
        self.layer_time_us.reset();
        self.gemm_time_ns.reset();
        self.im2col_time_ns.reset();
        self.arena_bytes.reset();
        self.workspace_hits.reset();
        self.workspace_misses.reset();
        self.batch_sizes.reset();
        self.grid_candidates.reset();
        self.allocation_runs.reset();
        self.fused_layers.reset();
        self.dag_parallel_passes.reset();
        self.dag_queue_pushes.reset();
        self.dag_chained_steps.reset();
        self.dag_workers.reset();
        self.dag_critical_path_us.reset();
        self.serve_requests.reset();
        self.serve_admitted.reset();
        self.serve_shed.reset();
        self.serve_batches.reset();
        self.serve_queue_depth.reset();
        self.serve_batch_occupancy.reset();
        self.serve_latency_us.reset();
    }
}

/// Owned copy of the registry, with plain-text and JSON exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// See [`MetricsRegistry::forward_passes`].
    pub forward_passes: u64,
    /// See [`MetricsRegistry::forward_latency_us`].
    pub forward_latency_us: HdrSnapshot,
    /// See [`MetricsRegistry::layer_time_us`].
    pub layer_time_us: HdrSnapshot,
    /// See [`MetricsRegistry::gemm_time_ns`].
    pub gemm_time_ns: u64,
    /// See [`MetricsRegistry::im2col_time_ns`].
    pub im2col_time_ns: u64,
    /// See [`MetricsRegistry::arena_bytes`].
    pub arena_bytes: u64,
    /// See [`MetricsRegistry::workspace_hits`].
    pub workspace_hits: u64,
    /// See [`MetricsRegistry::workspace_misses`].
    pub workspace_misses: u64,
    /// See [`MetricsRegistry::batch_sizes`].
    pub batch_sizes: HdrSnapshot,
    /// See [`MetricsRegistry::grid_candidates`].
    pub grid_candidates: u64,
    /// See [`MetricsRegistry::allocation_runs`].
    pub allocation_runs: u64,
    /// See [`MetricsRegistry::kernel_path`]; decode with
    /// [`kernel_path_name`].
    pub kernel_path: u64,
    /// See [`MetricsRegistry::precision_path`]; decode with
    /// [`precision_path_name`].
    pub precision_path: u64,
    /// See [`MetricsRegistry::fused_layers`].
    pub fused_layers: u64,
    /// See [`MetricsRegistry::dag_parallel_passes`].
    pub dag_parallel_passes: u64,
    /// See [`MetricsRegistry::dag_queue_pushes`].
    pub dag_queue_pushes: u64,
    /// See [`MetricsRegistry::dag_chained_steps`].
    pub dag_chained_steps: u64,
    /// See [`MetricsRegistry::dag_workers`].
    pub dag_workers: u64,
    /// See [`MetricsRegistry::dag_critical_path_us`].
    pub dag_critical_path_us: u64,
    /// See [`MetricsRegistry::serve_requests`].
    pub serve_requests: u64,
    /// See [`MetricsRegistry::serve_admitted`].
    pub serve_admitted: u64,
    /// See [`MetricsRegistry::serve_shed`].
    pub serve_shed: u64,
    /// See [`MetricsRegistry::serve_batches`].
    pub serve_batches: u64,
    /// See [`MetricsRegistry::serve_queue_depth`].
    pub serve_queue_depth: u64,
    /// See [`MetricsRegistry::serve_batch_occupancy`].
    pub serve_batch_occupancy: HdrSnapshot,
    /// See [`MetricsRegistry::serve_latency_us`].
    pub serve_latency_us: HdrSnapshot,
}

impl MetricsSnapshot {
    fn scalars(&self) -> [(&'static str, u64); 21] {
        [
            ("forward_passes", self.forward_passes),
            ("gemm_time_ns", self.gemm_time_ns),
            ("im2col_time_ns", self.im2col_time_ns),
            ("arena_bytes", self.arena_bytes),
            ("workspace_hits", self.workspace_hits),
            ("workspace_misses", self.workspace_misses),
            ("grid_candidates", self.grid_candidates),
            ("allocation_runs", self.allocation_runs),
            ("kernel_path", self.kernel_path),
            ("precision_path", self.precision_path),
            ("fused_layers", self.fused_layers),
            ("dag_parallel_passes", self.dag_parallel_passes),
            ("dag_queue_pushes", self.dag_queue_pushes),
            ("dag_chained_steps", self.dag_chained_steps),
            ("dag_workers", self.dag_workers),
            ("dag_critical_path_us", self.dag_critical_path_us),
            ("serve_requests", self.serve_requests),
            ("serve_admitted", self.serve_admitted),
            ("serve_shed", self.serve_shed),
            ("serve_batches", self.serve_batches),
            ("serve_queue_depth", self.serve_queue_depth),
        ]
    }

    /// The timed/size histograms by name, log-linear with quantiles.
    pub fn histograms(&self) -> [(&'static str, &HdrSnapshot); 5] {
        [
            ("forward_latency_us", &self.forward_latency_us),
            ("layer_time_us", &self.layer_time_us),
            ("batch_sizes", &self.batch_sizes),
            ("serve_batch_occupancy", &self.serve_batch_occupancy),
            ("serve_latency_us", &self.serve_latency_us),
        ]
    }

    /// Plain-text export: one `name value` line per scalar, then one
    /// line per histogram with count, mean, the p50/p90/p95/p99
    /// quantiles (`-` when empty), and non-empty buckets.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in self.scalars() {
            writeln!(out, "{name} {v}").unwrap();
        }
        for (name, h) in self.histograms() {
            write!(out, "{name} count {} mean {:.1}", h.count, h.mean()).unwrap();
            match h.percentiles() {
                Some((p50, p90, p95, p99)) => {
                    write!(out, " p50 {p50} p90 {p90} p95 {p95} p99 {p99}").unwrap()
                }
                None => write!(out, " p50 - p90 - p95 - p99 -").unwrap(),
            }
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    let (lo, hi) = crate::hdr::hdr_bucket_bounds(i);
                    write!(out, " [{lo},{hi}):{c}").unwrap();
                }
            }
            out.push('\n');
        }
        out
    }

    /// JSON export: stable key order, no external dependencies, and
    /// defensively valid — metric names are string-escaped and any
    /// non-finite mean renders as `null` (quantiles of an empty
    /// histogram too). `crates/bench/tests/json_exports.rs` parses the
    /// output with a real JSON parser.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        for (name, v) in self.scalars() {
            write_json_str(&mut out, name);
            write!(out, ":{v},").unwrap();
        }
        for (name, h) in self.histograms() {
            write_json_str(&mut out, name);
            write!(out, ":{{\"count\":{},\"sum\":{},\"mean\":", h.count, h.sum).unwrap();
            write_json_f64(&mut out, if h.count == 0 { 0.0 } else { h.mean() });
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)] {
                write!(out, ",\"{label}\":").unwrap();
                write_json_opt_u64(&mut out, h.quantile(q));
            }
            out.push_str(",\"buckets\":{");
            let mut first = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    let (lo, _) = crate::hdr::hdr_bucket_bounds(i);
                    if !first {
                        out.push(',');
                    }
                    write!(out, "\"{lo}\":{c}").unwrap();
                    first = false;
                }
            }
            out.push_str("}},");
        }
        out.pop(); // trailing comma
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_bucketing_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..8 {
            let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi - 1), i);
        }
    }

    #[test]
    fn histogram_merge_is_order_independent_across_workers() {
        // The satellite test: bucketing must be stable when per-worker
        // histograms are merged, in any order, versus one shared
        // histogram receiving all values.
        let values: Vec<u64> = (0..1000u64).map(|i| (i * 7919) % 5000).collect();

        // One shared histogram, recorded concurrently by four workers.
        let shared = Histogram::new();
        std::thread::scope(|s| {
            for chunk in values.chunks(250) {
                let shared = &shared;
                s.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });

        // Four private per-worker histograms, merged at join.
        let workers: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for (h, chunk) in workers.iter().zip(values.chunks(250)) {
            for &v in chunk {
                h.record(v);
            }
        }
        let mut forward = HistogramSnapshot::empty();
        for h in &workers {
            forward.merge(&h.snapshot());
        }
        let mut reverse = HistogramSnapshot::empty();
        for h in workers.iter().rev() {
            reverse.merge(&h.snapshot());
        }

        assert_eq!(forward, reverse, "merge must be order-independent");
        assert_eq!(
            forward,
            shared.snapshot(),
            "merged per-worker histograms must equal concurrent shared recording"
        );
        assert_eq!(forward.count, 1000);
    }

    #[test]
    fn timing_guard_nests() {
        assert!(!timing_enabled());
        let a = TimingGuard::enable();
        {
            let _b = TimingGuard::enable();
            assert!(timing_enabled());
        }
        assert!(timing_enabled());
        drop(a);
        assert!(!timing_enabled());
    }

    #[test]
    fn snapshot_exports_text_and_json() {
        let reg = MetricsRegistry::default();
        reg.forward_passes.add(3);
        reg.workspace_hits.add(5);
        reg.workspace_misses.inc();
        reg.batch_sizes.record(4);
        reg.batch_sizes.record(4);
        reg.forward_latency_us.record(900);
        let snap = reg.snapshot();

        let text = snap.to_text();
        assert!(text.contains("forward_passes 3"));
        assert!(text.contains("workspace_hits 5"));
        assert!(text.contains("batch_sizes count 2"));

        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"forward_passes\":3"));
        assert!(json.contains("\"batch_sizes\":{\"count\":2"));
        // Bucket for 4 is [4,8): keyed by its lower bound.
        assert!(json.contains("\"4\":2"));
    }

    #[test]
    fn registry_reset_clears_everything() {
        let reg = MetricsRegistry::default();
        reg.forward_passes.inc();
        reg.layer_time_us.record(10);
        reg.arena_bytes.record_max(1024);
        reg.fused_layers.set(7);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.forward_passes, 0);
        assert_eq!(snap.layer_time_us.count, 0);
        assert_eq!(snap.arena_bytes, 0);
        assert_eq!(snap.fused_layers, 0, "fused_layers is a workload metric");
    }

    #[test]
    fn snapshot_reports_quantiles() {
        let reg = MetricsRegistry::default();
        for v in 1..=100u64 {
            reg.forward_latency_us.record(v * 10);
        }
        let snap = reg.snapshot();
        let (p50, p90, p95, p99) = snap.forward_latency_us.percentiles().unwrap();
        // True percentiles are 500/900/950/990 µs; estimates carry the
        // documented <= 1/32 relative bucket error.
        for (est, truth) in [(p50, 500u64), (p90, 900), (p95, 950), (p99, 990)] {
            assert!(
                est <= truth && (truth - est) as f64 <= (truth as f64 / 32.0).max(1.0),
                "estimate {est} for true {truth}"
            );
        }
        let text = snap.to_text();
        assert!(text.contains(&format!("p50 {p50}")), "{text}");
        assert!(text.contains(&format!("p99 {p99}")), "{text}");
        let json = snap.to_json();
        assert!(json.contains(&format!("\"p95\":{p95}")), "{json}");
        // Empty histograms export their quantiles as JSON null.
        assert!(json.contains("\"layer_time_us\":{\"count\":0,\"sum\":0,\"mean\":0,\"p50\":null"));
    }

    /// The satellite fix: a mid-run `reset` cannot leave a stale
    /// high-water mark behind — the gauge restarts from zero and the
    /// next `record_max` republishes only what is observed *after* the
    /// reset. Experiments that snapshot for a baseline therefore reset
    /// before their warm-up, so the captured mark covers exactly their
    /// own run.
    #[test]
    fn reset_then_record_max_republishes_current_high_water() {
        let reg = MetricsRegistry::default();
        reg.arena_bytes.record_max(1_000_000); // pre-run peak (stale)
        reg.reset();
        assert_eq!(reg.snapshot().arena_bytes, 0, "reset clears the mark");
        reg.arena_bytes.record_max(4096); // what this run actually uses
        assert_eq!(
            reg.snapshot().arena_bytes,
            4096,
            "post-reset mark reflects only post-reset observations"
        );
        // A smaller later observation does not lower it (still a max).
        reg.arena_bytes.record_max(1024);
        assert_eq!(reg.snapshot().arena_bytes, 4096);
    }

    /// `kernel_path` is an environment descriptor published once by the
    /// dispatch layer; a between-experiment reset must not erase it.
    /// `precision_path` follows the same contract.
    #[test]
    fn reset_preserves_kernel_path() {
        let reg = MetricsRegistry::default();
        reg.kernel_path.set(2);
        reg.precision_path.set(2);
        reg.forward_passes.inc();
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.forward_passes, 0);
        assert_eq!(snap.kernel_path, 2, "reset must keep the kernel path");
        assert_eq!(kernel_path_name(snap.kernel_path), "avx2");
        assert_eq!(snap.precision_path, 2, "reset must keep the precision path");
        assert_eq!(precision_path_name(snap.precision_path), "int8");
    }

    /// The DAG scheduler metrics are workload metrics (unlike
    /// `kernel_path`): reset clears all five, and the push/chained
    /// counters export alongside the rest.
    #[test]
    fn dag_metrics_are_workload_metrics() {
        let reg = MetricsRegistry::default();
        reg.dag_parallel_passes.inc();
        reg.dag_queue_pushes.add(3);
        reg.dag_chained_steps.add(4);
        reg.dag_workers.set(2);
        reg.dag_critical_path_us.set(1500);
        let snap = reg.snapshot();
        assert_eq!(snap.dag_parallel_passes, 1);
        assert_eq!(snap.dag_queue_pushes + snap.dag_chained_steps, 7);
        assert!(snap.to_text().contains("dag_workers 2"));
        assert!(snap.to_json().contains("\"dag_critical_path_us\":1500"));
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.dag_parallel_passes, 0);
        assert_eq!(snap.dag_queue_pushes, 0);
        assert_eq!(snap.dag_chained_steps, 0);
        assert_eq!(snap.dag_workers, 0);
        assert_eq!(snap.dag_critical_path_us, 0);
    }

    /// The serving metrics are workload metrics: reset clears them all,
    /// the counters export as scalars, and the occupancy/latency
    /// histograms ride the standard histogram exporters.
    #[test]
    fn serve_metrics_are_workload_metrics() {
        let reg = MetricsRegistry::default();
        reg.serve_requests.add(10);
        reg.serve_admitted.add(8);
        reg.serve_shed.add(2);
        reg.serve_batches.add(3);
        reg.serve_queue_depth.record_max(6);
        reg.serve_batch_occupancy.record(4);
        reg.serve_latency_us.record(12_000);
        let snap = reg.snapshot();
        assert_eq!(snap.serve_requests, snap.serve_admitted + snap.serve_shed);
        let text = snap.to_text();
        assert!(text.contains("serve_shed 2"));
        assert!(text.contains("serve_queue_depth 6"));
        assert!(text.contains("serve_batch_occupancy count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"serve_batches\":3"));
        assert!(json.contains("\"serve_latency_us\":{\"count\":1"));
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.serve_requests, 0);
        assert_eq!(snap.serve_shed, 0);
        assert_eq!(snap.serve_queue_depth, 0);
        assert_eq!(snap.serve_batch_occupancy.count, 0);
        assert_eq!(snap.serve_latency_us.count, 0);
    }

    #[test]
    fn kernel_path_names_decode() {
        assert_eq!(kernel_path_name(0), "unset");
        assert_eq!(kernel_path_name(1), "scalar");
        assert_eq!(kernel_path_name(2), "avx2");
        assert_eq!(kernel_path_name(3), "avx2-fma");
        assert_eq!(kernel_path_name(99), "unknown");
    }

    #[test]
    fn precision_path_names_decode() {
        assert_eq!(precision_path_name(0), "unset");
        assert_eq!(precision_path_name(1), "f32");
        assert_eq!(precision_path_name(2), "int8");
        assert_eq!(precision_path_name(99), "unknown");
    }
}
