//! Hand-rolled JSON rendering helpers shared by the exporters.
//!
//! `cap-obs` is dependency-free by contract, so every exporter
//! (metrics, profile reports, Chrome traces) writes JSON by hand. These
//! helpers centralize the two places hand-rolled JSON goes wrong:
//! string escaping and non-finite floats (`NaN`/`inf` are not JSON —
//! they render as `null`). `crates/bench/tests/json_exports.rs` parses
//! every exporter's output with a real JSON parser to keep this honest.

use std::fmt::Write;

/// Append `s` to `out` as a JSON string literal, quotes included.
///
/// Escapes the two mandatory characters (`"` and `\`) plus control
/// characters below `0x20` (named escapes for the common whitespace,
/// `\u00XX` for the rest). Everything else — including multi-byte
/// UTF-8 — passes through unchanged, which is valid JSON.
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float as a JSON number, or `null` when it is not finite
/// (`NaN` and `±inf` have no JSON representation).
pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        write!(out, "{v}").unwrap();
    } else {
        out.push_str("null");
    }
}

/// Append an optional integer as a JSON number, or `null` when absent
/// (used for quantiles of empty histograms).
pub(crate) fn write_json_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => write!(out, "{v}").unwrap(),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> String {
        let mut out = String::new();
        write_json_str(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(esc("plain"), "\"plain\"");
        assert_eq!(esc("a\"b"), "\"a\\\"b\"");
        assert_eq!(esc("a\\b"), "\"a\\\\b\"");
        assert_eq!(esc("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(esc("\u{1}"), "\"\\u0001\"");
        assert_eq!(esc("héllo"), "\"héllo\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        let mut out = String::new();
        write_json_f64(&mut out, f64::NAN);
        out.push(',');
        write_json_f64(&mut out, f64::INFINITY);
        out.push(',');
        write_json_f64(&mut out, 1.5);
        assert_eq!(out, "null,null,1.5");
    }

    #[test]
    fn optional_u64_renders_null_when_absent() {
        let mut out = String::new();
        write_json_opt_u64(&mut out, Some(7));
        out.push(',');
        write_json_opt_u64(&mut out, None);
        assert_eq!(out, "7,null");
    }
}
