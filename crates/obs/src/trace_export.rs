//! Chrome `trace_event` export: turn collected spans into a timeline
//! file Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` can
//! open.
//!
//! Any `Vec<SpanRecord>` works — a [`CollectingTracer`]'s take, a
//! [`FlightRecorder`](crate::FlightRecorder) dump — because PR 4's
//! [`SpanRecord`] carries everything a timeline needs: a `start` offset
//! on the tracer's shared epoch and the recording thread's `tid`.
//! Each span becomes one complete (`"ph":"X"`) event; events sharing a
//! `tid` land on the same track, where the viewer nests them by time
//! containment — so `Layer` spans stack under their `Forward` span,
//! and each [`ParallelEngine`](https://docs.rs/cap-cnn) worker gets its
//! own track (its own thread, hence its own `tid`) headed by its
//! `Worker` span. Thread-name metadata events label worker tracks
//! `worker-<index>`.
//!
//! [`CollectingTracer`]: crate::CollectingTracer
//!
//! Produce a file with the wired-in consumer:
//!
//! ```sh
//! cargo run --release -p cap-bench --bin repro -- --exp profile --trace-out trace.json
//! ```
//!
//! then load `trace.json` in Perfetto ("Open trace file"). The
//! round-trip (span count, names, per-tid nesting) is asserted by
//! `crates/bench/tests/trace_roundtrip.rs`.

use crate::jsonutil::write_json_str;
use crate::span::{SpanRecord, SpanScope};
use std::fmt::Write;

/// Render spans as a Chrome `trace_event` JSON object
/// (`{"traceEvents": [...]}`), one `"ph":"X"` complete event per span
/// plus one `thread_name` metadata event per distinct `tid`.
///
/// Timestamps (`ts`) and durations (`dur`) are microseconds, as the
/// format requires; `ts` is the span's [`SpanRecord::start`] offset, so
/// spans from one tracer share a coherent timeline. The span's scope
/// tag becomes the event category (`cat`), and kind/shape/index ride
/// along under `args`.
///
/// ```
/// use cap_obs::{trace_export::chrome_trace_json, CollectingTracer, SpanInfo, SpanScope, Tracer};
/// use std::time::Duration;
///
/// let t = CollectingTracer::new();
/// t.span_exit(&SpanInfo::new(SpanScope::Layer, "conv1"), Duration::from_micros(250));
/// let json = chrome_trace_json(&t.take_spans());
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"name\":\"conv1\""));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    // Track labels, by decreasing precedence: a tid that carried a
    // `Worker` span is an engine worker ("worker-<index>"); one that
    // carried `ServeCompute` spans is a router worker slot
    // ("serve-worker-<index>"); one that carried request-lifecycle
    // spans is a tenant track ("tenant-<name>"); anything else is a
    // plain thread.
    #[derive(Clone, PartialEq)]
    enum TrackLabel {
        Plain,
        Tenant(String),
        ServeWorker(usize),
        Worker(usize),
    }
    fn rank(l: &TrackLabel) -> u8 {
        match l {
            TrackLabel::Plain => 0,
            TrackLabel::Tenant(_) => 1,
            TrackLabel::ServeWorker(_) => 2,
            TrackLabel::Worker(_) => 3,
        }
    }
    let mut tids: Vec<(u64, TrackLabel)> = Vec::new();
    for s in spans {
        let candidate = match s.scope {
            SpanScope::Worker => TrackLabel::Worker(s.index),
            SpanScope::ServeCompute => TrackLabel::ServeWorker(s.index),
            SpanScope::Request | SpanScope::QueueWait | SpanScope::BatchAssembly => {
                TrackLabel::Tenant(s.name.clone())
            }
            _ => TrackLabel::Plain,
        };
        match tids.iter_mut().find(|(t, _)| *t == s.tid) {
            Some((_, label)) => {
                if rank(&candidate) > rank(label) {
                    *label = candidate;
                }
            }
            None => tids.push((s.tid, candidate)),
        }
    }
    tids.sort_by_key(|&(t, _)| t);
    for (tid, track) in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        let label = match track {
            TrackLabel::Worker(w) => format!("worker-{w}"),
            TrackLabel::ServeWorker(w) => format!("serve-worker-{w}"),
            TrackLabel::Tenant(name) => format!("tenant-{name}"),
            TrackLabel::Plain => format!("thread-{tid}"),
        };
        write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        )
        .unwrap();
        write_json_str(&mut out, &label);
        out.push_str("}}");
    }

    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        write_json_str(&mut out, &s.name);
        out.push_str(",\"cat\":");
        write_json_str(&mut out, s.scope.tag());
        let ts = s.start.as_secs_f64() * 1e6;
        let dur = s.elapsed.as_secs_f64() * 1e6;
        write!(
            out,
            ",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{}",
            s.tid
        )
        .unwrap();
        out.push_str(",\"args\":{\"kind\":");
        write_json_str(&mut out, &s.kind);
        let [n, c, h, w] = s.shape;
        write!(
            out,
            ",\"shape\":[{n},{c},{h},{w}],\"index\":{}}}}}",
            s.index
        )
        .unwrap();
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanInfo, Tracer};
    use crate::CollectingTracer;
    use std::time::Duration;

    fn record(scope: SpanScope, name: &str, tid: u64, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            scope,
            name: name.into(),
            kind: String::new(),
            shape: [0; 4],
            index: 3,
            elapsed: Duration::from_micros(dur_us),
            start: Duration::from_micros(start_us),
            tid,
        }
    }

    #[test]
    fn one_event_per_span_plus_thread_metadata() {
        let spans = vec![
            record(SpanScope::Forward, "net", 1, 0, 100),
            record(SpanScope::Layer, "conv1", 1, 0, 60),
            record(SpanScope::Worker, "worker", 2, 0, 100),
        ];
        let json = chrome_trace_json(&spans);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2, "{json}");
        assert!(json.contains("\"name\":\"worker-3\""), "{json}");
        assert!(json.contains("\"name\":\"thread-1\""), "{json}");
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn serve_spans_label_tenant_and_serve_worker_tracks() {
        let spans = vec![
            record(SpanScope::Request, "pruned-60", 1001, 0, 900),
            record(SpanScope::QueueWait, "pruned-60", 1001, 0, 400),
            record(SpanScope::ServeCompute, "pruned-60", 2000, 400, 500),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.contains("\"name\":\"tenant-pruned-60\""), "{json}");
        assert!(json.contains("\"name\":\"serve-worker-3\""), "{json}");
        assert!(!json.contains("thread-1001"), "{json}");
    }

    #[test]
    fn timestamps_are_microseconds_from_start_offset() {
        let json = chrome_trace_json(&[record(SpanScope::Layer, "l", 1, 1500, 250)]);
        assert!(json.contains("\"ts\":1500.000"), "{json}");
        assert!(json.contains("\"dur\":250.000"), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let json = chrome_trace_json(&[record(SpanScope::Layer, "we\"ird\\name", 1, 0, 1)]);
        assert!(json.contains("\"we\\\"ird\\\\name\""), "{json}");
    }

    #[test]
    fn empty_span_list_is_valid_empty_trace() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn collecting_tracer_spans_export_directly() {
        let t = CollectingTracer::new();
        t.span_exit(
            &SpanInfo::new(SpanScope::Layer, "conv1"),
            Duration::from_micros(10),
        );
        let json = chrome_trace_json(&t.take_spans());
        assert!(json.contains("\"cat\":\"layer\""));
    }
}
