//! Dependency-free Prometheus text-format exposition (format 0.0.4).
//!
//! Three pieces:
//!
//! * [`PromWriter`] — an append-only builder that renders metric
//!   families with `# HELP`/`# TYPE` headers, label escaping, and
//!   HDR-histogram quantile summaries (`{quantile="…"}` sample lines
//!   plus `_sum`/`_count`, no `_bucket` series — the log-linear bucket
//!   layout is an implementation detail, quantiles are the contract).
//! * [`prometheus_text`] — the standard exposition of a
//!   [`MetricsSnapshot`]: every registry counter as `cap_<name>_total`,
//!   every gauge as `cap_<name>`, every histogram as a summary.
//! * [`validate`] — a strict format checker (used by the CI smoke
//!   step): well-formed `# TYPE` lines, no duplicate families, every
//!   sample parseable and preceded by its family's type declaration.
//!
//! [`spawn_exporter`] serves the current registry snapshot over a std
//! `TcpListener` (HTTP/1.0, one response per connection) for scraping
//! a live run; the CLI wires it to the `CAP_OBS_PROM_ADDR` env knob.
//!
//! Everything here is plain `std` — `cap-obs` stays dependency-free.

use crate::hdr::HdrSnapshot;
use crate::metrics::{metrics, MetricsSnapshot};
use std::fmt::Write as _;
use std::io::{self, Read, Write as _};
use std::net::{SocketAddr, TcpListener};

/// The sample types this writer can declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyType {
    Counter,
    Gauge,
    Summary,
}

impl FamilyType {
    fn as_str(self) -> &'static str {
        match self {
            FamilyType::Counter => "counter",
            FamilyType::Gauge => "gauge",
            FamilyType::Summary => "summary",
        }
    }
}

/// Append-only builder for Prometheus text exposition.
///
/// `# HELP`/`# TYPE` headers are emitted once per family on first use;
/// later samples for the same family (e.g. per-tenant label sets)
/// append below it. Re-declaring a family with a different type
/// panics — that is a programming error the format forbids.
///
/// ```
/// use cap_obs::PromWriter;
///
/// let mut w = PromWriter::new();
/// w.counter("cap_demo_requests_total", "Requests.", &[("tenant", "a")], 7);
/// w.counter("cap_demo_requests_total", "Requests.", &[("tenant", "b")], 3);
/// let text = w.finish();
/// assert_eq!(text.matches("# TYPE").count(), 1);
/// assert!(text.contains("cap_demo_requests_total{tenant=\"b\"} 3"));
/// ```
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    declared: Vec<(String, FamilyType)>,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &str, ty: FamilyType, help: &str) {
        if let Some((_, prev)) = self.declared.iter().find(|(n, _)| n == name) {
            assert_eq!(
                *prev, ty,
                "metric family {name} re-declared with a different type"
            );
            return;
        }
        if !self.out.is_empty() {
            self.out.push('\n');
        }
        write!(self.out, "# HELP {name} ").unwrap();
        // HELP text escaping: backslash and newline only.
        for c in help.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c => self.out.push(c),
            }
        }
        self.out.push('\n');
        writeln!(self.out, "# TYPE {name} {}", ty.as_str()).unwrap();
        self.declared.push((name.to_string(), ty));
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                write!(self.out, "{k}=\"").unwrap();
                // Label value escaping: backslash, quote, newline.
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        if value.is_finite() {
            writeln!(self.out, " {value}").unwrap();
        } else if value.is_nan() {
            self.out.push_str(" NaN\n");
        } else if value > 0.0 {
            self.out.push_str(" +Inf\n");
        } else {
            self.out.push_str(" -Inf\n");
        }
    }

    /// One counter sample. By convention `name` ends in `_total`.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.declare(name, FamilyType::Counter, help);
        self.sample(name, labels, value as f64);
    }

    /// One gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.declare(name, FamilyType::Gauge, help);
        self.sample(name, labels, value);
    }

    /// An HDR histogram as a Prometheus *summary*: one `quantile`
    /// sample per standard percentile plus `<name>_sum` and
    /// `<name>_count`. Empty histograms emit only the zero
    /// `_sum`/`_count` (a quantile of nothing is not a number worth
    /// publishing).
    pub fn summary(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &HdrSnapshot) {
        self.declare(name, FamilyType::Summary, help);
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.95, "0.95"), (0.99, "0.99")] {
            if let Some(v) = h.quantile(q) {
                let mut with_q: Vec<(&str, &str)> = labels.to_vec();
                with_q.push(("quantile", label));
                self.sample(name, &with_q, v as f64);
            }
        }
        let sum = format!("{name}_sum");
        let count = format!("{name}_count");
        self.sample(&sum, labels, h.sum as f64);
        self.sample(&count, labels, h.count as f64);
    }

    /// Finish and return the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Render a [`MetricsSnapshot`] as Prometheus text: every registry
/// scalar (counters as `cap_<name>_total`, gauges as `cap_<name>`) and
/// every HDR histogram as a quantile summary.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut w = PromWriter::new();
    append_registry(&mut w, snap);
    w.finish()
}

/// [`prometheus_text`] in appendable form: write the registry families
/// into an existing writer, so callers can extend the exposition with
/// their own families (e.g. the serving layer's per-tenant section)
/// before finishing.
pub fn append_registry(w: &mut PromWriter, snap: &MetricsSnapshot) {
    let c = |w: &mut PromWriter, name: &str, help: &str, v: u64| {
        w.counter(&format!("cap_{name}_total"), help, &[], v);
    };
    let g = |w: &mut PromWriter, name: &str, help: &str, v: u64| {
        w.gauge(&format!("cap_{name}"), help, &[], v as f64);
    };
    c(
        w,
        "forward_passes",
        "Forward passes executed.",
        snap.forward_passes,
    );
    c(
        w,
        "gemm_time_ns",
        "Nanoseconds inside packed-GEMM kernels.",
        snap.gemm_time_ns,
    );
    c(
        w,
        "im2col_time_ns",
        "Nanoseconds inside im2col lowering.",
        snap.im2col_time_ns,
    );
    c(
        w,
        "workspace_hits",
        "Workspace-pool checkouts satisfied by recycling.",
        snap.workspace_hits,
    );
    c(
        w,
        "workspace_misses",
        "Workspace-pool checkouts that built a new workspace.",
        snap.workspace_misses,
    );
    c(
        w,
        "grid_candidates",
        "Grid-exploration candidates evaluated.",
        snap.grid_candidates,
    );
    c(
        w,
        "allocation_runs",
        "Algorithm 1 allocation runs.",
        snap.allocation_runs,
    );
    c(
        w,
        "dag_parallel_passes",
        "Forward passes on the DAG-parallel scheduler.",
        snap.dag_parallel_passes,
    );
    c(
        w,
        "dag_queue_pushes",
        "DAG scheduler ready-queue insertions.",
        snap.dag_queue_pushes,
    );
    c(
        w,
        "dag_chained_steps",
        "DAG steps run via the chained fast path.",
        snap.dag_chained_steps,
    );
    c(
        w,
        "serve_requests",
        "Requests offered to the serve router.",
        snap.serve_requests,
    );
    c(
        w,
        "serve_admitted",
        "Requests admitted into a tenant queue.",
        snap.serve_admitted,
    );
    c(
        w,
        "serve_shed",
        "Requests shed at admission.",
        snap.serve_shed,
    );
    c(
        w,
        "serve_batches",
        "Batches dispatched to the engine.",
        snap.serve_batches,
    );
    g(
        w,
        "arena_bytes",
        "High-water mark of arena activation bytes.",
        snap.arena_bytes,
    );
    g(
        w,
        "kernel_path",
        "Dispatched SIMD microkernel backend (code).",
        snap.kernel_path,
    );
    g(
        w,
        "precision_path",
        "Resolved inference precision for weighted layers (code).",
        snap.precision_path,
    );
    g(
        w,
        "fused_layers",
        "Fused producer-ReLU steps in the last network.",
        snap.fused_layers,
    );
    g(
        w,
        "dag_workers",
        "Worker count of the most recent forward pass.",
        snap.dag_workers,
    );
    g(
        w,
        "dag_critical_path_us",
        "Critical-path microseconds of the last analyzed network.",
        snap.dag_critical_path_us,
    );
    g(
        w,
        "serve_queue_depth",
        "High-water mark of tenant queue depth.",
        snap.serve_queue_depth,
    );
    for (name, h) in snap.histograms() {
        w.summary(
            &format!("cap_{name}"),
            "Log-linear HDR histogram, <=1/32 relative quantile error.",
            &[],
            h,
        );
    }
}

/// Counts reported by a successful [`validate`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromStats {
    /// Metric families declared by `# TYPE` lines.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Check `text` against the exposition-format rules this crate relies
/// on: well-formed `# TYPE` lines with known types, no family declared
/// twice, every sample line parseable (`name[{labels}] value`) with a
/// valid metric name, a float value, and a preceding type declaration
/// for its family (modulo the summary `_sum`/`_count` suffixes).
///
/// Returns parse statistics, or the first violation with its line
/// number.
pub fn validate(text: &str) -> Result<PromStats, String> {
    let mut families: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_ascii_whitespace();
            let (Some(name), Some(ty), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed TYPE line: {line:?}"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&ty) {
                return Err(format!("line {n}: unknown metric type {ty:?}"));
            }
            if families.iter().any(|(f, _)| f == name) {
                return Err(format!("line {n}: duplicate TYPE for family {name:?}"));
            }
            families.push((name.to_string(), ty.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_labels, rest) = match line.find([' ', '{']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line[i..]
                    .find('}')
                    .map(|j| i + j)
                    .ok_or_else(|| format!("line {n}: unterminated label set: {line:?}"))?;
                let labels = &line[i + 1..close];
                // Labels: k="v" pairs; validate label names and quoting.
                if !labels.is_empty() {
                    for pair in split_labels(labels) {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("line {n}: malformed label {pair:?}"))?;
                        if !valid_metric_name(k) {
                            return Err(format!("line {n}: invalid label name {k:?}"));
                        }
                        if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                            return Err(format!("line {n}: unquoted label value {v:?}"));
                        }
                    }
                }
                (&line[..i], line[close + 1..].trim_start())
            }
            Some(i) => (&line[..i], line[i + 1..].trim_start()),
            None => return Err(format!("line {n}: sample without value: {line:?}")),
        };
        if !valid_metric_name(name_labels) {
            return Err(format!("line {n}: invalid metric name {name_labels:?}"));
        }
        let value = rest.split_ascii_whitespace().next().unwrap_or("");
        let numeric =
            matches!(value, "NaN" | "+Inf" | "-Inf" | "Inf") || value.parse::<f64>().is_ok();
        if !numeric {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
        // Family lookup: exact, or summary base for _sum/_count.
        let base = name_labels
            .strip_suffix("_sum")
            .or_else(|| name_labels.strip_suffix("_count"))
            .filter(|b| {
                families
                    .iter()
                    .any(|(f, t)| f == b && (t == "summary" || t == "histogram"))
            })
            .unwrap_or(name_labels);
        if !families.iter().any(|(f, _)| f == base) {
            return Err(format!(
                "line {n}: sample {name_labels:?} has no preceding TYPE declaration"
            ));
        }
        samples += 1;
    }
    Ok(PromStats {
        families: families.len(),
        samples,
    })
}

/// Split a label body on commas that sit outside quoted values.
fn split_labels(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

/// Serve the live registry snapshot over HTTP for Prometheus scraping.
///
/// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port),
/// spawns a detached responder thread, and returns the bound address.
/// Every connection gets an HTTP/1.0 `200` with
/// `Content-Type: text/plain; version=0.0.4` and the current
/// [`prometheus_text`] of the global registry, then the connection
/// closes — the minimal contract a Prometheus scraper needs. The
/// thread runs for the life of the process; exporters are scrape
/// endpoints, not managed services.
pub fn spawn_exporter(addr: &str) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("cap-prom-exporter".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                // Drain the request head; the path is irrelevant —
                // every request gets the metrics page.
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let body = prometheus_text(&metrics().snapshot());
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
            }
        })?;
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdr::HdrHistogram;

    #[test]
    fn writer_emits_headers_once_per_family() {
        let mut w = PromWriter::new();
        w.counter("cap_x_total", "X.", &[("tenant", "a")], 1);
        w.counter("cap_x_total", "X.", &[("tenant", "b")], 2);
        w.gauge("cap_y", "Y.", &[], 3.5);
        let text = w.finish();
        assert_eq!(text.matches("# TYPE cap_x_total counter").count(), 1);
        assert!(text.contains("cap_x_total{tenant=\"a\"} 1"));
        assert!(text.contains("cap_x_total{tenant=\"b\"} 2"));
        assert!(text.contains("cap_y 3.5"));
        validate(&text).expect("writer output must validate");
    }

    #[test]
    fn summary_renders_quantiles_sum_count() {
        let h = HdrHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.summary("cap_lat_us", "Latency.", &[], &h.snapshot());
        let text = w.finish();
        assert!(text.contains("# TYPE cap_lat_us summary"));
        assert!(text.contains("cap_lat_us{quantile=\"0.5\"}"));
        assert!(text.contains("cap_lat_us_sum 5050"));
        assert!(text.contains("cap_lat_us_count 100"));
        assert!(!text.contains("_bucket"), "summaries must not emit buckets");
        validate(&text).expect("summary output must validate");
    }

    #[test]
    fn empty_summary_skips_quantiles() {
        let mut w = PromWriter::new();
        w.summary("cap_empty_us", "Empty.", &[], &HdrSnapshot::empty());
        let text = w.finish();
        assert!(!text.contains("quantile"));
        assert!(text.contains("cap_empty_us_count 0"));
        validate(&text).expect("empty summary must validate");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.gauge("cap_z", "Z.", &[("k", "a\"b\\c\nd")], 1.0);
        let text = w.finish();
        assert!(text.contains("k=\"a\\\"b\\\\c\\nd\""));
        validate(&text).expect("escaped labels must validate");
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn redeclaring_with_different_type_panics() {
        let mut w = PromWriter::new();
        w.counter("cap_x_total", "X.", &[], 1);
        w.gauge("cap_x_total", "X.", &[], 1.0);
    }

    #[test]
    fn registry_exposition_validates_and_covers_scalars() {
        let text = prometheus_text(&metrics().snapshot());
        let stats = validate(&text).expect("registry exposition must validate");
        // 21 scalar families + 5 histogram summaries.
        assert_eq!(stats.families, 26);
        assert!(text.contains("cap_forward_passes_total"));
        assert!(text.contains("cap_precision_path"));
        assert!(text.contains("cap_serve_queue_depth"));
        assert!(text.contains("# TYPE cap_serve_latency_us summary"));
    }

    #[test]
    fn validator_rejects_malformed_input() {
        assert!(validate("# TYPE cap_x bogus\ncap_x 1").is_err());
        assert!(validate("# TYPE cap_x counter\n# TYPE cap_x counter\ncap_x 1").is_err());
        assert!(validate("cap_orphan 1").is_err());
        assert!(validate("# TYPE cap_x counter\ncap_x notanumber").is_err());
        assert!(validate("# TYPE cap_x counter\ncap_x{k=unquoted} 1").is_err());
        assert!(validate("# TYPE cap_x counter\n9bad 1").is_err());
    }

    #[test]
    fn exporter_serves_a_scrapeable_page() {
        let addr = spawn_exporter("127.0.0.1:0").expect("bind");
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(response.contains("text/plain; version=0.0.4"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        validate(body).expect("scraped body must validate");
    }
}
