//! # cap-obs
//!
//! Structured observability for the inference pipeline: answer "where
//! did this forward pass spend its time" and "did the arena re-allocate"
//! without editing code, the way Perseus-style per-layer profiling does
//! for multi-tenant cost characterization.
//!
//! Three cooperating pieces:
//!
//! * [`Tracer`] — span enter/exit hooks threaded through
//!   `Network::forward_into_traced` (one span per DAG node, tagged with
//!   layer name/kind/shape), `ParallelEngine` workers (one span per
//!   worker shard) and `cap-core`'s grid evaluation / Algorithm 1.
//!   [`NoopTracer`] is the disabled state; [`CollectingTracer`] records
//!   [`SpanRecord`]s for aggregation.
//! * [`MetricsRegistry`] — a process-global, lock-free set of
//!   [`Counter`]s, [`Gauge`]s and histograms (forward-pass latency,
//!   per-layer time, GEMM/im2col split, arena bytes, workspace pool
//!   hits/misses, batch sizes) with plain-text and JSON exporters. The
//!   timed histograms are log-linear [`HdrHistogram`]s, so snapshots
//!   report p50/p90/p95/p99 with a documented ≤ 1/32 relative error.
//! * [`ProfileReport`] — turns collected spans into a per-layer time
//!   table comparable across pruning levels.
//! * [`FlightRecorder`] — an always-on, fixed-capacity, lock-free ring
//!   of the last N spans, cheap enough for release builds; dump it on
//!   demand or from a panic hook.
//! * [`trace_export`] — renders any span list as a Chrome
//!   `trace_event` JSON timeline loadable in Perfetto.
//!
//! # Zero-overhead-when-disabled contract
//!
//! Instrumented hot paths are generic over `T: Tracer` and guard every
//! clock read behind [`Tracer::enabled`]. [`NoopTracer::enabled`] is an
//! `#[inline(always)] false`, so the monomorphized no-op path contains
//! no `Instant::now` calls, no allocation, and folds each span down to
//! nothing. Always-on metrics (counters/gauges) are single relaxed
//! atomic operations; timed metrics are additionally gated behind the
//! process-wide [`timing_enabled`] flag (one relaxed load when off).
//! The allocator-counting test in `cap-cnn` (`tests/zero_alloc.rs`)
//! verifies the disabled path allocation-free; `OBSERVABILITY.md` at the
//! repository root documents the full contract.

#![warn(missing_docs)]

pub mod flight;
pub mod hdr;
mod jsonutil;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod trace_export;

pub use flight::FlightRecorder;
pub use hdr::{HdrHistogram, HdrSnapshot};
pub use metrics::{
    kernel_path_name, metrics, precision_path_name, timing_enabled, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, TimingGuard,
};
pub use prom::{
    append_registry, prometheus_text, spawn_exporter, validate as validate_prometheus, PromStats,
    PromWriter,
};
pub use report::{DagSummary, LayerRow, ProfileReport};
pub use slo::{BurnAlert, BurnKind, SloPolicy, SloStanding, SloTracker};
pub use span::{
    current_tid, CollectingTracer, NoopTracer, SpanInfo, SpanRecord, SpanScope, TeeTracer, Tracer,
};
pub use timeseries::{TimeSeries, Window};
pub use trace_export::chrome_trace_json;
