//! SLO error budgets and multi-window burn-rate alerting.
//!
//! Implements the standard SRE construction: an availability-style SLO
//! target (e.g. "99 % of requests meet their deadline") defines an
//! error budget of `1 - target`; the *burn rate* over a lookback of
//! recent windows is the observed bad fraction divided by that budget
//! (burn 1.0 = consuming the budget exactly as fast as allowed). Two
//! lookbacks fire alerts: a short fast-burn window that catches
//! outages, and a long slow-burn window that catches sustained
//! degradation. Alerts are edge-triggered — one [`BurnAlert`] per
//! excursion above the threshold, not one per window.
//!
//! The tracker is fed window-by-window from a
//! [`TimeSeries`](crate::TimeSeries) (good/bad counter deltas in
//! ascending window order), so its entire output — budget consumption
//! and the alert sequence — is a pure function of the windowed series
//! and therefore exactly reproducible under the virtual clock.

use std::collections::VecDeque;
use std::fmt;

/// An SLO target plus the two burn-rate alert rules evaluated over it.
///
/// The default mirrors the canonical SRE-workbook pairing scaled to
/// this codebase's short traces: target 99 %, fast-burn over 1 window
/// at 14.4×, slow-burn over 12 windows at 3×.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Fraction of events that must be good (`0.0 < target < 1.0`);
    /// the error budget is `1.0 - target`.
    pub target: f64,
    /// Lookback length of the fast-burn rule, in windows.
    pub fast_windows: usize,
    /// Burn-rate threshold of the fast-burn rule.
    pub fast_burn: f64,
    /// Lookback length of the slow-burn rule, in windows.
    pub slow_windows: usize,
    /// Burn-rate threshold of the slow-burn rule.
    pub slow_burn: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            target: 0.99,
            fast_windows: 1,
            fast_burn: 14.4,
            slow_windows: 12,
            slow_burn: 3.0,
        }
    }
}

/// Which burn-rate rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnKind {
    /// The short-lookback, high-threshold rule (outage detector).
    Fast,
    /// The long-lookback, low-threshold rule (sustained degradation).
    Slow,
}

impl fmt::Display for BurnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BurnKind::Fast => write!(f, "fast"),
            BurnKind::Slow => write!(f, "slow"),
        }
    }
}

/// One edge-triggered burn-rate alert: the rule crossed its threshold
/// at `window_index` with the given burn rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// Which rule fired.
    pub kind: BurnKind,
    /// The window whose rollup pushed the rate over the threshold.
    pub window_index: u64,
    /// The burn rate at the moment of firing.
    pub burn_rate: f64,
}

/// Point-in-time summary of a tracker, for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStanding {
    /// The SLO target the tracker enforces.
    pub target: f64,
    /// Total good events observed.
    pub good: u64,
    /// Total bad events observed.
    pub bad: u64,
    /// Fraction of the run-wide error budget consumed (1.0 = spent
    /// exactly; > 1.0 = SLO violated over the run).
    pub budget_consumed: f64,
    /// Fast-burn alerts fired so far.
    pub fast_alerts: usize,
    /// Slow-burn alerts fired so far.
    pub slow_alerts: usize,
}

/// Per-SLO error-budget accounting and burn-rate alerting, fed
/// window-by-window.
///
/// ```
/// use cap_obs::{SloPolicy, SloTracker};
///
/// let mut slo = SloTracker::new(SloPolicy::default());
/// slo.record_window(0, 990, 10); // 1% bad = burn 1.0: no alert
/// slo.record_window(1, 800, 200); // 20% bad = burn 20: both rules fire
/// assert_eq!(slo.alerts().len(), 2);
/// assert!(slo.standing().budget_consumed > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SloTracker {
    policy: SloPolicy,
    /// Recent `(window_index, good, bad)` rollups, newest at the back,
    /// trimmed to the slow-burn lookback.
    recent: VecDeque<(u64, u64, u64)>,
    good: u64,
    bad: u64,
    alerts: Vec<BurnAlert>,
    fast_active: bool,
    slow_active: bool,
}

impl SloTracker {
    /// A fresh tracker for `policy`.
    ///
    /// # Panics
    ///
    /// If the target is outside `(0, 1)` or a lookback is 0.
    pub fn new(policy: SloPolicy) -> Self {
        assert!(
            policy.target > 0.0 && policy.target < 1.0,
            "SLO target must be in (0, 1)"
        );
        assert!(
            policy.fast_windows > 0 && policy.slow_windows > 0,
            "burn lookbacks must be positive"
        );
        Self {
            policy,
            recent: VecDeque::new(),
            good: 0,
            bad: 0,
            alerts: Vec::new(),
            fast_active: false,
            slow_active: false,
        }
    }

    /// The policy this tracker evaluates.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Burn rate over the trailing `lookback` window *indexes* ending
    /// at `upto` (absent windows contribute nothing — no traffic burns
    /// no budget). Returns 0 when no events fall in the lookback.
    fn burn_over(&self, upto: u64, lookback: usize) -> f64 {
        let lo = upto.saturating_sub(lookback as u64 - 1);
        let (mut g, mut b) = (0u64, 0u64);
        for &(idx, good, bad) in self.recent.iter().rev() {
            if idx < lo {
                break;
            }
            g += good;
            b += bad;
        }
        let total = g + b;
        if total == 0 {
            return 0.0;
        }
        (b as f64 / total as f64) / (1.0 - self.policy.target)
    }

    /// Feed one window's good/bad deltas. Windows must arrive in
    /// ascending index order (the order a
    /// [`TimeSeries`](crate::TimeSeries) retains them); both rules are
    /// re-evaluated and edge-triggered alerts appended.
    pub fn record_window(&mut self, index: u64, good: u64, bad: u64) {
        debug_assert!(
            self.recent.back().is_none_or(|&(i, _, _)| i < index),
            "windows must be fed in ascending order"
        );
        self.good += good;
        self.bad += bad;
        self.recent.push_back((index, good, bad));
        let keep_from = index.saturating_sub(self.policy.slow_windows as u64 - 1);
        while self.recent.front().is_some_and(|&(i, _, _)| i < keep_from) {
            self.recent.pop_front();
        }

        let fast = self.burn_over(index, self.policy.fast_windows);
        if fast >= self.policy.fast_burn {
            if !self.fast_active {
                self.fast_active = true;
                self.alerts.push(BurnAlert {
                    kind: BurnKind::Fast,
                    window_index: index,
                    burn_rate: fast,
                });
            }
        } else {
            self.fast_active = false;
        }

        let slow = self.burn_over(index, self.policy.slow_windows);
        if slow >= self.policy.slow_burn {
            if !self.slow_active {
                self.slow_active = true;
                self.alerts.push(BurnAlert {
                    kind: BurnKind::Slow,
                    window_index: index,
                    burn_rate: slow,
                });
            }
        } else {
            self.slow_active = false;
        }
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[BurnAlert] {
        &self.alerts
    }

    /// Current summary: totals, budget consumption, alert counts.
    pub fn standing(&self) -> SloStanding {
        let total = self.good + self.bad;
        let budget_consumed = if total == 0 {
            0.0
        } else {
            (self.bad as f64 / total as f64) / (1.0 - self.policy.target)
        };
        SloStanding {
            target: self.policy.target,
            good: self.good,
            bad: self.bad,
            budget_consumed,
            fast_alerts: self
                .alerts
                .iter()
                .filter(|a| a.kind == BurnKind::Fast)
                .count(),
            slow_alerts: self
                .alerts
                .iter()
                .filter(|a| a.kind == BurnKind::Slow)
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy {
            target: 0.99,
            fast_windows: 1,
            fast_burn: 14.4,
            slow_windows: 12,
            slow_burn: 3.0,
        }
    }

    #[test]
    fn clean_windows_consume_no_budget_and_fire_nothing() {
        let mut slo = SloTracker::new(policy());
        for w in 0..20 {
            slo.record_window(w, 1_000, 0);
        }
        let s = slo.standing();
        assert_eq!(s.budget_consumed, 0.0);
        assert!(slo.alerts().is_empty());
    }

    #[test]
    fn fast_burn_is_edge_triggered() {
        let mut slo = SloTracker::new(policy());
        // 20% bad = burn 20 ≥ 14.4 for three consecutive windows: one
        // alert at the rising edge, not three.
        for w in 0..3 {
            slo.record_window(w, 800, 200);
        }
        let fast: Vec<_> = slo
            .alerts()
            .iter()
            .filter(|a| a.kind == BurnKind::Fast)
            .collect();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].window_index, 0);
        assert!((fast[0].burn_rate - 20.0).abs() < 1e-9);
        // Recovery then relapse re-arms the rule.
        slo.record_window(3, 1_000, 0);
        slo.record_window(4, 800, 200);
        assert_eq!(
            slo.alerts()
                .iter()
                .filter(|a| a.kind == BurnKind::Fast)
                .count(),
            2
        );
    }

    #[test]
    fn slow_burn_needs_sustained_degradation() {
        let mut slo = SloTracker::new(policy());
        // 5% bad = burn 5: above slow threshold 3, below fast 14.4.
        // The slow rule's lookback dilutes a single bad window…
        slo.record_window(0, 950, 50);
        let slow_alerts = |s: &SloTracker| {
            s.alerts()
                .iter()
                .filter(|a| a.kind == BurnKind::Slow)
                .count()
        };
        assert_eq!(slow_alerts(&slo), 1, "first window IS the lookback");
        // …but sustained clean traffic clears it and it stays clear.
        for w in 1..13 {
            slo.record_window(w, 1_000, 0);
        }
        assert_eq!(slow_alerts(&slo), 1);
        assert!(!slo.slow_active);
    }

    #[test]
    fn budget_consumption_tracks_totals() {
        let mut slo = SloTracker::new(policy());
        slo.record_window(0, 990, 10); // exactly 1% bad = budget spent 1.0
        let s = slo.standing();
        assert!((s.budget_consumed - 1.0).abs() < 1e-9);
        assert_eq!(s.good, 990);
        assert_eq!(s.bad, 10);
    }

    #[test]
    fn absent_windows_burn_nothing() {
        let mut slo = SloTracker::new(policy());
        slo.record_window(0, 800, 200);
        // A large index gap: the bad window leaves every lookback.
        slo.record_window(100, 1_000, 0);
        assert!(!slo.fast_active && !slo.slow_active);
    }

    #[test]
    fn identical_feeds_yield_identical_alert_sequences() {
        let feed = |slo: &mut SloTracker| {
            for w in 0..30u64 {
                let bad = if w % 7 == 0 { 300 } else { 5 };
                slo.record_window(w, 1_000 - bad, bad);
            }
        };
        let mut a = SloTracker::new(policy());
        let mut b = SloTracker::new(policy());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.alerts(), b.alerts());
        assert_eq!(a.standing(), b.standing());
    }
}
