//! Property tests for the log-linear histogram: the documented
//! quantile error bound holds for arbitrary inputs, and per-worker
//! merges are order-independent.

use cap_obs::hdr::{hdr_bucket_bounds, hdr_index, SUB_BUCKETS};
use cap_obs::{HdrHistogram, HdrSnapshot};
use proptest::prelude::*;

/// Deterministic pseudo-random value stream spanning many magnitudes:
/// Weyl-sequence low bits shifted by a value-dependent exponent, so a
/// single case exercises unit buckets and wide high buckets alike.
fn values(seed: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let x = (seed.wrapping_add(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let shift = (x >> 58) % 40; // exponents 0..40
            (x & 0xffff) >> (16 - (shift % 16).min(16)) << (shift / 2)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// For every quantile, the estimate is the floor of the bucket
    /// containing the true rank statistic, and that bucket's width is
    /// within the documented `max(1, value/SUB_BUCKETS)` bound — i.e.
    /// relative error <= 1/32, exact below 32.
    #[test]
    fn quantile_error_is_within_bucket_bound(
        seed in 0u64..10_000,
        len in 1usize..600,
        qi in 0usize..11,
    ) {
        let q = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0][qi];
        let vals = values(seed, len);
        let h = HdrHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, len as u64);

        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
        let truth = sorted[rank - 1];

        let est = snap.quantile(q).unwrap();
        let (lo, hi) = hdr_bucket_bounds(hdr_index(truth));
        prop_assert_eq!(est, lo, "estimate must be the true value's bucket floor");
        prop_assert!(est <= truth && truth < hi);
        let width = hi - lo;
        prop_assert!(
            width as f64 <= (truth as f64 / SUB_BUCKETS as f64).max(1.0),
            "bucket width {} exceeds bound for value {}",
            width,
            truth
        );
    }

    /// Splitting a value stream across per-worker histograms and
    /// merging the snapshots — in any order — matches one histogram
    /// that saw everything, bit for bit (count, sum, every bucket,
    /// every quantile).
    #[test]
    fn merge_is_order_independent_across_workers(
        seed in 0u64..10_000,
        len in 1usize..600,
        workers in 1usize..7,
    ) {
        let vals = values(seed, len);
        let reference = HdrHistogram::new();
        for &v in &vals {
            reference.record(v);
        }

        let per_worker: Vec<HdrHistogram> = (0..workers).map(|_| HdrHistogram::new()).collect();
        for (i, &v) in vals.iter().enumerate() {
            per_worker[i % workers].record(v);
        }
        let mut forward = HdrSnapshot::empty();
        for h in &per_worker {
            forward.merge(&h.snapshot());
        }
        let mut reverse = HdrSnapshot::empty();
        for h in per_worker.iter().rev() {
            reverse.merge(&h.snapshot());
        }
        // Odd interleaving: fold every second worker first.
        let mut striped = HdrSnapshot::empty();
        for h in per_worker.iter().step_by(2).chain(per_worker.iter().skip(1).step_by(2)) {
            striped.merge(&h.snapshot());
        }

        let expected = reference.snapshot();
        prop_assert_eq!(&forward, &expected);
        prop_assert_eq!(&reverse, &expected);
        prop_assert_eq!(&striped, &expected);
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(forward.quantile(q), expected.quantile(q));
        }
    }
}
