//! Prometheus exposition format checks — including the CI smoke hook.
//!
//! The CI workflow generates a metrics file with
//! `cap serve --metrics-out metrics.prom`, then runs this test with
//! `CAP_PROM_VALIDATE_FILE=metrics.prom`: the on-disk exposition must
//! pass the strict [`cap_obs::validate_prometheus`] checker (`# TYPE`
//! lines, no duplicate families, every sample parseable). Without the
//! env var the test validates the in-process registry exposition, so
//! it is meaningful in a plain `cargo test` too.

use cap_obs::{metrics, prometheus_text, validate_prometheus};

#[test]
fn exposition_is_valid_prometheus_text() {
    let (text, source) = match std::env::var("CAP_PROM_VALIDATE_FILE") {
        Ok(path) => (
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("CAP_PROM_VALIDATE_FILE {path:?}: {e}")),
            path,
        ),
        Err(_) => (prometheus_text(&metrics().snapshot()), "registry".into()),
    };
    let stats = validate_prometheus(&text)
        .unwrap_or_else(|e| panic!("invalid exposition from {source}: {e}"));
    assert!(
        stats.families >= 25,
        "{source}: expected at least the 25 registry families, got {}",
        stats.families
    );
    assert!(
        stats.samples >= stats.families,
        "{source}: every family needs at least one sample"
    );
    // The registry counters must be present whichever source we read.
    for family in [
        "cap_forward_passes_total",
        "cap_serve_requests_total",
        "cap_serve_latency_us",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "{source}: missing family {family}"
        );
    }
}
