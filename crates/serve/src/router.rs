//! The dynamic-batching request router: per-tenant bounded queues,
//! admission control, SLO-driven adaptive batch sizing, and dispatch to
//! the shared [`ParallelEngine`] worker pool — all scheduled on a
//! virtual clock so every run of the same trace is bit-identical.
//!
//! # Execution model
//!
//! ```text
//! trace ──▶ admission ──▶ per-tenant queue ──▶ batcher ──▶ worker pool
//!            (bounded,      (FIFO, depth       (deadline     (ParallelEngine
//!             shed+count)    gauged)            or full)      pooled state)
//! ```
//!
//! The router advances a **virtual clock** over three event sources:
//! trace arrivals, batch completions, and head-of-line batching
//! deadlines. Scheduling state (queue contents, worker occupancy,
//! adaptive batch caps) changes only at these events, and service times
//! come from each tenant's deterministic
//! [`ServiceModel`](crate::tenant::ServiceModel) — so the
//! admitted / shed / batch counts and every latency quantile are a pure
//! function of `(trace, configs)`. Real forward passes still execute
//! for every dispatched batch through the engine's pooled worker state;
//! their outputs are bitwise-identical to `run_batched` on the same
//! images (the serving parity test), and their wall-clock cost is
//! visible through the ordinary forward-pass metrics, but **no
//! scheduling decision ever reads a wall clock**.
//!
//! # Backpressure and shedding
//!
//! Each tenant's queue is bounded by `queue_cap`; an arrival that finds
//! the queue full is shed immediately and counted (`serve_shed` in
//! [`cap_obs::metrics()`], per-tenant in the report). Nothing in the
//! router blocks: overload degrades into a higher shed rate while
//! admitted requests keep their latency distribution — the
//! `shedding_bounds_queue` test drives the system at many times its
//! capacity and asserts both.

use crate::telemetry::{
    self, TenantTelemetry, C_ADMITTED, C_BATCHES, C_COMPLETED, C_OFFERED, C_SHED, C_VIOLATIONS,
    H_BATCH_OCCUPANCY, H_LATENCY_US,
};
use crate::tenant::TenantConfig;
use crate::trace::ArrivalEvent;
use cap_cnn::{Network, ParallelEngine};
use cap_obs::span::{NoopTracer, Tracer};
use cap_obs::{SloPolicy, SloTracker, TimeSeries};
use cap_tensor::{ShapeError, Tensor4, TensorResult};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Router-level configuration (tenant-independent knobs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Simulated worker slots executing batches concurrently (virtual
    /// time); each dispatched batch also runs for real on the engine's
    /// pooled state. Overridden by `CAP_SERVE_WORKERS`.
    pub workers: usize,
    /// Keep every request's output logits in the report (serving parity
    /// tests); off for load sweeps where only counts matter.
    pub collect_outputs: bool,
    /// Telemetry rollup window, virtual µs (see
    /// [`TenantTelemetry`]). Overridden by `CAP_SERVE_WINDOW_US`.
    pub window_us: u64,
    /// Retained telemetry windows per tenant (older windows are
    /// evicted, keeping memory bounded on long traces).
    pub series_windows: usize,
    /// SLO availability target for error-budget accounting: the
    /// fraction of requests that must complete within the tenant's
    /// latency SLO without being shed. Burn-rate thresholds follow
    /// [`SloPolicy::default`].
    pub slo_target: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            collect_outputs: false,
            window_us: 50_000,
            series_windows: 256,
            slo_target: 0.99,
        }
    }
}

/// Read a numeric `CAP_SERVE_*` override; invalid or unset values keep
/// the default (a typo must never change behavior).
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl RouterConfig {
    /// Defaults with `CAP_SERVE_WORKERS` applied, following the
    /// `CAP_TENSOR_KERNEL` / `CAP_CNN_DAG` override convention.
    pub fn from_env() -> Self {
        let mut c = Self::default();
        if let Some(w) = env_u64("CAP_SERVE_WORKERS") {
            c.workers = (w as usize).max(1);
        }
        if let Some(w) = env_u64("CAP_SERVE_WINDOW_US") {
            c.window_us = w.max(1);
        }
        c
    }
}

/// Apply the per-tenant `CAP_SERVE_*` environment overrides to a
/// config: `CAP_SERVE_MAX_BATCH`, `CAP_SERVE_QUEUE_CAP`,
/// `CAP_SERVE_SLO_US`, `CAP_SERVE_DEADLINE_US`. Unset or unparsable
/// variables leave the field unchanged. [`Router::new`] calls this on
/// every tenant, so the environment is an operator-wide escape hatch
/// exactly like the kernel/fusion/DAG knobs.
pub fn apply_env_overrides(config: &mut TenantConfig) {
    if let Some(v) = env_u64("CAP_SERVE_MAX_BATCH") {
        config.max_batch = (v as usize).max(1);
    }
    if let Some(v) = env_u64("CAP_SERVE_QUEUE_CAP") {
        config.queue_cap = (v as usize).max(1);
    }
    if let Some(v) = env_u64("CAP_SERVE_SLO_US") {
        config.slo_us = v.max(1);
    }
    if let Some(v) = env_u64("CAP_SERVE_DEADLINE_US") {
        config.batch_deadline_us = v;
    }
}

/// An admitted request waiting in (or dispatched from) a tenant queue.
#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    arrival_us: u64,
}

/// A dispatched batch occupying a worker slot until `finish_us`.
#[derive(Debug)]
struct InFlight {
    finish_us: u64,
    dispatch_us: u64,
    tenant: usize,
    reqs: Vec<Pending>,
}

/// One request's served output (collected when
/// [`RouterConfig::collect_outputs`] is set).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServedOutput {
    /// Tenant index.
    pub tenant: usize,
    /// Per-tenant request sequence number.
    pub seq: u64,
    /// Arrival virtual time, µs.
    pub arrival_us: u64,
    /// Completion virtual time, µs.
    pub completion_us: u64,
    /// The network's output logits for this request's image.
    pub logits: Vec<f32>,
}

/// Per-tenant serving outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests offered by the trace.
    pub offered: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests completed (dispatched and finished).
    pub completed: u64,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
    /// Mean formed batch size.
    pub mean_batch: f64,
    /// Median end-to-end latency (queue wait + service), virtual µs.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, virtual µs.
    pub p99_us: u64,
    /// The tenant's SLO, µs (for reading the quantiles against it).
    pub slo_us: u64,
    /// Completed requests whose latency exceeded the SLO.
    pub slo_violations: u64,
    /// Adaptive batch cap at end of run (starts at 1, grows toward
    /// [`TenantConfig::target_batch`], backs off on SLO violations).
    pub final_batch_cap: usize,
    /// Fraction of the run's SLO error budget consumed (1.0 = spent
    /// exactly, > 1.0 = availability target missed). Bad events are
    /// SLO-violating completions plus shed requests; the budget is
    /// `1 - RouterConfig::slo_target`.
    pub budget_consumed: f64,
    /// Fast-burn (short-lookback) burn-rate alerts fired during the
    /// run. Edge-triggered: one alert per excursion.
    pub fast_burn_alerts: u64,
    /// Slow-burn (long-lookback) burn-rate alerts fired during the run.
    pub slow_burn_alerts: u64,
}

/// Whole-run serving outcome: per-tenant breakdowns plus the aggregate
/// throughput the cost figure is computed from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Virtual makespan: last completion (or last arrival), µs.
    pub makespan_us: u64,
    /// Total requests offered.
    pub offered: u64,
    /// Total admitted.
    pub admitted: u64,
    /// Total shed.
    pub shed: u64,
    /// Total batches dispatched.
    pub batches: u64,
    /// Total requests completed.
    pub completed: u64,
    /// Completed requests per virtual second.
    pub throughput_per_s: f64,
    /// Per-request outputs (empty unless
    /// [`RouterConfig::collect_outputs`]).
    pub outputs: Vec<ServedOutput>,
}

impl ServeReport {
    /// Perseus-style cost figure: USD per 1 000 served inferences when
    /// this workload's throughput runs on an instance priced at
    /// `price_per_hour` — the serving hookup into `cap-cloud` pricing.
    pub fn cost_per_1k_usd(&self, price_per_hour: f64) -> f64 {
        cap_cloud::cost_per_1k_inferences(price_per_hour, self.throughput_per_s)
    }
}

/// Nearest-rank quantile over an ascending-sorted slice (exact, not an
/// estimate — serving reports must be reproducible to the microsecond).
fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Internal per-tenant serving state.
struct TenantState {
    config: TenantConfig,
    net: Network,
    queue: VecDeque<Pending>,
    /// Adaptive batch cap: starts at 1, additively grows to
    /// `target_batch` while latencies comply, multiplicatively backs
    /// off (×¾) on an SLO-violating batch — unless the queue is above
    /// half capacity, where the violation is queue-wait-driven and the
    /// cap grows instead (a saturated tenant needs throughput to
    /// drain, not smaller batches).
    batch_cap: usize,
    target: usize,
    offered: u64,
    admitted: u64,
    shed: u64,
    batches: u64,
    batch_images: u64,
    slo_violations: u64,
    max_queue_depth: usize,
    latencies: Vec<u64>,
    chunk: Tensor4,
}

impl TenantState {
    fn head_deadline(&self) -> Option<u64> {
        self.queue
            .front()
            .map(|p| p.arrival_us.saturating_add(self.config.batch_deadline_us))
    }

    /// Whether the queue holds a dispatchable batch at `now`: either a
    /// full batch (by the adaptive cap) or a head request whose
    /// batching deadline has expired.
    fn ready(&self, now: u64) -> bool {
        !self.queue.is_empty()
            && (self.queue.len() >= self.batch_cap
                || self.head_deadline().is_some_and(|d| now >= d))
    }
}

/// The multi-tenant dynamic-batching router. See the module docs for
/// the execution model; construct with [`Router::new`], drive with
/// [`Router::serve_trace`].
pub struct Router {
    config: RouterConfig,
    tenants: Vec<TenantState>,
    telemetry: Vec<TenantTelemetry>,
    engine: ParallelEngine,
}

impl Router {
    /// Build a router over `(config, network)` tenants sharing one
    /// engine worker pool. Applies the `CAP_SERVE_*` environment
    /// overrides (see [`apply_env_overrides`]) to every tenant.
    pub fn new(config: RouterConfig, tenants: Vec<(TenantConfig, Network)>) -> Self {
        let engine = ParallelEngine::new(config.workers);
        let policy = SloPolicy {
            target: config.slo_target,
            ..SloPolicy::default()
        };
        let n_tenants = tenants.len();
        let telemetry = (0..n_tenants)
            .map(|_| TenantTelemetry::new(config.window_us, config.series_windows, policy))
            .collect();
        let tenants = tenants
            .into_iter()
            .map(|(mut c, net)| {
                apply_env_overrides(&mut c);
                let target = c.target_batch();
                TenantState {
                    config: c,
                    net,
                    queue: VecDeque::new(),
                    batch_cap: 1,
                    target,
                    offered: 0,
                    admitted: 0,
                    shed: 0,
                    batches: 0,
                    batch_images: 0,
                    slo_violations: 0,
                    max_queue_depth: 0,
                    latencies: Vec::new(),
                    chunk: Tensor4::zeros(0, 0, 0, 0),
                }
            })
            .collect();
        Self {
            config,
            tenants,
            telemetry,
            engine,
        }
    }

    /// Tenant count.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant `t`'s windowed time-series from the most recent
    /// [`serve_trace`](Self::serve_trace) run.
    pub fn tenant_series(&self, t: usize) -> Option<&TimeSeries> {
        self.telemetry.get(t).map(|tt| &tt.series)
    }

    /// Tenant `t`'s SLO tracker (budget consumption, burn alerts) from
    /// the most recent run.
    pub fn tenant_slo(&self, t: usize) -> Option<&SloTracker> {
        self.telemetry.get(t).map(|tt| &tt.slo)
    }

    /// Replay an arrival trace against the tenants and return the
    /// serving report. `image_pools[t]` supplies tenant `t`'s request
    /// payloads: request `seq` carries image `seq % pool.n()`.
    ///
    /// Deterministic: scheduling runs entirely on the virtual clock
    /// (see the module docs), so repeat calls with the same trace
    /// produce identical reports — including every latency quantile.
    /// Each dispatched batch really executes on the engine, and with
    /// [`RouterConfig::collect_outputs`] the per-request logits land in
    /// [`ServeReport::outputs`], bitwise-equal to
    /// [`cap_cnn::run_batched`] on the same image sequence.
    pub fn serve_trace(
        &mut self,
        events: &[ArrivalEvent],
        image_pools: &[Tensor4],
    ) -> TensorResult<ServeReport> {
        self.serve_trace_traced(events, image_pools, &NoopTracer)
    }

    /// [`serve_trace`](Self::serve_trace) with request-lifecycle span
    /// emission: every completed request contributes a `Request` and a
    /// nested `QueueWait` span on its tenant's track, and every
    /// dispatched batch a `BatchAssembly` (tenant track) plus
    /// `ServeCompute` (worker-slot track) span — all placed by the
    /// virtual clock via [`Tracer::span_at`], so
    /// [`cap_obs::chrome_trace_json`] renders the run as a Perfetto
    /// timeline with one track per tenant plus worker tracks.
    ///
    /// Span emission is guarded by [`Tracer::enabled`]; with
    /// [`NoopTracer`] this is exactly [`serve_trace`](Self::serve_trace)
    /// (which delegates here).
    pub fn serve_trace_traced<T: Tracer>(
        &mut self,
        events: &[ArrivalEvent],
        image_pools: &[Tensor4],
        tracer: &T,
    ) -> TensorResult<ServeReport> {
        if image_pools.len() != self.tenants.len() {
            return Err(ShapeError::new(format!(
                "serve_trace: {} image pools for {} tenants",
                image_pools.len(),
                self.tenants.len()
            )));
        }
        for (t, pool) in image_pools.iter().enumerate() {
            if pool.n() == 0 {
                return Err(ShapeError::new(format!(
                    "serve_trace: empty image pool for tenant {t}"
                )));
            }
        }
        if let Some(bad) = events.iter().find(|e| e.tenant >= self.tenants.len()) {
            return Err(ShapeError::new(format!(
                "serve_trace: event targets tenant {} of {}",
                bad.tenant,
                self.tenants.len()
            )));
        }

        for tt in &mut self.telemetry {
            tt.reset();
        }
        let metrics = cap_obs::metrics();
        let mut outputs: Vec<ServedOutput> = Vec::new();
        let mut in_flight: Vec<Option<InFlight>> =
            (0..self.config.workers.max(1)).map(|_| None).collect();
        let mut now = 0u64;
        let mut ei = 0usize;
        let mut last_completion = 0u64;
        // Round-robin cursor over tenants for dispatch. Age-based
        // policies (oldest head-of-line first) look natural but are
        // FIFO across tenants: an overloaded tenant's backlog is always
        // older than a lightly loaded co-tenant's fresh requests, so
        // the cool tenant starves. Round-robin gives every ready tenant
        // a worker slot per rotation — the isolation property the
        // co-location test in `tests/admission.rs` pins down — and is
        // deterministic.
        let mut rr_cursor = 0usize;

        loop {
            // Next event: the earliest of (a) the next trace arrival,
            // (b) the earliest in-flight completion, (c) the earliest
            // head-of-line batching deadline — (c) only when a worker
            // is idle, since a deadline with every worker busy can
            // trigger nothing until a completion frees one.
            let mut next: Option<u64> = events.get(ei).map(|e| e.t_us);
            for f in in_flight.iter().flatten() {
                next = Some(next.map_or(f.finish_us, |n| n.min(f.finish_us)));
            }
            if in_flight.iter().any(|f| f.is_none()) {
                for t in &self.tenants {
                    if let Some(d) = t.head_deadline() {
                        next = Some(next.map_or(d, |n| n.min(d)));
                    }
                }
            }
            let Some(t_next) = next else {
                break; // no arrivals, nothing in flight, queues empty
            };
            now = now.max(t_next);

            // 1. Completions at or before `now` free their workers and
            //    settle request latencies.
            for slot in in_flight.iter_mut() {
                if slot.as_ref().is_some_and(|f| f.finish_us <= now) {
                    let f = slot.take().expect("checked occupied");
                    last_completion = last_completion.max(f.finish_us);
                    let tenant = &mut self.tenants[f.tenant];
                    let tel = &mut self.telemetry[f.tenant];
                    let traced = tracer.enabled();
                    let mut worst = 0u64;
                    for req in &f.reqs {
                        let lat = f.finish_us - req.arrival_us;
                        worst = worst.max(lat);
                        if lat > tenant.config.slo_us {
                            tenant.slo_violations += 1;
                            tel.series.add(f.finish_us, C_VIOLATIONS, 1);
                        }
                        tenant.latencies.push(lat);
                        metrics.serve_latency_us.record(lat);
                        tel.series.add(f.finish_us, C_COMPLETED, 1);
                        tel.series.observe(f.finish_us, H_LATENCY_US, lat);
                        if traced {
                            telemetry::emit_request_spans(
                                tracer,
                                &tenant.config.name,
                                f.tenant,
                                req.seq,
                                req.arrival_us,
                                f.dispatch_us,
                                f.finish_us,
                            );
                        }
                    }
                    // Adaptive batch sizing, AIMD: grow additively
                    // while compliant; back off ×¾ on a violation —
                    // unless backpressure (queue above half capacity)
                    // says the violation is queue-wait-driven, where
                    // *larger* batches drain faster, so grow instead.
                    // Without that override, sustained overload keeps
                    // every batch violating, the cap can never recover,
                    // and throughput collapses into singletons.
                    let congested = tenant.queue.len() * 2 >= tenant.config.queue_cap;
                    if worst > tenant.config.slo_us && !congested {
                        tenant.batch_cap = (tenant.batch_cap * 3 / 4).max(1);
                    } else if tenant.batch_cap < tenant.target {
                        tenant.batch_cap += 1;
                    }
                }
            }

            // 2. Admit or shed every arrival at `now`.
            while events.get(ei).is_some_and(|e| e.t_us <= now) {
                let e = events[ei];
                ei += 1;
                let tenant = &mut self.tenants[e.tenant];
                let tel = &mut self.telemetry[e.tenant];
                tenant.offered += 1;
                metrics.serve_requests.inc();
                tel.series.add(e.t_us, C_OFFERED, 1);
                if tenant.queue.len() >= tenant.config.queue_cap {
                    tenant.shed += 1;
                    metrics.serve_shed.inc();
                    tel.series.add(e.t_us, C_SHED, 1);
                } else {
                    tenant.admitted += 1;
                    metrics.serve_admitted.inc();
                    tel.series.add(e.t_us, C_ADMITTED, 1);
                    tenant.queue.push_back(Pending {
                        seq: e.seq,
                        arrival_us: e.t_us,
                    });
                    tenant.max_queue_depth = tenant.max_queue_depth.max(tenant.queue.len());
                    metrics
                        .serve_queue_depth
                        .record_max(tenant.queue.len() as u64);
                }
            }

            // 3. Fill idle workers with ready batches, round-robin
            //    across ready tenants (see `rr_cursor` above).
            while let Some(widx) = in_flight.iter().position(|f| f.is_none()) {
                let n_t = self.tenants.len();
                let Some(tidx) = (0..n_t)
                    .map(|k| (rr_cursor + k) % n_t)
                    .find(|&i| self.tenants[i].ready(now))
                else {
                    break;
                };
                rr_cursor = (tidx + 1) % n_t;
                let tenant = &mut self.tenants[tidx];
                let take = tenant.batch_cap.min(tenant.queue.len());
                let reqs: Vec<Pending> = tenant.queue.drain(..take).collect();

                // Real execution on the engine's pooled worker state.
                let pool = &image_pools[tidx];
                let (c, h, w) = (pool.c(), pool.h(), pool.w());
                tenant.chunk.resize(take, c, h, w);
                for (j, req) in reqs.iter().enumerate() {
                    let img = (req.seq % pool.n() as u64) as usize;
                    tenant.chunk.image_mut(j).copy_from_slice(pool.image(img));
                }
                let logits = self.engine.run_chunk(&tenant.net, &tenant.chunk)?;

                let service_us = tenant.config.service.service_us(take);
                let finish_us = now + service_us;
                let tel = &mut self.telemetry[tidx];
                tel.series.add(now, C_BATCHES, 1);
                tel.series.observe(now, H_BATCH_OCCUPANCY, take as u64);
                if tracer.enabled() {
                    telemetry::emit_batch_spans(
                        tracer,
                        &tenant.config.name,
                        tidx,
                        tenant.batches,
                        take,
                        reqs[0].arrival_us,
                        now,
                        service_us,
                        widx,
                    );
                }
                tenant.batches += 1;
                tenant.batch_images += take as u64;
                metrics.serve_batches.inc();
                metrics.serve_batch_occupancy.record(take as u64);
                if self.config.collect_outputs {
                    for (req, out) in reqs.iter().zip(logits) {
                        outputs.push(ServedOutput {
                            tenant: tidx,
                            seq: req.seq,
                            arrival_us: req.arrival_us,
                            completion_us: finish_us,
                            logits: out,
                        });
                    }
                }
                in_flight[widx] = Some(InFlight {
                    finish_us,
                    dispatch_us: now,
                    tenant: tidx,
                    reqs,
                });
            }
        }

        let makespan_us = last_completion.max(now);
        let mut report = ServeReport {
            tenants: Vec::with_capacity(self.tenants.len()),
            makespan_us,
            offered: 0,
            admitted: 0,
            shed: 0,
            batches: 0,
            completed: 0,
            throughput_per_s: 0.0,
            outputs,
        };
        for (t, tel) in self.tenants.iter_mut().zip(&mut self.telemetry) {
            t.latencies.sort_unstable();
            tel.finalize_slo();
            let standing = tel.standing();
            report.offered += t.offered;
            report.admitted += t.admitted;
            report.shed += t.shed;
            report.batches += t.batches;
            report.completed += t.latencies.len() as u64;
            report.tenants.push(TenantReport {
                name: t.config.name.clone(),
                offered: t.offered,
                admitted: t.admitted,
                shed: t.shed,
                batches: t.batches,
                completed: t.latencies.len() as u64,
                max_queue_depth: t.max_queue_depth,
                mean_batch: if t.batches == 0 {
                    0.0
                } else {
                    t.batch_images as f64 / t.batches as f64
                },
                p50_us: quantile_sorted(&t.latencies, 0.50),
                p99_us: quantile_sorted(&t.latencies, 0.99),
                slo_us: t.config.slo_us,
                slo_violations: t.slo_violations,
                final_batch_cap: t.batch_cap,
                budget_consumed: standing.budget_consumed,
                fast_burn_alerts: standing.fast_alerts as u64,
                slow_burn_alerts: standing.slow_alerts as u64,
            });
        }
        if makespan_us > 0 {
            report.throughput_per_s = report.completed as f64 / (makespan_us as f64 / 1e6);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::ServiceModel;
    use crate::trace::{generate_trace, ArrivalPattern};
    use cap_cnn::layer::{ConvLayer, PoolLayer, PoolMode, ReluLayer};
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    fn small_net(seed: u64) -> Network {
        let mut net = Network::new("t", (2, 8, 8));
        let p = Conv2dParams::new(2, 4, 3, 1, 1);
        net.add_sequential(Box::new(
            ConvLayer::new("c1", p, xavier_uniform(4, 18, seed), vec![0.0; 4]).unwrap(),
        ))
        .unwrap();
        net.add_sequential(Box::new(ReluLayer::new("r1"))).unwrap();
        net.add_sequential(Box::new(PoolLayer::new("p1", PoolMode::Max, 2, 0, 2)))
            .unwrap();
        net
    }

    fn pool(n: usize) -> Tensor4 {
        Tensor4::from_fn(n, 2, 8, 8, |i, c, h, w| {
            ((i * 5 + c * 3 + h + w) % 7) as f32 - 3.0
        })
    }

    fn tenant(name: &str) -> TenantConfig {
        TenantConfig::new(
            name,
            ServiceModel {
                fixed_us: 200,
                per_image_us: 150,
            },
        )
    }

    fn router(n_tenants: usize) -> Router {
        let tenants = (0..n_tenants)
            .map(|i| (tenant(&format!("t{i}")), small_net(i as u64 + 1)))
            .collect();
        Router::new(RouterConfig::default(), tenants)
    }

    #[test]
    fn conservation_offered_equals_admitted_plus_shed() {
        let events = generate_trace(3, &[ArrivalPattern::Poisson { rate_per_s: 800.0 }], 1.0);
        let mut r = router(1);
        let rep = r.serve_trace(&events, &[pool(4)]).unwrap();
        assert_eq!(rep.offered, events.len() as u64);
        assert_eq!(rep.offered, rep.admitted + rep.shed);
        assert_eq!(
            rep.completed, rep.admitted,
            "every admitted request completes"
        );
        assert!(rep.throughput_per_s > 0.0);
    }

    #[test]
    fn two_tenants_share_the_pool_without_crosstalk() {
        let events = generate_trace(
            5,
            &[
                ArrivalPattern::Poisson { rate_per_s: 400.0 },
                ArrivalPattern::Poisson { rate_per_s: 400.0 },
            ],
            1.0,
        );
        let mut r = router(2);
        let rep = r.serve_trace(&events, &[pool(4), pool(4)]).unwrap();
        assert_eq!(rep.tenants.len(), 2);
        for t in &rep.tenants {
            assert_eq!(t.offered, t.admitted + t.shed);
            assert_eq!(t.completed, t.admitted);
            assert!(t.p99_us >= t.p50_us);
        }
    }

    #[test]
    fn batch_cap_grows_under_compliant_load() {
        // Plenty of queued work, generous SLO: the adaptive cap should
        // climb from 1 toward the model-driven target.
        let events = generate_trace(
            7,
            &[ArrivalPattern::Poisson {
                rate_per_s: 2_000.0,
            }],
            0.5,
        );
        let mut r = router(1);
        let rep = r.serve_trace(&events, &[pool(4)]).unwrap();
        let t = &rep.tenants[0];
        assert!(
            t.final_batch_cap > 1,
            "cap stayed at {} despite sustained load",
            t.final_batch_cap
        );
        assert!(t.mean_batch > 1.0, "mean batch {}", t.mean_batch);
    }

    #[test]
    fn deadline_forces_partial_batches_at_low_rate() {
        // 20 req/s: mean inter-arrival 50 ms >> 5 ms deadline, so
        // almost every batch is a forced partial (exponential gaps do
        // land two arrivals inside one deadline window now and then, so
        // "almost": mean occupancy stays far below the batch target).
        let events = generate_trace(9, &[ArrivalPattern::Poisson { rate_per_s: 20.0 }], 1.0);
        let mut r = router(1);
        let rep = r.serve_trace(&events, &[pool(4)]).unwrap();
        let t = &rep.tenants[0];
        assert!(
            t.batches * 4 >= t.admitted * 3,
            "low load batched too aggressively: {} batches for {} admitted",
            t.batches,
            t.admitted
        );
        assert!(t.mean_batch < 2.0, "mean batch {}", t.mean_batch);
        // A lone request waits out the batching deadline, then runs.
        assert!(
            t.p50_us >= 5_000,
            "p50 {} below the deadline wait",
            t.p50_us
        );
        assert!(t.p50_us <= t.slo_us);
    }

    #[test]
    fn identical_runs_produce_identical_reports() {
        let events = generate_trace(
            13,
            &[
                ArrivalPattern::Burst {
                    base_per_s: 200.0,
                    burst_per_s: 3_000.0,
                    burst_every_s: 0.2,
                    burst_len_s: 0.05,
                },
                ArrivalPattern::Poisson { rate_per_s: 500.0 },
            ],
            0.6,
        );
        let run = || {
            let mut r = router(2);
            let rep = r.serve_trace(&events, &[pool(4), pool(4)]).unwrap();
            (
                rep.admitted,
                rep.shed,
                rep.batches,
                rep.makespan_us,
                rep.tenants
                    .iter()
                    .map(|t| (t.p50_us, t.p99_us, t.max_queue_depth))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mismatched_pools_or_bad_tenant_error() {
        let mut r = router(2);
        assert!(r.serve_trace(&[], &[pool(2)]).is_err());
        let bad = [ArrivalEvent {
            t_us: 0,
            tenant: 5,
            seq: 0,
        }];
        assert!(r.serve_trace(&bad, &[pool(2), pool(2)]).is_err());
        assert!(r
            .serve_trace(&[], &[pool(2), Tensor4::zeros(0, 2, 8, 8)])
            .is_err());
    }

    #[test]
    fn quantile_sorted_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), 0);
        assert_eq!(quantile_sorted(&[7], 0.5), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&v, 0.50), 50);
        assert_eq!(quantile_sorted(&v, 0.99), 99);
        assert_eq!(quantile_sorted(&v, 1.0), 100);
    }
}
