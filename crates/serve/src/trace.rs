//! Deterministic open-loop arrival traces.
//!
//! A serving experiment is only comparable across runs if the *offered
//! load* is identical each time. The generators here produce arrival
//! event sequences that are a pure function of `(seed, spec)` — no
//! wall-clock reads, no thread timing, and no platform `libm` calls
//! (the exponential sampler uses [`det_ln`], an IEEE-arithmetic-only
//! logarithm, so the emitted microsecond timestamps are bit-identical
//! on every host). That is the determinism contract the golden test in
//! `tests/golden_trace.rs` pins down event-by-event.
//!
//! Three arrival shapes cover the load patterns a served model fleet
//! sees:
//!
//! * [`ArrivalPattern::Poisson`] — memoryless steady-state traffic
//!   (exponential inter-arrivals at a fixed rate).
//! * [`ArrivalPattern::Diurnal`] — a day/night cycle: the rate sweeps
//!   between a base and a peak along a triangle wave, sampled by
//!   thinning a Poisson stream at the peak rate.
//! * [`ArrivalPattern::Burst`] — steady base traffic with periodic
//!   bursts at a much higher rate (flash crowds, retry storms).
//!
//! Multi-tenant traces draw each tenant's stream from an independent
//! ChaCha8 keystream (`seed ⊕ tenant-salt`) and merge by timestamp, so
//! adding a tenant never perturbs another tenant's arrivals.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One request arrival in a trace: at virtual time `t_us`, tenant
/// `tenant` receives its `seq`-th request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Arrival time in virtual microseconds since trace start.
    pub t_us: u64,
    /// Index of the tenant this request targets.
    pub tenant: usize,
    /// Per-tenant sequence number, starting at 0.
    pub seq: u64,
}

/// The arrival process shape for one tenant's request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Memoryless arrivals at a constant mean rate (requests/second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// A day/night cycle: the instantaneous rate follows a triangle
    /// wave from `base_per_s` (trough, at phase 0 and 1) up to
    /// `peak_per_s` (mid-period) and back, repeating every `period_s`.
    /// A triangle — not a cosine — keeps the generator free of
    /// platform `libm` calls, preserving bit-exact traces.
    Diurnal {
        /// Trough arrival rate, requests per second.
        base_per_s: f64,
        /// Peak arrival rate, requests per second.
        peak_per_s: f64,
        /// Cycle length in seconds.
        period_s: f64,
    },
    /// Steady `base_per_s` traffic, except that every `burst_every_s` a
    /// burst of `burst_len_s` seconds arrives at `burst_per_s` (the
    /// burst occupies the start of each period).
    Burst {
        /// Baseline arrival rate, requests per second.
        base_per_s: f64,
        /// Arrival rate inside a burst, requests per second.
        burst_per_s: f64,
        /// Burst period in seconds.
        burst_every_s: f64,
        /// Burst duration in seconds (clamped to the period).
        burst_len_s: f64,
    },
}

impl ArrivalPattern {
    /// The maximum instantaneous rate of this pattern — the thinning
    /// envelope rate.
    fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate_per_s } => rate_per_s,
            ArrivalPattern::Diurnal {
                base_per_s,
                peak_per_s,
                ..
            } => base_per_s.max(peak_per_s),
            ArrivalPattern::Burst {
                base_per_s,
                burst_per_s,
                ..
            } => base_per_s.max(burst_per_s),
        }
    }

    /// Instantaneous rate at virtual time `t_us`.
    fn rate_at(&self, t_us: u64) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate_per_s } => rate_per_s,
            ArrivalPattern::Diurnal {
                base_per_s,
                peak_per_s,
                period_s,
            } => {
                let period_us = (period_s * 1e6).max(1.0);
                let phase = (t_us as f64 % period_us) / period_us;
                // Triangle: 0 at the period edges, 1 at mid-period.
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                base_per_s + (peak_per_s - base_per_s) * tri
            }
            ArrivalPattern::Burst {
                base_per_s,
                burst_per_s,
                burst_every_s,
                burst_len_s,
            } => {
                let period_us = (burst_every_s * 1e6).max(1.0);
                let len_us = (burst_len_s * 1e6).min(period_us);
                if (t_us as f64 % period_us) < len_us {
                    burst_per_s
                } else {
                    base_per_s
                }
            }
        }
    }

    /// Mean rate over one period — what an open-loop experiment quotes
    /// as the offered load.
    pub fn mean_rate_per_s(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate_per_s } => rate_per_s,
            ArrivalPattern::Diurnal {
                base_per_s,
                peak_per_s,
                ..
            } => (base_per_s + peak_per_s) / 2.0,
            ArrivalPattern::Burst {
                base_per_s,
                burst_per_s,
                burst_every_s,
                burst_len_s,
            } => {
                let frac = (burst_len_s / burst_every_s).clamp(0.0, 1.0);
                burst_per_s * frac + base_per_s * (1.0 - frac)
            }
        }
    }

    /// Short label for tables (`poisson` / `diurnal` / `burst`).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Diurnal { .. } => "diurnal",
            ArrivalPattern::Burst { .. } => "burst",
        }
    }
}

/// Natural logarithm computed with IEEE add/mul/div only — bit-exact on
/// every platform, unlike `f64::ln` which defers to the host `libm`.
///
/// Decomposes `x = m · 2^e` with `m ∈ [√½, √2)` and evaluates the
/// atanh series `ln m = 2(t + t³/3 + t⁵/5 + …)` at `t = (m−1)/(m+1)`
/// (|t| ≤ 0.1716, so 8 odd terms reach full f64 precision). Accepts
/// finite `x > 0`; callers feed it uniform samples from `(0, 1]`.
///
/// ```
/// let x = 0.37_f64;
/// assert!((cap_serve::trace::det_ln(x) - x.ln()).abs() < 1e-14);
/// ```
pub fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "det_ln domain: finite x > 0");
    const LN2: f64 = core::f64::consts::LN_2;
    // Normalize the mantissa into [√½, √2) by adjusting the exponent.
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if x < f64::MIN_POSITIVE {
        // Subnormal input: renormalize by scaling up 2^52 first.
        let xs = x * (1u64 << 52) as f64;
        let sbits = xs.to_bits();
        e = ((sbits >> 52) & 0x7ff) as i64 - 1023 - 52;
        m = f64::from_bits((sbits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    }
    // The raw mantissa lies in [1, 2); fold [√2, 2) down into [√½, √2)
    // so |t| stays ≤ 0.1716 and the series converges in 8 terms.
    if m >= core::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // Horner over the odd series coefficients 1/1, 1/3, …, 1/15.
    let series = t
        * (1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0
                    + t2 * (1.0 / 7.0
                        + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0 + t2 / 15.0)))))));
    2.0 * series + e as f64 * LN2
}

/// Draw one exponential inter-arrival gap (microseconds) at `rate_per_s`.
fn exp_gap_us(rng: &mut ChaCha8Rng, rate_per_s: f64) -> u64 {
    // u ∈ [0, 1); 1-u ∈ (0, 1] keeps det_ln in its domain, and
    // ln(1) = 0 makes a zero gap legal (same-microsecond arrivals).
    let u = rng.gen_range(0.0f64..1.0);
    let gap_s = -det_ln(1.0 - u) / rate_per_s;
    (gap_s * 1e6) as u64
}

/// Generate one tenant's arrival stream over `[0, duration_s)` by
/// thinning a Poisson envelope at the pattern's peak rate.
fn tenant_stream(
    seed: u64,
    tenant: usize,
    pattern: &ArrivalPattern,
    duration_s: f64,
) -> Vec<ArrivalEvent> {
    let peak = pattern.peak_rate();
    let horizon_us = (duration_s * 1e6) as u64;
    let mut events = Vec::new();
    if peak <= 0.0 || horizon_us == 0 {
        return events;
    }
    // Tenant streams must be independent: salt the seed so inserting a
    // tenant never shifts another tenant's keystream.
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tenant as u64 + 1)),
    );
    let mut t_us = 0u64;
    let mut seq = 0u64;
    loop {
        t_us = t_us.saturating_add(exp_gap_us(&mut rng, peak));
        if t_us >= horizon_us {
            break;
        }
        // Thinning: accept with probability rate(t)/peak. The draw is
        // consumed even for constant-rate patterns so switching a
        // pattern between Poisson and Diurnal(base==peak) preserves
        // the accept stream's alignment.
        let accept = rng.gen_range(0.0f64..1.0);
        if accept * peak < pattern.rate_at(t_us) {
            events.push(ArrivalEvent { t_us, tenant, seq });
            seq += 1;
        }
    }
    events
}

/// Generate a merged multi-tenant arrival trace: one pattern per
/// tenant, events ordered by `(t_us, tenant)`, per-tenant `seq`
/// contiguous from 0.
///
/// The result is a pure function of `(seed, patterns, duration_s)`:
/// repeat calls return identical vectors, on any platform.
///
/// ```
/// use cap_serve::trace::{generate_trace, ArrivalPattern};
/// let spec = [ArrivalPattern::Poisson { rate_per_s: 200.0 }];
/// let a = generate_trace(7, &spec, 1.0);
/// let b = generate_trace(7, &spec, 1.0);
/// assert_eq!(a, b); // bit-identical replay
/// assert!(a.windows(2).all(|w| w[0].t_us <= w[1].t_us));
/// ```
pub fn generate_trace(
    seed: u64,
    patterns: &[ArrivalPattern],
    duration_s: f64,
) -> Vec<ArrivalEvent> {
    let mut all: Vec<ArrivalEvent> = patterns
        .iter()
        .enumerate()
        .flat_map(|(i, p)| tenant_stream(seed, i, p, duration_s))
        .collect();
    // Stable key: ties on t_us break by tenant index, then seq —
    // fully deterministic merge order.
    all.sort_by_key(|e| (e.t_us, e.tenant, e.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_ln_matches_std_ln() {
        for &x in &[1e-12, 1e-6, 0.1, 0.5, 0.9999, 1.0, 1.5, 2.0, 10.0, 1e9] {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs().max(1.0) * 1e-14,
                "ln({x}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn det_ln_handles_smallest_uniform_sample() {
        // 1 - u with u just below 1.0 → 2^-53, the smallest value the
        // sampler can feed.
        let x = (2.0f64).powi(-53);
        assert!((det_ln(x) - x.ln()).abs() < 1e-12);
    }

    #[test]
    fn poisson_rate_is_approximately_honored() {
        let events = generate_trace(11, &[ArrivalPattern::Poisson { rate_per_s: 1000.0 }], 4.0);
        // 4000 expected; Poisson σ ≈ 63, allow 5σ.
        let n = events.len() as f64;
        assert!((n - 4000.0).abs() < 320.0, "got {n} events");
    }

    #[test]
    fn diurnal_peaks_mid_period() {
        let p = ArrivalPattern::Diurnal {
            base_per_s: 100.0,
            peak_per_s: 1100.0,
            period_s: 2.0,
        };
        let events = generate_trace(3, &[p], 2.0);
        let first_half = events.iter().filter(|e| e.t_us < 500_000).count();
        let mid = events
            .iter()
            .filter(|e| (750_000..1_250_000).contains(&e.t_us))
            .count();
        assert!(
            mid > first_half * 2,
            "mid-period ({mid}) should far exceed the trough ({first_half})"
        );
    }

    #[test]
    fn burst_concentrates_arrivals() {
        let p = ArrivalPattern::Burst {
            base_per_s: 50.0,
            burst_per_s: 2000.0,
            burst_every_s: 1.0,
            burst_len_s: 0.1,
        };
        let events = generate_trace(5, &[p], 2.0);
        let in_burst = events
            .iter()
            .filter(|e| (e.t_us % 1_000_000) < 100_000)
            .count();
        assert!(
            in_burst * 2 > events.len(),
            "bursts should carry most arrivals: {in_burst}/{}",
            events.len()
        );
    }

    #[test]
    fn tenant_streams_are_independent() {
        let solo = generate_trace(9, &[ArrivalPattern::Poisson { rate_per_s: 500.0 }], 1.0);
        let duo = generate_trace(
            9,
            &[
                ArrivalPattern::Poisson { rate_per_s: 500.0 },
                ArrivalPattern::Poisson { rate_per_s: 300.0 },
            ],
            1.0,
        );
        let tenant0: Vec<ArrivalEvent> = duo.into_iter().filter(|e| e.tenant == 0).collect();
        assert_eq!(solo, tenant0, "adding tenant 1 must not shift tenant 0");
    }

    #[test]
    fn per_tenant_seq_is_contiguous() {
        let events = generate_trace(
            21,
            &[
                ArrivalPattern::Poisson { rate_per_s: 400.0 },
                ArrivalPattern::Burst {
                    base_per_s: 100.0,
                    burst_per_s: 900.0,
                    burst_every_s: 0.5,
                    burst_len_s: 0.1,
                },
            ],
            1.0,
        );
        for tenant in 0..2 {
            let seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.tenant == tenant)
                .map(|e| e.seq)
                .collect();
            assert!(seqs.iter().enumerate().all(|(i, &s)| s == i as u64));
        }
    }

    #[test]
    fn mean_rate_formulas() {
        assert_eq!(
            ArrivalPattern::Poisson { rate_per_s: 7.0 }.mean_rate_per_s(),
            7.0
        );
        assert_eq!(
            ArrivalPattern::Diurnal {
                base_per_s: 10.0,
                peak_per_s: 30.0,
                period_s: 1.0
            }
            .mean_rate_per_s(),
            20.0
        );
        let b = ArrivalPattern::Burst {
            base_per_s: 10.0,
            burst_per_s: 110.0,
            burst_every_s: 1.0,
            burst_len_s: 0.1,
        };
        assert!((b.mean_rate_per_s() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_or_duration_is_empty() {
        assert!(generate_trace(1, &[ArrivalPattern::Poisson { rate_per_s: 0.0 }], 1.0).is_empty());
        assert!(generate_trace(1, &[ArrivalPattern::Poisson { rate_per_s: 10.0 }], 0.0).is_empty());
    }
}
