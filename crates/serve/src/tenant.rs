//! Tenant configuration: the model, its latency SLO, queue bounds, and
//! the deterministic service-time model the virtual-clock scheduler
//! plans with.

use cap_cnn::Network;
use serde::{Deserialize, Serialize};

/// Deterministic service-time model for one tenant's batched forward
/// pass: `service_us(b) = fixed_us + per_image_us · b`.
///
/// The router schedules in *virtual* time, and every scheduling
/// decision (batch sizing, worker occupancy, SLO accounting) reads this
/// model instead of a wall clock — that is what makes admitted / shed /
/// batch counts a pure function of the trace seed. Real forward passes
/// still run for every dispatched batch (the parity tests compare
/// their outputs against `run_batched` bit-for-bit); their wall-clock
/// time is recorded as advisory observability data only.
///
/// ```
/// use cap_serve::ServiceModel;
/// let m = ServiceModel { fixed_us: 200, per_image_us: 150 };
/// assert_eq!(m.service_us(1), 350);
/// assert_eq!(m.service_us(8), 1400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Per-batch fixed cost (dispatch, packing, kernel launch), µs.
    pub fixed_us: u64,
    /// Marginal cost per image in the batch, µs.
    pub per_image_us: u64,
}

impl ServiceModel {
    /// Virtual service time of a `batch`-image forward pass, µs.
    #[inline]
    pub fn service_us(&self, batch: usize) -> u64 {
        self.fixed_us + self.per_image_us * batch as u64
    }

    /// Derive a model from a network's arithmetic cost: `per_image_us =
    /// effective MACs / macs_per_us`, where `effective` scales the
    /// dense MAC count by `time_factor` (a pruned tenant's sparse
    /// execution runs a fraction of the dense time; 1.0 for dense).
    ///
    /// `macs_per_us` is a calibration constant for the simulated
    /// substrate — it shifts absolute latencies but cancels out of
    /// every relative comparison, and being a constant (not a
    /// measurement) it keeps the model deterministic.
    pub fn from_network(net: &Network, macs_per_us: f64, time_factor: f64) -> Self {
        let macs = net.macs_per_image().unwrap_or(0) as f64;
        let per_image = (macs * time_factor.max(0.0) / macs_per_us.max(1.0)).round() as u64;
        Self {
            fixed_us: 200,
            per_image_us: per_image.max(1),
        }
    }
}

/// Static configuration of one served tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Display name (`caffenet-p60`, `tinynet`, …).
    pub name: String,
    /// End-to-end latency SLO (queue wait + service), virtual µs. The
    /// batcher sizes batches so a full batch dispatched at the deadline
    /// still meets this.
    pub slo_us: u64,
    /// Hard cap on formed batch size.
    pub max_batch: usize,
    /// Bounded queue capacity; an arrival beyond it is shed (counted,
    /// never silently dropped).
    pub queue_cap: usize,
    /// Maximum head-of-line wait before a partial batch is forced out,
    /// virtual µs.
    pub batch_deadline_us: u64,
    /// Deterministic service-time model for this tenant's batches.
    pub service: ServiceModel,
}

impl TenantConfig {
    /// A config with serving defaults: 50 ms SLO, batch ≤ 16, queue
    /// bound 64, 5 ms batching deadline.
    pub fn new(name: impl Into<String>, service: ServiceModel) -> Self {
        Self {
            name: name.into(),
            slo_us: 50_000,
            max_batch: 16,
            queue_cap: 64,
            batch_deadline_us: 5_000,
            service,
        }
    }

    /// The model-driven batch-size target: the largest batch whose
    /// service time still fits inside the SLO after a worst-case
    /// batching delay, clamped to `[1, max_batch]`.
    ///
    /// This is the static half of adaptive batch sizing (the dynamic
    /// half is the router's AIMD feedback on observed latencies): a
    /// tenant with a tight SLO or a slow model automatically serves
    /// smaller batches.
    ///
    /// ```
    /// use cap_serve::{ServiceModel, TenantConfig};
    /// let mut t = TenantConfig::new(
    ///     "t",
    ///     ServiceModel { fixed_us: 0, per_image_us: 1_000 },
    /// );
    /// t.slo_us = 10_000;
    /// t.batch_deadline_us = 2_000;
    /// // 8 images × 1 ms = 8 ms ≤ (10 − 2) ms; 9 would not fit.
    /// assert_eq!(t.target_batch(), 8);
    /// ```
    pub fn target_batch(&self) -> usize {
        let budget = self.slo_us.saturating_sub(self.batch_deadline_us);
        let mut b = 1usize;
        while b < self.max_batch && self.service.service_us(b + 1) <= budget {
            b += 1;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_model_is_affine() {
        let m = ServiceModel {
            fixed_us: 100,
            per_image_us: 50,
        };
        assert_eq!(m.service_us(0), 100);
        assert_eq!(m.service_us(4), 300);
    }

    #[test]
    fn target_batch_respects_slo_budget() {
        let mut t = TenantConfig::new(
            "t",
            ServiceModel {
                fixed_us: 1_000,
                per_image_us: 500,
            },
        );
        t.slo_us = 6_000;
        t.batch_deadline_us = 1_000;
        // budget 5000; service(8) = 5000 fits, service(9) = 5500 not.
        assert_eq!(t.target_batch(), 8);
    }

    #[test]
    fn target_batch_never_below_one_or_above_max() {
        let mut t = TenantConfig::new(
            "t",
            ServiceModel {
                fixed_us: 10_000,
                per_image_us: 10_000,
            },
        );
        t.slo_us = 1_000; // unreachable even at batch 1
        assert_eq!(t.target_batch(), 1);

        let mut fast = TenantConfig::new(
            "f",
            ServiceModel {
                fixed_us: 1,
                per_image_us: 1,
            },
        );
        fast.max_batch = 4;
        assert_eq!(fast.target_batch(), 4);
    }
}
