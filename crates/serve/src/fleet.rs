//! Canned tenant fleets: small CNNs at different prune levels sharing
//! one router, used by the `serve` experiment and the integration
//! tests. Everything here is seeded and shape-fixed so a fleet is as
//! reproducible as the traces that drive it.

use crate::tenant::{ServiceModel, TenantConfig};
use cap_cnn::layer::{ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer};
use cap_cnn::Network;
use cap_pruning::{apply_to_network, PruneAlgorithm, PruneSpec};
use cap_tensor::{init::xavier_uniform, Conv2dParams, Tensor4};

/// Calibration constant for deriving virtual service times from a
/// network's MAC count: MACs executed per virtual microsecond. Chosen
/// so the demo network's per-image service lands in the low
/// milliseconds — absolute values shift every tenant equally and cancel
/// out of relative comparisons.
pub const DEMO_MACS_PER_US: f64 = 200.0;

/// A small two-conv CNN on 3×16×16 input (10-class head), sized so a
/// serving experiment dispatching hundreds of real batches finishes in
/// seconds on one core. `seed` salts the weight init, letting each
/// tenant own distinct weights.
pub fn demo_network(seed: u64) -> Network {
    let mut net = Network::new("demo", (3, 16, 16));
    let c1 = Conv2dParams::new(3, 8, 3, 1, 1);
    net.add_sequential(Box::new(
        ConvLayer::new(
            "conv1",
            c1,
            xavier_uniform(8, 27, seed.wrapping_mul(7).wrapping_add(1)),
            vec![0.0; 8],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu1")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool1", PoolMode::Max, 2, 0, 2)))
        .unwrap();
    let c2 = Conv2dParams::new(8, 8, 3, 1, 1);
    net.add_sequential(Box::new(
        ConvLayer::new(
            "conv2",
            c2,
            xavier_uniform(8, 72, seed.wrapping_mul(7).wrapping_add(2)),
            vec![0.0; 8],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu2")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool2", PoolMode::Max, 2, 0, 2)))
        .unwrap();
    net.add_sequential(Box::new(
        InnerProductLayer::new(
            "fc",
            xavier_uniform(10, 8 * 4 * 4, seed.wrapping_mul(7).wrapping_add(3)),
            vec![0.0; 10],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))
        .unwrap();
    net
}

/// Build one serving tenant: the demo network pruned to `prune_ratio`
/// (L1 filter pruning on both conv layers, the paper's algorithm), with
/// a service model derived from the network's MAC count.
///
/// Filter pruning zeroes weights but keeps dense shapes, so the MAC
/// count is unchanged; the *time* benefit of sparsity is modeled by
/// scaling the dense service time with `1 − 0.7·ratio` (sparse
/// execution recovers ~70 % of the pruned fraction — a calibration
/// assumption, stated here so the experiment can be read honestly).
/// A pruned tenant therefore serves faster and batches larger under
/// the same SLO, which is exactly the cost-accuracy trade the paper
/// prices.
pub fn pruned_tenant(name: &str, seed: u64, prune_ratio: f64) -> (TenantConfig, Network) {
    let mut net = demo_network(seed);
    if prune_ratio > 0.0 {
        let spec = PruneSpec::uniform(&["conv1", "conv2"], prune_ratio);
        apply_to_network(&mut net, &spec, PruneAlgorithm::FilterL1)
            .expect("demo network has the layers the spec names");
    }
    let time_factor = 1.0 - 0.7 * prune_ratio.clamp(0.0, 1.0);
    let service = ServiceModel::from_network(&net, DEMO_MACS_PER_US, time_factor);
    (TenantConfig::new(name, service), net)
}

/// A deterministic pool of `n` demo-shaped images (3×16×16), values in
/// roughly `[-1, 1]`. Request `seq` of a tenant carries image
/// `seq % n`.
pub fn demo_images(n: usize) -> Tensor4 {
    Tensor4::from_fn(n, 3, 16, 16, |i, c, h, w| {
        ((i * 31 + c * 17 + h * 5 + w) % 19) as f32 / 9.0 - 1.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_network_runs_and_counts_macs() {
        let net = demo_network(1);
        let macs = net.macs_per_image().unwrap();
        assert!(macs > 0);
        let mut arena = cap_cnn::ForwardArena::new();
        let y = net.forward_into(&demo_images(2), &mut arena).unwrap();
        assert_eq!((y.n(), y.c() * y.h() * y.w()), (2, 10));
    }

    #[test]
    fn pruned_tenant_is_faster_than_dense() {
        let (dense, _) = pruned_tenant("d", 1, 0.0);
        let (pruned, _) = pruned_tenant("p", 1, 0.6);
        assert!(
            pruned.service.per_image_us < dense.service.per_image_us,
            "pruned {} vs dense {}",
            pruned.service.per_image_us,
            dense.service.per_image_us
        );
        // Faster service ⇒ at least as large a batch target under the
        // same SLO.
        assert!(pruned.target_batch() >= dense.target_batch());
    }

    #[test]
    fn tenants_with_different_seeds_differ() {
        let a = demo_network(1);
        let b = demo_network(2);
        let mut ar = cap_cnn::ForwardArena::new();
        let imgs = demo_images(1);
        let ya = a.forward_into(&imgs, &mut ar).unwrap().image(0).to_vec();
        let yb = b.forward_into(&imgs, &mut ar).unwrap().image(0).to_vec();
        assert_ne!(ya, yb);
    }
}
