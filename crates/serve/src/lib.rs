//! Online serving layer: multi-tenant request queues, deadline-driven
//! dynamic batching against latency SLOs, admission control with
//! counted load-shedding, and a deterministic open-loop load generator.
//!
//! The paper characterizes cloud applications by their cost-accuracy
//! frontier; this crate adds the *online* half of that story. Several
//! model variants (typically the same network at different prune
//! levels, built by [`fleet::pruned_tenant`]) are co-located behind one
//! router sharing a [`cap_cnn::ParallelEngine`] worker pool, and an
//! open-loop generator replays seeded Poisson / diurnal / burst traces
//! against them. The run reports throughput against p50/p99 latency per
//! tenant plus a cost per 1 000 inferences
//! ([`ServeReport::cost_per_1k_usd`], priced through `cap-cloud`) — the
//! serving-side cost-accuracy axis.
//!
//! # Determinism contract
//!
//! Everything that decides scheduling runs on a **virtual clock**:
//! arrivals come from [`generate_trace`] (seeded ChaCha8, libm-free
//! math, bit-identical on every platform), service times come from each
//! tenant's affine [`ServiceModel`], and the router advances virtual
//! time event by event. Same trace + same configs ⇒ identical
//! admitted / shed / batch counts and identical latency quantiles, on
//! any machine, at any load. Real forward passes still execute for
//! every dispatched batch, and their outputs are bitwise-identical to
//! [`cap_cnn::run_batched`] over the same images — the serving parity
//! test pins that down.
//!
//! # Quick start
//!
//! ```
//! use cap_serve::{fleet, generate_trace, ArrivalPattern, Router, RouterConfig};
//!
//! let tenants = vec![
//!     fleet::pruned_tenant("dense", 1, 0.0),
//!     fleet::pruned_tenant("pruned-60", 2, 0.6),
//! ];
//! let mut router = Router::new(RouterConfig::default(), tenants);
//! let trace = generate_trace(
//!     42,
//!     &[
//!         ArrivalPattern::Poisson { rate_per_s: 300.0 },
//!         ArrivalPattern::Poisson { rate_per_s: 300.0 },
//!     ],
//!     0.25,
//! );
//! let pool = fleet::demo_images(8);
//! let report = router
//!     .serve_trace(&trace, &[pool.clone(), pool])
//!     .unwrap();
//! assert_eq!(report.offered, report.admitted + report.shed);
//! assert!(report.throughput_per_s > 0.0);
//! ```
//!
//! Operator knobs (`CAP_SERVE_WORKERS`, `CAP_SERVE_MAX_BATCH`,
//! `CAP_SERVE_QUEUE_CAP`, `CAP_SERVE_SLO_US`, `CAP_SERVE_DEADLINE_US`)
//! follow the repo's `CAP_*` convention — unset or unparsable values
//! fall back to defaults, never error. See `SERVING.md` for the
//! operator guide and `DESIGN.md` §11 for the architecture rationale.

#![warn(missing_docs)]

pub mod fleet;
pub mod router;
pub mod telemetry;
pub mod tenant;
pub mod trace;

pub use router::{
    apply_env_overrides, Router, RouterConfig, ServeReport, ServedOutput, TenantReport,
};
pub use telemetry::{
    append_serve_prometheus, TenantTelemetry, TENANT_TRACK_BASE, WORKER_TRACK_BASE,
};
pub use tenant::{ServiceModel, TenantConfig};
pub use trace::{det_ln, generate_trace, ArrivalEvent, ArrivalPattern};
