//! Serving-side telemetry: the per-tenant windowed time-series schema,
//! SLO error-budget tracking, request-lifecycle span emission, and the
//! per-tenant Prometheus section.
//!
//! Everything here is driven by the router's virtual clock — window
//! boundaries, span timestamps, burn-rate alerts — so the whole
//! telemetry surface replays bit-identically with the scheduling it
//! observes (pinned by `crates/serve/tests/determinism.rs`).

use crate::router::{ServeReport, TenantReport};
use cap_obs::span::{SpanInfo, SpanScope, Tracer};
use cap_obs::{PromWriter, SloPolicy, SloStanding, SloTracker, TimeSeries};
use std::time::Duration;

/// Chrome-trace track id of tenant `t`'s request-lifecycle track
/// (`tenant-<name>` in Perfetto): `TENANT_TRACK_BASE + t`.
pub const TENANT_TRACK_BASE: u64 = 1_000;

/// Chrome-trace track id of router worker slot `w`'s compute track
/// (`serve-worker-<w>` in Perfetto): `WORKER_TRACK_BASE + w`.
pub const WORKER_TRACK_BASE: u64 = 2_000;

/// Column order of the per-tenant series counters.
pub const SERIES_COUNTERS: [&str; 6] = [
    "offered",
    "admitted",
    "shed",
    "completed",
    "violations",
    "batches",
];

/// Column order of the per-tenant series histograms.
pub const SERIES_HISTS: [&str; 2] = ["latency_us", "batch_occupancy"];

/// Counter column indexes into [`SERIES_COUNTERS`].
pub const C_OFFERED: usize = 0;
/// See [`C_OFFERED`].
pub const C_ADMITTED: usize = 1;
/// See [`C_OFFERED`].
pub const C_SHED: usize = 2;
/// See [`C_OFFERED`].
pub const C_COMPLETED: usize = 3;
/// See [`C_OFFERED`].
pub const C_VIOLATIONS: usize = 4;
/// See [`C_OFFERED`].
pub const C_BATCHES: usize = 5;

/// Histogram column indexes into [`SERIES_HISTS`].
pub const H_LATENCY_US: usize = 0;
/// See [`H_LATENCY_US`].
pub const H_BATCH_OCCUPANCY: usize = 1;

/// One tenant's telemetry for one serve run: the windowed series the
/// router feeds event by event, and the SLO tracker derived from it at
/// the end of the run.
#[derive(Debug, Clone)]
pub struct TenantTelemetry {
    /// Windowed rollups of the [`SERIES_COUNTERS`]/[`SERIES_HISTS`]
    /// schema, keyed by the router's virtual clock.
    pub series: TimeSeries,
    /// Error-budget accounting fed from the series by
    /// [`finalize_slo`](Self::finalize_slo).
    pub slo: SloTracker,
    window_us: u64,
    capacity: usize,
    policy: SloPolicy,
}

impl TenantTelemetry {
    /// Fresh telemetry: `capacity` retained windows of `window_us`
    /// virtual microseconds, SLO policy `policy`.
    pub fn new(window_us: u64, capacity: usize, policy: SloPolicy) -> Self {
        Self {
            series: TimeSeries::new(window_us, capacity, &SERIES_COUNTERS, &SERIES_HISTS),
            slo: SloTracker::new(policy),
            window_us,
            capacity,
            policy,
        }
    }

    /// Clear all state for a new serve run (each run gets a fresh
    /// series so repeat calls on one router stay independent).
    pub fn reset(&mut self) {
        self.series = TimeSeries::new(
            self.window_us,
            self.capacity,
            &SERIES_COUNTERS,
            &SERIES_HISTS,
        );
        self.slo = SloTracker::new(self.policy);
    }

    /// Feed the finished series into the SLO tracker, window by window
    /// in ascending order: `bad` = SLO violations + shed requests,
    /// `good` = compliant completions. Pure function of the series, so
    /// the alert sequence replays exactly.
    pub fn finalize_slo(&mut self) {
        let windows: Vec<(u64, u64, u64)> = self
            .series
            .windows()
            .iter()
            .map(|w| {
                let bad = w.counters[C_VIOLATIONS] + w.counters[C_SHED];
                let good = w.counters[C_COMPLETED].saturating_sub(w.counters[C_VIOLATIONS]);
                (w.index, good, bad)
            })
            .collect();
        for (index, good, bad) in windows {
            self.slo.record_window(index, good, bad);
        }
    }

    /// Current SLO standing (call after
    /// [`finalize_slo`](Self::finalize_slo)).
    pub fn standing(&self) -> SloStanding {
        self.slo.standing()
    }
}

/// Emit one request's lifecycle spans at completion: the whole-life
/// `Request` span plus its nested `QueueWait`, both on the tenant's
/// track with virtual-clock placement.
#[inline]
pub(crate) fn emit_request_spans<T: Tracer>(
    tracer: &T,
    tenant_name: &str,
    tenant_idx: usize,
    seq: u64,
    arrival_us: u64,
    dispatch_us: u64,
    finish_us: u64,
) {
    let track = TENANT_TRACK_BASE + tenant_idx as u64;
    let info = SpanInfo {
        scope: SpanScope::Request,
        name: tenant_name,
        kind: "request",
        shape: [1, 0, 0, 0],
        index: seq as usize,
    };
    tracer.span_at(
        &info,
        Duration::from_micros(arrival_us),
        Duration::from_micros(finish_us - arrival_us),
        track,
    );
    let info = SpanInfo {
        scope: SpanScope::QueueWait,
        name: tenant_name,
        kind: "queue_wait",
        shape: [1, 0, 0, 0],
        index: seq as usize,
    };
    tracer.span_at(
        &info,
        Duration::from_micros(arrival_us),
        Duration::from_micros(dispatch_us - arrival_us),
        track,
    );
}

/// Emit one dispatched batch's spans: the `BatchAssembly` window
/// (head-of-line arrival → dispatch) on the tenant track, and the
/// `ServeCompute` service span on the worker slot's track.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_batch_spans<T: Tracer>(
    tracer: &T,
    tenant_name: &str,
    tenant_idx: usize,
    batch_seq: u64,
    batch_size: usize,
    head_arrival_us: u64,
    dispatch_us: u64,
    service_us: u64,
    worker_slot: usize,
) {
    let info = SpanInfo {
        scope: SpanScope::BatchAssembly,
        name: tenant_name,
        kind: "batch_assembly",
        shape: [batch_size, 0, 0, 0],
        index: batch_seq as usize,
    };
    tracer.span_at(
        &info,
        Duration::from_micros(head_arrival_us),
        Duration::from_micros(dispatch_us - head_arrival_us),
        TENANT_TRACK_BASE + tenant_idx as u64,
    );
    let info = SpanInfo {
        scope: SpanScope::ServeCompute,
        name: tenant_name,
        kind: "serve_compute",
        shape: [batch_size, 0, 0, 0],
        index: worker_slot,
    };
    tracer.span_at(
        &info,
        Duration::from_micros(dispatch_us),
        Duration::from_micros(service_us),
        WORKER_TRACK_BASE + worker_slot as u64,
    );
}

/// Append the per-tenant serving section to a Prometheus exposition:
/// labeled admission/violation counters, latency-quantile gauges, and
/// the SLO standing (budget consumed, burn alerts) from a finished
/// [`ServeReport`].
pub fn append_serve_prometheus(w: &mut PromWriter, report: &ServeReport) {
    let tenant_counter =
        |w: &mut PromWriter, name: &str, help: &str, f: &dyn Fn(&TenantReport) -> u64| {
            for t in &report.tenants {
                w.counter(name, help, &[("tenant", &t.name)], f(t));
            }
        };
    tenant_counter(
        w,
        "cap_tenant_offered_total",
        "Requests offered to the tenant.",
        &|t| t.offered,
    );
    tenant_counter(w, "cap_tenant_admitted_total", "Requests admitted.", &|t| {
        t.admitted
    });
    tenant_counter(
        w,
        "cap_tenant_shed_total",
        "Requests shed at admission.",
        &|t| t.shed,
    );
    tenant_counter(
        w,
        "cap_tenant_completed_total",
        "Requests completed.",
        &|t| t.completed,
    );
    tenant_counter(
        w,
        "cap_tenant_slo_violations_total",
        "Completions over the latency SLO.",
        &|t| t.slo_violations,
    );
    tenant_counter(w, "cap_tenant_batches_total", "Batches dispatched.", &|t| {
        t.batches
    });
    for t in &report.tenants {
        let l = [("tenant", t.name.as_str())];
        w.gauge(
            "cap_tenant_latency_p50_us",
            "Median end-to-end latency, virtual us.",
            &l,
            t.p50_us as f64,
        );
        w.gauge(
            "cap_tenant_latency_p99_us",
            "p99 end-to-end latency, virtual us.",
            &l,
            t.p99_us as f64,
        );
        w.gauge(
            "cap_tenant_error_budget_consumed",
            "Fraction of the SLO error budget consumed (1.0 = spent).",
            &l,
            t.budget_consumed,
        );
        w.gauge(
            "cap_tenant_burn_alerts",
            "Burn-rate alerts fired during the run, by rule.",
            &[("tenant", t.name.as_str()), ("rule", "fast")],
            t.fast_burn_alerts as f64,
        );
        w.gauge(
            "cap_tenant_burn_alerts",
            "Burn-rate alerts fired during the run, by rule.",
            &[("tenant", t.name.as_str()), ("rule", "slow")],
            t.slow_burn_alerts as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_indexes_match_names() {
        assert_eq!(SERIES_COUNTERS[C_OFFERED], "offered");
        assert_eq!(SERIES_COUNTERS[C_ADMITTED], "admitted");
        assert_eq!(SERIES_COUNTERS[C_SHED], "shed");
        assert_eq!(SERIES_COUNTERS[C_COMPLETED], "completed");
        assert_eq!(SERIES_COUNTERS[C_VIOLATIONS], "violations");
        assert_eq!(SERIES_COUNTERS[C_BATCHES], "batches");
        assert_eq!(SERIES_HISTS[H_LATENCY_US], "latency_us");
        assert_eq!(SERIES_HISTS[H_BATCH_OCCUPANCY], "batch_occupancy");
    }

    #[test]
    fn finalize_slo_derives_good_bad_from_series() {
        let mut tt = TenantTelemetry::new(1_000, 64, SloPolicy::default());
        // Window 0: 10 completions, 2 violations, 1 shed → good 8, bad 3.
        tt.series.add(500, C_COMPLETED, 10);
        tt.series.add(500, C_VIOLATIONS, 2);
        tt.series.add(500, C_SHED, 1);
        tt.finalize_slo();
        let s = tt.standing();
        assert_eq!(s.good, 8);
        assert_eq!(s.bad, 3);
        assert!(s.budget_consumed > 1.0, "3/11 bad blows a 1% budget");
    }

    #[test]
    fn reset_clears_between_runs() {
        let mut tt = TenantTelemetry::new(1_000, 64, SloPolicy::default());
        tt.series.add(0, C_OFFERED, 5);
        tt.finalize_slo();
        tt.reset();
        assert!(tt.series.windows().is_empty());
        assert_eq!(tt.standing().good + tt.standing().bad, 0);
    }
}
