//! Golden-trace test: the seeded open-loop generator must emit an
//! *exact*, platform-independent event sequence. The trace math is
//! deliberately libm-free (see `det_ln` and the triangle-wave diurnal
//! profile), so these constants hold on every host and toolchain — a
//! divergence here means the determinism contract broke, which would
//! silently invalidate every serving comparison in EXPERIMENTS.md.

use cap_serve::{generate_trace, ArrivalEvent, ArrivalPattern};

const SEED: u64 = 20200814; // the paper's publication date, as a nod

fn golden_patterns() -> Vec<ArrivalPattern> {
    vec![
        ArrivalPattern::Poisson { rate_per_s: 500.0 },
        ArrivalPattern::Diurnal {
            base_per_s: 100.0,
            peak_per_s: 900.0,
            period_s: 0.5,
        },
        ArrivalPattern::Burst {
            base_per_s: 100.0,
            burst_per_s: 2_000.0,
            burst_every_s: 0.25,
            burst_len_s: 0.05,
        },
    ]
}

/// FNV-1a over every event field: one number that pins the whole
/// sequence, not just its head.
fn trace_checksum(events: &[ArrivalEvent]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for e in events {
        mix(e.t_us);
        mix(e.tenant as u64);
        mix(e.seq);
    }
    h
}

#[test]
fn golden_trace_exact_sequence() {
    let events = generate_trace(SEED, &golden_patterns(), 1.0);

    // Head of the merged sequence, exact.
    let head: Vec<(u64, usize, u64)> = events
        .iter()
        .take(8)
        .map(|e| (e.t_us, e.tenant, e.seq))
        .collect();
    assert_eq!(
        head,
        vec![
            (554, 2, 0),
            (1840, 2, 1),
            (2058, 2, 2),
            (2241, 2, 3),
            (2584, 2, 4),
            (2636, 2, 5),
            (2683, 0, 0),
            (3405, 0, 1),
        ],
        "head of golden trace drifted"
    );

    // Exact per-tenant counts and whole-sequence checksum.
    let counts: Vec<usize> = (0..3)
        .map(|t| events.iter().filter(|e| e.tenant == t).count())
        .collect();
    assert_eq!(
        counts,
        vec![519, 558, 494],
        "per-tenant event counts drifted"
    );
    assert_eq!(events.len(), 519 + 558 + 494);
    assert_eq!(
        trace_checksum(&events),
        0xd314_283a_7b09_56a5,
        "full-sequence checksum drifted"
    );
}

#[test]
fn golden_trace_is_repeatable_and_sorted() {
    let a = generate_trace(SEED, &golden_patterns(), 1.0);
    let b = generate_trace(SEED, &golden_patterns(), 1.0);
    assert_eq!(a, b);
    assert!(a
        .windows(2)
        .all(|w| (w[0].t_us, w[0].tenant) <= (w[1].t_us, w[1].tenant)));

    // A different seed must actually change the sequence.
    let c = generate_trace(SEED + 1, &golden_patterns(), 1.0);
    assert_ne!(a, c);
}

#[test]
fn print_golden_constants() {
    // Not an assertion: regenerates the constants above when the
    // generator changes *intentionally* (run with `--nocapture`).
    let events = generate_trace(SEED, &golden_patterns(), 1.0);
    let head: Vec<(u64, usize, u64)> = events
        .iter()
        .take(8)
        .map(|e| (e.t_us, e.tenant, e.seq))
        .collect();
    let counts: Vec<usize> = (0..3)
        .map(|t| events.iter().filter(|e| e.tenant == t).count())
        .collect();
    println!("head: {head:?}");
    println!("counts: {counts:?} total {}", events.len());
    println!("checksum: {:#018x}", trace_checksum(&events));
}
