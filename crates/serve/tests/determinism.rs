//! The telemetry determinism contract: two serve runs with the same
//! seed produce byte-identical time-series JSON, identical burn-rate
//! alert sequences, and identical lifecycle span lists — because every
//! telemetry value derives from the router's virtual clock, never a
//! wall clock.

use cap_obs::{chrome_trace_json, CollectingTracer, SpanScope};
use cap_serve::{
    fleet, generate_trace, ArrivalPattern, Router, RouterConfig, TENANT_TRACK_BASE,
    WORKER_TRACK_BASE,
};

const SEED: u64 = 909;

fn config() -> RouterConfig {
    RouterConfig {
        workers: 2,
        // Small windows so a 0.3 s trace spans many of them.
        window_us: 10_000,
        ..RouterConfig::default()
    }
}

fn tenants() -> Vec<(cap_serve::TenantConfig, cap_cnn::Network)> {
    vec![
        fleet::pruned_tenant("dense", 1, 0.0),
        fleet::pruned_tenant("pruned-60", 2, 0.6),
    ]
}

fn patterns() -> Vec<ArrivalPattern> {
    vec![
        ArrivalPattern::Poisson { rate_per_s: 900.0 },
        ArrivalPattern::Burst {
            base_per_s: 300.0,
            burst_per_s: 5_000.0,
            burst_every_s: 0.1,
            burst_len_s: 0.03,
        },
    ]
}

/// Per-run telemetry artifacts: per-tenant series JSON, per-tenant
/// alert tuples (kind, window, burn rate), and the chrome trace JSON.
type RunArtifacts = (Vec<String>, Vec<Vec<(String, u64, f64)>>, String);

fn run() -> RunArtifacts {
    let mut router = Router::new(config(), tenants());
    let trace = generate_trace(SEED, &patterns(), 0.3);
    let pool = fleet::demo_images(6);
    let tracer = CollectingTracer::new();
    router
        .serve_trace_traced(&trace, &[pool.clone(), pool], &tracer)
        .expect("serve");
    let series_json: Vec<String> = (0..router.tenant_count())
        .map(|t| router.tenant_series(t).unwrap().to_json())
        .collect();
    let alerts: Vec<Vec<(String, u64, f64)>> = (0..router.tenant_count())
        .map(|t| {
            router
                .tenant_slo(t)
                .unwrap()
                .alerts()
                .iter()
                .map(|a| (a.kind.to_string(), a.window_index, a.burn_rate))
                .collect()
        })
        .collect();
    let trace_json = chrome_trace_json(&tracer.take_spans());
    (series_json, alerts, trace_json)
}

/// The headline contract: series JSON byte-identical, alert sequences
/// identical, and even the rendered Chrome trace byte-identical.
#[test]
fn same_seed_replays_telemetry_byte_identically() {
    let (series_a, alerts_a, trace_a) = run();
    let (series_b, alerts_b, trace_b) = run();
    assert_eq!(
        series_a, series_b,
        "time-series JSON must be byte-identical"
    );
    assert_eq!(alerts_a, alerts_b, "alert sequences must replay exactly");
    assert_eq!(trace_a, trace_b, "span timelines must replay exactly");
    // And the run actually produced telemetry worth comparing.
    assert!(series_a.iter().all(|s| s.contains("\"windows\":[{")));
}

/// The series is internally consistent with the report: per-tenant
/// counter totals equal the report's admission counts.
#[test]
fn series_totals_match_report_counts() {
    let mut router = Router::new(config(), tenants());
    let trace = generate_trace(SEED, &patterns(), 0.3);
    let pool = fleet::demo_images(6);
    let report = router
        .serve_trace(&trace, &[pool.clone(), pool])
        .expect("serve");
    for (t, tr) in report.tenants.iter().enumerate() {
        let series = router.tenant_series(t).unwrap();
        let total = |name: &str| series.counter_total(series.counter_idx(name).unwrap());
        assert_eq!(total("offered"), tr.offered, "tenant {t} offered");
        assert_eq!(total("admitted"), tr.admitted, "tenant {t} admitted");
        assert_eq!(total("shed"), tr.shed, "tenant {t} shed");
        assert_eq!(total("completed"), tr.completed, "tenant {t} completed");
        assert_eq!(
            total("violations"),
            tr.slo_violations,
            "tenant {t} violations"
        );
        assert_eq!(total("batches"), tr.batches, "tenant {t} batches");
        let lat = series.hist_merged(series.hist_idx("latency_us").unwrap());
        assert_eq!(lat.count, tr.completed, "tenant {t} latency samples");
    }
}

/// Lifecycle spans land on the planned tracks: request/queue-wait and
/// batch-assembly on `TENANT_TRACK_BASE + t`, compute on
/// `WORKER_TRACK_BASE + slot`, and each request's spans nest (queue
/// wait within the request, request within the run).
#[test]
fn lifecycle_spans_use_tenant_and_worker_tracks() {
    let mut router = Router::new(config(), tenants());
    let trace = generate_trace(SEED, &patterns(), 0.3);
    let pool = fleet::demo_images(6);
    let tracer = CollectingTracer::new();
    let report = router
        .serve_trace_traced(&trace, &[pool.clone(), pool], &tracer)
        .expect("serve");
    let spans = tracer.take_spans();
    let count = |scope: SpanScope| spans.iter().filter(|s| s.scope == scope).count() as u64;
    assert_eq!(count(SpanScope::Request), report.completed);
    assert_eq!(count(SpanScope::QueueWait), report.completed);
    assert_eq!(count(SpanScope::BatchAssembly), report.batches);
    assert_eq!(count(SpanScope::ServeCompute), report.batches);
    for s in &spans {
        match s.scope {
            SpanScope::Request | SpanScope::QueueWait | SpanScope::BatchAssembly => {
                let t = s.tid - TENANT_TRACK_BASE;
                assert!(t < report.tenants.len() as u64, "tid {} off-track", s.tid);
                assert_eq!(s.name, report.tenants[t as usize].name);
            }
            SpanScope::ServeCompute => {
                let w = s.tid - WORKER_TRACK_BASE;
                assert!(w < 2, "compute span on unknown worker slot {w}");
            }
            other => panic!("unexpected scope {other:?} from a serve run"),
        }
    }
    // Per-request nesting: the queue-wait span shares its start with
    // the request span and never outlives it.
    for q in spans.iter().filter(|s| s.scope == SpanScope::QueueWait) {
        let r = spans
            .iter()
            .find(|s| s.scope == SpanScope::Request && s.index == q.index && s.tid == q.tid)
            .expect("matching request span");
        assert_eq!(q.start, r.start);
        assert!(q.elapsed <= r.elapsed);
    }
}

/// `serve_trace` (untraced) and `serve_trace_traced` with a collecting
/// tracer must agree on every scheduling outcome — tracing observes,
/// never perturbs.
#[test]
fn tracing_does_not_perturb_scheduling() {
    let trace = generate_trace(SEED, &patterns(), 0.3);
    let pool = fleet::demo_images(6);
    let mut quiet = Router::new(config(), tenants());
    let a = quiet
        .serve_trace(&trace, &[pool.clone(), pool.clone()])
        .expect("serve");
    let mut traced = Router::new(config(), tenants());
    let tracer = CollectingTracer::new();
    let b = traced
        .serve_trace_traced(&trace, &[pool.clone(), pool], &tracer)
        .expect("serve");
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.makespan_us, b.makespan_us);
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.p50_us, tb.p50_us);
        assert_eq!(ta.p99_us, tb.p99_us);
        assert_eq!(ta.budget_consumed, tb.budget_consumed);
        assert_eq!(ta.fast_burn_alerts, tb.fast_burn_alerts);
        assert_eq!(ta.slow_burn_alerts, tb.slow_burn_alerts);
    }
}
