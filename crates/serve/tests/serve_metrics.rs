//! The router's plumbing into the process-global metrics registry.
//! Kept as a single test in its own binary: integration test binaries
//! run one at a time, so no other test mutates the global counters
//! while the deltas below are being measured.

use cap_serve::{
    fleet, generate_trace, ArrivalPattern, Router, RouterConfig, ServiceModel, TenantConfig,
};

#[test]
fn serving_run_feeds_the_global_registry() {
    let m = cap_obs::metrics();
    let before = m.snapshot();

    let mut cfg = TenantConfig::new(
        "hot",
        ServiceModel {
            fixed_us: 600,
            per_image_us: 400,
        },
    );
    cfg.queue_cap = 16; // small bound so this trace sheds
    let mut router = Router::new(
        RouterConfig {
            workers: 1,
            collect_outputs: false,
            ..RouterConfig::default()
        },
        vec![(cfg, fleet::demo_network(6))],
    );
    let trace = generate_trace(
        31,
        &[ArrivalPattern::Poisson {
            rate_per_s: 6_000.0,
        }],
        0.3,
    );
    let report = router
        .serve_trace(&trace, &[fleet::demo_images(4)])
        .unwrap();
    assert!(report.shed > 0, "trace must shed for this test to bite");

    let after = m.snapshot();
    assert_eq!(after.serve_requests - before.serve_requests, report.offered);
    assert_eq!(
        after.serve_admitted - before.serve_admitted,
        report.admitted
    );
    assert_eq!(after.serve_shed - before.serve_shed, report.shed);
    assert_eq!(after.serve_batches - before.serve_batches, report.batches);
    assert_eq!(
        after.serve_latency_us.count - before.serve_latency_us.count,
        report.completed
    );
    assert_eq!(
        after.serve_batch_occupancy.count - before.serve_batch_occupancy.count,
        report.batches
    );
    assert!(
        after.serve_queue_depth >= report.tenants[0].max_queue_depth as u64,
        "queue-depth high-water mark not published"
    );
    // Real inference ran underneath: one engine forward pass per batch.
    assert!(
        after.forward_passes - before.forward_passes >= report.batches,
        "served batches must execute real forward passes"
    );

    // The serving metrics ride the standard exporters.
    let text = after.to_text();
    assert!(text.contains("serve_requests "));
    assert!(text.contains("serve_latency_us count "));
    assert!(after.to_json().contains("\"serve_shed\":"));
}
