//! Admission control under overload: the bounded queue must shed —
//! never grow — and every shed must be counted. Driven far past
//! capacity, the router has to stay stable (bounded queue depth,
//! bounded latency for admitted requests) while the reject path absorbs
//! the excess, and the whole outcome must be deterministic because the
//! scheduler runs on virtual time.

use cap_serve::{
    fleet, generate_trace, ArrivalPattern, Router, RouterConfig, ServiceModel, TenantConfig,
};

/// A tenant that can sustain ~2 300 req/s at best (batch 16 every
/// 7 ms ≈ 2 285/s), with a small queue so overload sheds quickly.
fn slow_tenant(name: &str) -> TenantConfig {
    let mut t = TenantConfig::new(
        name,
        ServiceModel {
            fixed_us: 600,
            per_image_us: 400,
        },
    );
    t.queue_cap = 32;
    t
}

#[test]
fn overload_sheds_bounded_and_counted() {
    // Offer ~8 000 req/s against a ~2 300 req/s tenant: roughly
    // two-thirds of the load must go to the counted reject path.
    let trace = generate_trace(
        21,
        &[ArrivalPattern::Poisson {
            rate_per_s: 8_000.0,
        }],
        0.5,
    );
    let mut router = Router::new(
        RouterConfig {
            workers: 1,
            collect_outputs: false,
            ..RouterConfig::default()
        },
        vec![(slow_tenant("hot"), fleet::demo_network(4))],
    );
    let report = router
        .serve_trace(&trace, &[fleet::demo_images(4)])
        .unwrap();
    let t = &report.tenants[0];

    // Conservation: nothing dropped silently.
    assert_eq!(t.offered, t.admitted + t.shed);
    assert_eq!(t.completed, t.admitted, "admitted requests all complete");
    assert!(
        t.shed > t.offered / 3,
        "expected heavy shedding, got {} of {}",
        t.shed,
        t.offered
    );
    // The queue bound held.
    assert!(
        t.max_queue_depth <= 32,
        "queue grew past its bound: {}",
        t.max_queue_depth
    );
    // Admitted requests keep a bounded latency: at most the time to
    // drain a full queue ahead of them (plus one in-flight batch).
    let drain_bound_us = 3 * 32 * 400 + 10 * 600 + 50_000;
    assert!(
        (t.p99_us as usize) < drain_bound_us,
        "admitted p99 {}µs exceeds the drain bound",
        t.p99_us
    );
}

#[test]
fn shed_counts_are_deterministic() {
    let trace = generate_trace(
        22,
        &[ArrivalPattern::Poisson {
            rate_per_s: 6_000.0,
        }],
        0.4,
    );
    let run = || {
        let mut router = Router::new(
            RouterConfig {
                workers: 2,
                collect_outputs: false,
                ..RouterConfig::default()
            },
            vec![(slow_tenant("hot"), fleet::demo_network(4))],
        );
        let rep = router
            .serve_trace(&trace, &[fleet::demo_images(4)])
            .unwrap();
        (
            rep.offered,
            rep.admitted,
            rep.shed,
            rep.batches,
            rep.makespan_us,
            rep.tenants[0].p50_us,
            rep.tenants[0].p99_us,
        )
    };
    let a = run();
    assert!(a.2 > 0, "this trace must overload the tenant");
    assert_eq!(a, run(), "same trace + config must reproduce exactly");
}

#[test]
fn underload_sheds_nothing() {
    // 200 req/s against the same tenant: comfortably inside capacity,
    // so admission control must be invisible.
    let trace = generate_trace(23, &[ArrivalPattern::Poisson { rate_per_s: 200.0 }], 0.5);
    let mut router = Router::new(
        RouterConfig {
            workers: 1,
            collect_outputs: false,
            ..RouterConfig::default()
        },
        vec![(slow_tenant("cool"), fleet::demo_network(4))],
    );
    let report = router
        .serve_trace(&trace, &[fleet::demo_images(4)])
        .unwrap();
    assert_eq!(report.shed, 0);
    assert_eq!(report.completed, report.offered);
}

#[test]
fn overload_on_one_tenant_leaves_the_other_clean() {
    // Tenant isolation: a hot tenant saturating its own queue must not
    // starve a cool co-located tenant into shedding.
    let trace = generate_trace(
        24,
        &[
            ArrivalPattern::Poisson {
                rate_per_s: 8_000.0,
            },
            ArrivalPattern::Poisson { rate_per_s: 100.0 },
        ],
        0.4,
    );
    let mut router = Router::new(
        RouterConfig {
            workers: 2,
            collect_outputs: false,
            ..RouterConfig::default()
        },
        vec![
            (slow_tenant("hot"), fleet::demo_network(4)),
            (slow_tenant("cool"), fleet::demo_network(5)),
        ],
    );
    let report = router
        .serve_trace(&trace, &[fleet::demo_images(4), fleet::demo_images(4)])
        .unwrap();
    let hot = &report.tenants[0];
    let cool = &report.tenants[1];
    assert!(hot.shed > 0, "hot tenant should overload");
    assert_eq!(cool.shed, 0, "cool tenant must not shed under co-location");
    assert!(
        cool.p99_us <= cool.slo_us,
        "cool tenant p99 {} blew its SLO under co-location",
        cool.p99_us
    );
}
