//! Served-vs-offline parity: a request served through the router —
//! queued, batched with whatever neighbors the load happened to
//! provide, dispatched through `ParallelEngine::run_chunk` — must
//! produce logits **bitwise identical** to the same image pushed
//! through the offline [`cap_cnn::run_batched`] driver. This extends
//! the repo-wide batching-invariance contract (outputs independent of
//! batch grouping, worker count, kernel path, fusion and DAG modes)
//! across the serving layer; CI runs it under the full
//! kernel × fusion × DAG × precision matrix.
//!
//! Every network is **calibrated** on the image pool first: under
//! `CAP_TENSOR_PRECISION=int8` an uncalibrated network falls back to
//! per-batch max-abs activation scales, which would make logits depend
//! on batch composition and break bitwise parity by construction.
//! Calibration freezes the scales, restoring batch invariance.

use cap_serve::{fleet, generate_trace, ArrivalPattern, Router, RouterConfig};
use cap_tensor::CalibrationMethod;

#[test]
fn served_logits_equal_offline_run_batched_bitwise() {
    let pool = fleet::demo_images(6);

    // Offline reference: every pool image through the plain batched
    // driver (batch size irrelevant by the batching-invariance
    // contract — use an awkward one on purpose).
    let reference_net = fleet::demo_network(11);
    reference_net
        .calibrate(&pool, CalibrationMethod::MaxAbs)
        .unwrap();
    let (reference, _) = cap_cnn::run_batched(&reference_net, &pool, 5).unwrap();

    // Served run: same weights (the constructor is deterministic), a
    // bursty two-tenant trace so batches form at many sizes.
    let tenants: Vec<_> = [("a", 11), ("b", 11)]
        .into_iter()
        .map(|(name, seed)| {
            let net = fleet::demo_network(seed);
            net.calibrate(&pool, CalibrationMethod::MaxAbs).unwrap();
            (fleet::pruned_tenant(name, seed, 0.0).0, net)
        })
        .collect();
    let mut router = Router::new(
        RouterConfig {
            workers: 2,
            collect_outputs: true,
            ..RouterConfig::default()
        },
        tenants,
    );
    let trace = generate_trace(
        77,
        &[
            ArrivalPattern::Burst {
                base_per_s: 300.0,
                burst_per_s: 4_000.0,
                burst_every_s: 0.1,
                burst_len_s: 0.03,
            },
            ArrivalPattern::Poisson { rate_per_s: 800.0 },
        ],
        0.4,
    );
    let report = router
        .serve_trace(&trace, &[pool.clone(), pool.clone()])
        .unwrap();

    assert_eq!(
        report.outputs.len() as u64,
        report.completed,
        "collect_outputs must capture every completed request"
    );
    assert!(
        report.completed > 100,
        "trace too small to exercise batching"
    );

    let mean_batch = report.completed as f64 / report.batches as f64;
    assert!(
        mean_batch > 1.2,
        "parity test needs multi-image batches to be meaningful (mean {mean_batch:.2})"
    );

    for out in &report.outputs {
        let img = (out.seq % pool.n() as u64) as usize;
        assert_eq!(
            out.logits, reference[img],
            "tenant {} seq {} (image {img}) diverged from offline inference",
            out.tenant, out.seq
        );
    }
}

#[test]
fn parity_holds_for_pruned_tenants() {
    // A pruned network is a different model; its served outputs must
    // match *its own* offline reference, not the dense one.
    let pool = fleet::demo_images(4);
    let (cfg, net) = fleet::pruned_tenant("p60", 5, 0.6);
    let (cfg2, net2) = fleet::pruned_tenant("p60-ref", 5, 0.6);
    assert_eq!(cfg.service, cfg2.service);
    net.calibrate(&pool, CalibrationMethod::MaxAbs).unwrap();
    net2.calibrate(&pool, CalibrationMethod::MaxAbs).unwrap();
    let (reference, _) = cap_cnn::run_batched(&net2, &pool, 4).unwrap();

    let mut router = Router::new(
        RouterConfig {
            workers: 1,
            collect_outputs: true,
            ..RouterConfig::default()
        },
        vec![(cfg, net)],
    );
    let trace = generate_trace(9, &[ArrivalPattern::Poisson { rate_per_s: 600.0 }], 0.3);
    let report = router
        .serve_trace(&trace, std::slice::from_ref(&pool))
        .unwrap();
    assert!(report.completed > 50);
    for out in &report.outputs {
        let img = (out.seq % pool.n() as u64) as usize;
        assert_eq!(out.logits, reference[img]);
    }
}
