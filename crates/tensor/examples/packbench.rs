//! Quick timing harness for GEMM variants (dev aid, not a benchmark).

use cap_tensor::{gemm_prealloc, gemm_prepacked, Matrix, PackedB};
use std::time::Instant;

fn main() {
    run(256, 1200, 729);
    run(1, 9216, 4096); // fc6-shaped, batch 1
    run(4, 9216, 4096); // fc6-shaped, batch 4
}

fn run(m: usize, k: usize, n: usize) {
    let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) % 100) as f32 / 50.0 - 1.0);
    let b = Matrix::from_fn(k, n, |r, q| ((r + q) % 13) as f32 / 13.0 - 0.5);
    let packed = PackedB::pack(&b);
    let mut c1 = Matrix::zeros(m, n);
    let mut c2 = Matrix::zeros(m, n);

    for _ in 0..2 {
        gemm_prealloc(&a, &b, &mut c1).unwrap();
        gemm_prepacked(&a, &packed, &mut c2).unwrap();
    }

    let reps = 5;
    let t = Instant::now();
    for _ in 0..reps {
        gemm_prealloc(&a, &b, &mut c1).unwrap();
    }
    let dense = t.elapsed().as_secs_f64() / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        gemm_prepacked(&a, &packed, &mut c2).unwrap();
    }
    let packed_t = t.elapsed().as_secs_f64() / reps as f64;
    println!(
        "{}x{}x{}: dense {:.2} ms   prepacked {:.2} ms   diff {}",
        m,
        k,
        n,
        dense * 1e3,
        packed_t * 1e3,
        c1.max_abs_diff(&c2).unwrap()
    );
}
