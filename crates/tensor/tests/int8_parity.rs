//! Int8 kernel parity suite.
//!
//! The int8 contract is *stronger* than the f32 one: every dispatch
//! path — scalar, `avx2`, **and** `avx2-fma` — produces bit-identical
//! outputs, because the hot loop accumulates exactly in i32 (no integer
//! FMA exists; the fma path reuses the avx2 kernel) and the dequantize
//! epilogue performs the same mul / add / ReLU sequence element-wise on
//! both paths. These tests pin that across ragged shapes (`n` off the
//! 8-wide panel, `k = 0`, batch-1) and the saturation edges (±127
//! everywhere, the largest products the format can produce).
//!
//! `kernels::force` is process-global, so path-pinning tests serialize
//! on one mutex; on hosts without AVX2 each comparison degenerates to
//! scalar vs scalar — still a pass, never a skip.

use cap_tensor::kernels::int8::{gemm_i8_packed_band_with, gemv_i8_packed_with, spmm_i8_row_with};
use cap_tensor::kernels::{self, EpiBias, Epilogue, KernelPath, PANEL};
use cap_tensor::{gemm_i8, pack_b_i8_into, precision, quantize_rows_into, Matrix, Precision};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Global serialization for tests that call `kernels::force`.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pack a row-major `k × n` i8 matrix into the pair-interleaved panel
/// layout the int8 kernels consume (reference implementation, written
/// independently of `pack_b_i8_into`).
fn pack_pairs(b: &[i8], k: usize, n: usize) -> (Vec<i8>, usize) {
    let kp = k.next_multiple_of(2);
    let panels = n.div_ceil(PANEL);
    let mut out = vec![0i8; panels * kp * PANEL];
    for p in 0..panels {
        let c0 = p * PANEL;
        let width = PANEL.min(n - c0);
        let dst = &mut out[p * kp * PANEL..(p + 1) * kp * PANEL];
        for r in 0..k {
            for j in 0..width {
                dst[(r / 2) * 2 * PANEL + 2 * j + (r % 2)] = b[r * n + c0 + j];
            }
        }
    }
    (out, kp)
}

/// Exact i64 reference (dequantized the same way as the kernels).
#[allow(clippy::too_many_arguments)]
fn reference(
    a: &[i8],
    m: usize,
    kp: usize,
    k: usize,
    b: &[i8],
    n: usize,
    scale: f32,
    bias: Option<&[f32]>,
    per_row: bool,
    relu: bool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        for c in 0..n {
            let mut acc: i64 = 0;
            for t in 0..k {
                acc += a[r * kp + t] as i64 * b[t * n + c] as i64;
            }
            let mut v = acc as i32 as f32 * scale;
            if let Some(bv) = bias {
                v += if per_row { bv[r] } else { bv[c] };
            }
            out[r * n + c] = if relu && v <= 0.0 { 0.0 } else { v + 0.0 };
        }
    }
    out
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

fn on_path<T>(path: KernelPath, f: impl FnOnce() -> T) -> T {
    kernels::force(Some(path));
    let out = f();
    kernels::force(None);
    out
}

/// Every available path: the int8 contract includes `avx2-fma`.
fn all_paths() -> Vec<KernelPath> {
    kernels::available_paths()
}

#[allow(clippy::too_many_arguments)]
fn band_on(
    path: KernelPath,
    a: &[i8],
    m: usize,
    kp: usize,
    n: usize,
    packed: &[i8],
    scale: f32,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_i8_packed_band_with(path, a, kp, n, packed, &mut c, 0, scale, epi);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM band kernel: every path bit-equals scalar AND the exact i64
    /// reference, for arbitrary i8 operands over ragged shapes.
    #[test]
    fn prop_band_all_paths_bitwise_equal(
        m in 1usize..6,
        k in 0usize..33,
        n in 1usize..28,
        seed in 0u64..1000,
        relu in proptest::bool::ANY,
        with_bias in proptest::bool::ANY,
    ) {
        let _guard = force_lock();
        let kp = k.next_multiple_of(2);
        let gen = |i: usize| -> i8 {
            let h = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
            ((h % 255) as i64 - 127) as i8
        };
        let mut a = vec![0i8; m * kp];
        for r in 0..m {
            for t in 0..k {
                a[r * kp + t] = gen(r * 131 + t);
            }
        }
        let b: Vec<i8> = (0..k * n).map(|i| gen(i.wrapping_mul(7) + 3)).collect();
        let (packed, kp2) = pack_pairs(&b, k, n);
        prop_assert_eq!(kp, kp2);
        let scale = 0.037f32;
        let bias: Vec<f32> = (0..m).map(|r| r as f32 * 0.21 - 0.3).collect();
        let epi = || Epilogue {
            bias: with_bias.then_some(EpiBias::PerRow(&bias)),
            relu,
        };
        let want = reference(&a, m, kp, k, &b, n, scale, with_bias.then_some(&bias), true, relu);
        for path in all_paths() {
            let got = band_on(path, &a, m, kp, n, &packed, scale, epi());
            assert_bits_eq(&got, &want, &format!("band {path:?} m={m} k={k} n={n}"));
        }
    }

    /// GEMV kernel parity on single rows, including partial panels.
    #[test]
    fn prop_gemv_all_paths_bitwise_equal(
        k in 0usize..40,
        n in 1usize..30,
        seed in 0u64..1000,
        relu in proptest::bool::ANY,
    ) {
        let _guard = force_lock();
        let kp = k.next_multiple_of(2);
        let gen = |i: usize| -> i8 {
            let h = (i as u64).wrapping_mul(0x517C_C1B7).wrapping_add(seed);
            ((h % 255) as i64 - 127) as i8
        };
        let mut a = vec![0i8; kp];
        for (t, v) in a.iter_mut().enumerate().take(k) {
            *v = gen(t);
        }
        let b: Vec<i8> = (0..k * n).map(|i| gen(i + 17)).collect();
        let (packed, _) = pack_pairs(&b, k, n);
        let scale = 0.011f32;
        let cb: Vec<f32> = (0..n).map(|c| c as f32 * 0.03 - 0.1).collect();
        let want = reference(&a, 1, kp, k, &b, n, scale, Some(&cb), false, relu);
        for path in all_paths() {
            let mut got = vec![0.0f32; n];
            gemv_i8_packed_with(
                path,
                &a,
                n,
                &packed,
                &mut got,
                0,
                scale,
                Epilogue { bias: Some(EpiBias::PerCol(&cb)), relu },
            );
            assert_bits_eq(&got, &want, &format!("gemv {path:?} k={k} n={n}"));
        }
    }

    /// SpMM row kernel parity, spanning multiple column blocks.
    #[test]
    fn prop_spmm_all_paths_bitwise_equal(
        n in 1usize..520,
        nnz in 0usize..24,
        seed in 0u64..1000,
        relu in proptest::bool::ANY,
    ) {
        let _guard = force_lock();
        let cols = 32usize;
        let gen = |i: usize| -> i8 {
            let h = (i as u64).wrapping_mul(0x2545_F491).wrapping_add(seed);
            ((h % 255) as i64 - 127) as i8
        };
        let values: Vec<i8> = (0..nnz).map(gen).collect();
        let col_idx: Vec<u32> = (0..nnz).map(|i| (gen(i + 99) as i64).unsigned_abs() as u32 % cols as u32).collect();
        let b: Vec<i8> = (0..cols * n).map(|i| gen(i + 7)).collect();
        let scale = 0.02f32;
        // Dense reference row through the same i64 → i32 → f32 pipeline.
        let mut want = vec![0.0f32; n];
        for (c, w) in want.iter_mut().enumerate() {
            let mut acc: i64 = 0;
            for (v, &ci) in values.iter().zip(&col_idx) {
                acc += *v as i64 * b[ci as usize * n + c] as i64;
            }
            let v = acc as i32 as f32 * scale - 0.05;
            *w = if relu && v <= 0.0 { 0.0 } else { v + 0.0 };
        }
        for path in all_paths() {
            let mut got = vec![0.0f32; n];
            spmm_i8_row_with(path, &values, &col_idx, &b, n, &mut got, scale, Some(-0.05), relu);
            assert_bits_eq(&got, &want, &format!("spmm {path:?} n={n} nnz={nnz}"));
        }
    }

    /// Full quantize→pack→parallel-GEMM driver parity from f32 inputs:
    /// what the CNN layers actually execute.
    #[test]
    fn prop_gemm_i8_driver_all_paths_bitwise_equal(
        m in 1usize..10,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let _guard = force_lock();
        let a = Matrix::from_fn(m, k, |r, c| {
            (((r * 37 + c * 11 + seed as usize) % 19) as f32 - 9.0) / 6.0
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            (((r * 13 + c * 29 + seed as usize) % 23) as f32 - 11.0) / 10.0
        });
        let a_scale = cap_tensor::symmetric_scale(a.as_slice());
        let b_scale = cap_tensor::symmetric_scale(b.as_slice());
        let mut qa = Vec::new();
        let kp = quantize_rows_into(a.as_slice(), m, k, 1.0 / a_scale, &mut qa);
        let mut qb = Vec::new();
        pack_b_i8_into(b.as_slice(), k, n, 1.0 / b_scale, &mut qb);
        let run = |path| on_path(path, || {
            let mut c = vec![0.0f32; m * n];
            gemm_i8(&qa, m, kp, n, &qb, &mut c, a_scale * b_scale, Epilogue::NONE).unwrap();
            c
        });
        let want = run(KernelPath::Scalar);
        for path in all_paths() {
            let got = run(path);
            assert_bits_eq(&got, &want, &format!("gemm_i8 {path:?} m={m} k={k} n={n}"));
        }
    }
}

/// Saturation edge: every operand at ±127 — the largest magnitude
/// products (16129) the format can produce — over a depth large enough
/// to stress the 16-bit pair stage, on every path.
#[test]
fn saturation_edges_are_exact_on_all_paths() {
    let _guard = force_lock();
    let (m, k, n) = (3usize, 512usize, 17usize);
    let kp = k.next_multiple_of(2);
    let mut a = vec![0i8; m * kp];
    for r in 0..m {
        for t in 0..k {
            a[r * kp + t] = if (r + t) % 2 == 0 { 127 } else { -127 };
        }
    }
    let b: Vec<i8> = (0..k * n)
        .map(|i| if i % 3 == 0 { -127 } else { 127 })
        .collect();
    let (packed, _) = pack_pairs(&b, k, n);
    let scale = 1e-4f32;
    let want = reference(&a, m, kp, k, &b, n, scale, None, true, false);
    for path in all_paths() {
        let got = band_on(path, &a, m, kp, n, &packed, scale, Epilogue::NONE);
        assert_bits_eq(&got, &want, &format!("saturation {path:?}"));
    }
}

/// `k = 0` (empty accumulation) must still run the epilogue.
#[test]
fn k_zero_runs_epilogue_on_all_paths() {
    let _guard = force_lock();
    let n = 11usize;
    let bias: Vec<f32> = (0..n).map(|c| c as f32 - 5.0).collect();
    let packed = vec![0i8; n.div_ceil(PANEL) * PANEL * 2];
    for path in all_paths() {
        let mut got = vec![f32::NAN; n];
        gemv_i8_packed_with(
            path,
            &[],
            n,
            &packed,
            &mut got,
            0,
            1.0,
            Epilogue {
                bias: Some(EpiBias::PerCol(&bias)),
                relu: true,
            },
        );
        for (c, v) in got.iter().enumerate() {
            let want = (bias[c]).max(0.0);
            assert_eq!(v.to_bits(), want.to_bits(), "{path:?} col {c}");
        }
    }
}

/// CI matrix assert: `CAP_TENSOR_PRECISION` must be honored by the
/// process-wide selection. Run by the workflow as
/// `cargo test ... precision_override_is_honored` in each precision leg.
#[test]
fn precision_override_is_honored() {
    let want = match std::env::var("CAP_TENSOR_PRECISION").as_deref() {
        Ok("int8") => Precision::Int8,
        _ => Precision::F32,
    };
    assert_eq!(precision::selected(), want);
    assert_eq!(
        cap_obs::metrics().precision_path.get(),
        want.code() as u64,
        "precision gauge must reflect the resolved selection"
    );
}
