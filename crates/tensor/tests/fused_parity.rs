//! Fused-epilogue and matvec kernel parity suite (PR 6 companion to
//! `kernel_parity.rs`).
//!
//! Contract under test: every fused entry point — packed GEMM with an
//! [`Epilogue`], the dedicated `m == 1` gemv route, and the CSR
//! spmm/spmv rows with a scalar bias/ReLU tail — produces output
//! **bit-identical** to the unfused scalar kernel followed by a manual
//! bias-add and `forward_into`-flavor ReLU (negatives, `-0.0` and NaN
//! all flush to `+0.0`), on every bit-identical dispatch path, across
//! ragged shapes, `k = 0`, and NaN/signed-zero operands.
//!
//! `kernels::force` is process-global; tests serialize on one mutex.
//! On non-AVX2 hosts the path list degenerates to `[Scalar]` — the
//! fused-vs-manual comparison still runs in full.

use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{CsrMatrix, EpiBias, Epilogue, Matrix, PackedB};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Global serialization for tests that call `kernels::force`.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the dispatcher pinned to `path`, restoring auto after.
fn on_path<T>(path: KernelPath, f: impl FnOnce() -> T) -> T {
    kernels::force(Some(path));
    let out = f();
    kernels::force(None);
    out
}

/// Bit-identical paths to compare against scalar (excludes `Avx2Fma`).
fn identical_paths() -> Vec<KernelPath> {
    kernels::available_paths()
        .into_iter()
        .filter(|p| p.is_bit_identical_to_scalar())
        .collect()
}

/// Deterministic awkward-valued matrix: zeros, signed zeros, negatives.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r
            .wrapping_mul(131)
            .wrapping_add(c.wrapping_mul(31))
            .wrapping_add(seed as usize);
        match h % 11 {
            0 => 0.0,
            1 => -0.0,
            v => (v as f32 - 5.0) / 7.0,
        }
    })
}

fn bias_vec(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| match (i + seed as usize) % 7 {
            0 => 0.0,
            1 => -0.0,
            v => (v as f32 - 3.0) / 5.0,
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// The reference epilogue, element by element in plain Rust: bias adds
/// first, then the `forward_into`-flavor ReLU (`v > 0.0` keeps `v`;
/// everything else — negatives, `-0.0`, NaN — becomes `+0.0`).
fn manual_epilogue(
    c: &mut [f32],
    n: usize,
    row_bias: Option<&[f32]>,
    col_bias: Option<&[f32]>,
    relu: bool,
) {
    for (idx, v) in c.iter_mut().enumerate() {
        let (r, j) = (idx / n, idx % n);
        let mut y = *v;
        if let Some(b) = row_bias {
            y += b[r];
        }
        if let Some(b) = col_bias {
            y += b[j];
        }
        if relu {
            y = if y > 0.0 { y } else { 0.0 };
        }
        *v = y;
    }
}

/// One epilogue request: optional per-row bias, optional per-column
/// bias, ReLU flag.
type EpilogueCase = (Option<Vec<f32>>, Option<Vec<f32>>, bool);

/// Every bias/relu combination a fused GEMM can be asked for.
fn epilogue_cases(m: usize, n: usize, seed: u64) -> Vec<EpilogueCase> {
    vec![
        (Some(bias_vec(m, seed)), None, false),
        (Some(bias_vec(m, seed)), None, true),
        (None, Some(bias_vec(n, seed + 1)), false),
        (None, Some(bias_vec(n, seed + 1)), true),
        (None, None, true), // relu-only: no bias shortcut may exist
    ]
}

fn fused_gemm_on(path: KernelPath, a: &Matrix, b: &Matrix, epi: Epilogue<'_>) -> Matrix {
    on_path(path, || {
        let packed = PackedB::pack(b);
        let mut c = Matrix::zeros(a.rows(), b.cols());
        cap_tensor::gemm_prepacked_slice_fused(
            a.as_slice(),
            a.rows(),
            &packed,
            c.as_mut_slice(),
            epi,
        )
        .unwrap();
        c
    })
}

#[test]
fn fused_gemm_matches_scalar_unfused_plus_manual_epilogue() {
    let _g = force_lock();
    // Ragged on purpose: m = 1 takes the dedicated gemv route (incl. n
    // past the 256-column gemv chunk), k = 0 leaves pure-epilogue
    // output, n off the 8-wide panel.
    for (m, k, n) in [
        (1, 1, 1),
        (1, 7, 13),
        (1, 24, 300), // batch-1 across multiple gemv column chunks
        (3, 0, 5),    // k = 0: epilogue applies to an all-zero product
        (4, 9, 8),
        (5, 16, 31),
        (33, 12, 17),
    ] {
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let reference = on_path(KernelPath::Scalar, || {
            let packed = PackedB::pack(&b);
            let mut c = Matrix::zeros(m, n);
            cap_tensor::gemm_prepacked_slice(a.as_slice(), m, &packed, c.as_mut_slice()).unwrap();
            c
        });
        for (row_bias, col_bias, relu) in epilogue_cases(m, n, 17) {
            let mut want = reference.clone();
            manual_epilogue(
                want.as_mut_slice(),
                n,
                row_bias.as_deref(),
                col_bias.as_deref(),
                relu,
            );
            let epi_bias = row_bias
                .as_deref()
                .map(EpiBias::PerRow)
                .or(col_bias.as_deref().map(EpiBias::PerCol));
            for path in identical_paths() {
                let got = fused_gemm_on(
                    path,
                    &a,
                    &b,
                    Epilogue {
                        bias: epi_bias,
                        relu,
                    },
                );
                assert_bits_eq(
                    want.as_slice(),
                    got.as_slice(),
                    &format!(
                        "fused gemm {m}x{k}x{n} row_bias={} col_bias={} relu={relu} on {}",
                        row_bias.is_some(),
                        col_bias.is_some(),
                        path.name()
                    ),
                );
            }
        }
    }
}

#[test]
fn gemv_kernel_bit_identical_and_fused_relu_flushes_nan_and_signed_zero() {
    let _g = force_lock();
    // A row with NaN and -0.0: the product picks up NaN, the fused ReLU
    // must flush it (and any -0.0 product) to +0.0 — identically on
    // every path. With the no-op epilogue the NaN must SURVIVE (no
    // silent `+0.0` bias may be applied anywhere).
    for n in [1, 7, 8, 31, 96] {
        let k = 9;
        let mut a = mat(1, k, 5);
        a.as_mut_slice()[2] = f32::NAN;
        a.as_mut_slice()[4] = -0.0;
        let b = mat(k, n, 6);
        let mut packed = Matrix::zeros(0, 0);
        cap_tensor::pack_b_slice_into(b.as_slice(), k, n, &mut packed);

        let reference = on_path(KernelPath::Scalar, || {
            let mut c = vec![0.0f32; n];
            kernels::gemv_packed(a.as_slice(), n, packed.as_slice(), &mut c);
            c
        });
        assert!(
            reference.iter().all(|v| v.is_nan()),
            "NaN must propagate through the unfused gemv"
        );
        let mut want_relu = reference.clone();
        manual_epilogue(&mut want_relu, n, None, None, true);
        assert!(want_relu.iter().all(|v| v.to_bits() == 0));

        for path in identical_paths() {
            let got = on_path(path, || {
                let mut c = vec![0.0f32; n];
                kernels::gemv_packed(a.as_slice(), n, packed.as_slice(), &mut c);
                c
            });
            assert_bits_eq(&reference, &got, &format!("gemv n={n} on {}", path.name()));

            let got_relu = on_path(path, || {
                let mut c = vec![0.0f32; n];
                kernels::gemv_packed_fused(
                    a.as_slice(),
                    n,
                    packed.as_slice(),
                    &mut c,
                    Epilogue {
                        bias: None,
                        relu: true,
                    },
                );
                c
            });
            assert_bits_eq(
                &want_relu,
                &got_relu,
                &format!("gemv+relu n={n} on {}", path.name()),
            );
        }
    }
}

#[test]
fn fused_spmm_row_matches_scalar_unfused_plus_manual_epilogue() {
    let _g = force_lock();
    let (k, n) = (17, 29);
    let b = mat(k, n, 9);
    // Rows of varying density, including an empty row (bias/ReLU must
    // still apply to the implicit zero dot products).
    let rows: Vec<(Vec<f32>, Vec<u32>)> = vec![
        (vec![], vec![]),
        (vec![-1.5], vec![4]),
        (
            (0..k).map(|i| (i as f32 - 8.0) / 5.0).collect(),
            (0..k as u32).collect(),
        ),
        (vec![0.75, -0.0, 2.0], vec![1, 8, 16]),
    ];
    for (values, col_idx) in &rows {
        for (bias, relu) in [
            (None, false),
            (None, true),
            (Some(0.6f32), false),
            (Some(-0.6f32), true),
            (Some(-0.0f32), true),
        ] {
            let mut want = on_path(KernelPath::Scalar, || {
                let mut c = vec![0.0f32; n];
                kernels::spmm_row(values, col_idx, b.as_slice(), n, &mut c);
                c
            });
            for v in want.iter_mut() {
                let mut y = *v;
                if let Some(bv) = bias {
                    y += bv;
                }
                if relu {
                    y = if y > 0.0 { y } else { 0.0 };
                }
                *v = y;
            }
            for path in identical_paths() {
                let got = on_path(path, || {
                    let mut c = vec![0.0f32; n];
                    kernels::spmm_row_fused(values, col_idx, b.as_slice(), n, &mut c, bias, relu);
                    c
                });
                assert_bits_eq(
                    &want,
                    &got,
                    &format!(
                        "fused spmm row nnz={} bias={bias:?} relu={relu} on {}",
                        values.len(),
                        path.name()
                    ),
                );
            }
        }
    }
}

#[test]
fn spmv_matches_spmm_row_at_n_equals_1_bitwise() {
    // The batch-1 sparse FC route: spmv over a CSR row must reproduce
    // the n = 1 SpMM row exactly (same ascending stored-value order),
    // fused tail included. Scalar-only by contract, no force needed.
    let k = 23;
    let x: Vec<f32> = (0..k).map(|i| ((i * 7) % 11) as f32 / 4.0 - 1.0).collect();
    let dense = Matrix::from_fn(6, k, |r, c| {
        if (r * k + c) % 3 == 0 {
            (r as f32 - c as f32) / 3.0 + 0.25
        } else {
            0.0
        }
    });
    for (bias, relu) in [(None, false), (Some(0.4f32), true), (Some(-2.0f32), true)] {
        for r in 0..dense.rows() {
            // Rebuild the CSR row directly: nonzeros in ascending
            // column order, exactly as `CsrMatrix::from_dense` stores.
            let mut values = Vec::new();
            let mut col_idx = Vec::new();
            for c in 0..k {
                if dense.get(r, c) != 0.0 {
                    values.push(dense.get(r, c));
                    col_idx.push(c as u32);
                }
            }
            let mut via_spmm = [0.0f32];
            kernels::spmm_row_fused(&values, &col_idx, &x, 1, &mut via_spmm, bias, relu);
            let via_spmv = kernels::spmv_fused(&values, &col_idx, &x, bias, relu);
            assert_eq!(
                via_spmm[0].to_bits(),
                via_spmv.to_bits(),
                "row {r} bias={bias:?} relu={relu}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused packed GEMM (any epilogue flavor, any bit-identical path,
    /// m = 1 gemv route included) equals scalar unfused + manual
    /// epilogue, bit for bit, on arbitrary ragged shapes.
    #[test]
    fn prop_fused_gemm_bit_identical(
        m in 1usize..12,
        k in 0usize..20,
        n in 1usize..40,
        flavor in 0usize..5,
        seed in 0u64..500,
    ) {
        let _g = force_lock();
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let (row_bias, col_bias, relu) = epilogue_cases(m, n, seed)[flavor].clone();
        let mut want = on_path(KernelPath::Scalar, || {
            let packed = PackedB::pack(&b);
            let mut c = Matrix::zeros(m, n);
            cap_tensor::gemm_prepacked_slice(a.as_slice(), m, &packed, c.as_mut_slice()).unwrap();
            c
        });
        manual_epilogue(want.as_mut_slice(), n, row_bias.as_deref(), col_bias.as_deref(), relu);
        let epi_bias = row_bias
            .as_deref()
            .map(EpiBias::PerRow)
            .or(col_bias.as_deref().map(EpiBias::PerCol));
        for path in identical_paths() {
            let got = fused_gemm_on(path, &a, &b, Epilogue { bias: epi_bias, relu });
            for (x, y) in want.as_slice().iter().zip(got.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Fused CSR SpMM (whole matrix, heuristic dispatch included)
    /// equals scalar unfused + manual per-row epilogue on arbitrary
    /// shapes and sparsity.
    #[test]
    fn prop_fused_spmm_bit_identical(
        m in 1usize..10,
        k in 1usize..16,
        n in 1usize..24,
        keep in 1usize..5,
        relu in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        let _g = force_lock();
        let dense = Matrix::from_fn(m, k, |r, c| {
            if (r * k + c).is_multiple_of(keep) {
                ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 6.0 - 1.0
            } else {
                0.0
            }
        });
        let w = CsrMatrix::from_dense(&dense, 0.0);
        let b = mat(k, n, seed.wrapping_add(2));
        let bias = bias_vec(m, seed.wrapping_add(3));
        let mut want = on_path(KernelPath::Scalar, || w.matmul_dense(&b).unwrap());
        manual_epilogue(want.as_mut_slice(), n, Some(&bias), None, relu);
        for path in identical_paths() {
            let got = on_path(path, || {
                let mut c = Matrix::zeros(m, n);
                w.matmul_dense_into_fused(&b, &mut c, Some(&bias), relu).unwrap();
                c
            });
            for (x, y) in want.as_slice().iter().zip(got.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The batch-1 sparse matvec (fused or not) equals the scalar
    /// matvec + manual epilogue on arbitrary sparsity patterns.
    #[test]
    fn prop_fused_spmv_bit_identical(
        rows in 1usize..12,
        k in 1usize..20,
        keep in 1usize..4,
        relu in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        let dense = Matrix::from_fn(rows, k, |r, c| {
            if (r + c + seed as usize).is_multiple_of(keep) {
                ((r * 13 + c * 7) % 9) as f32 / 4.0 - 1.0
            } else {
                0.0
            }
        });
        let w = CsrMatrix::from_dense(&dense, 0.0);
        let x: Vec<f32> = (0..k).map(|i| ((i * 5 + seed as usize) % 7) as f32 / 3.0 - 1.0).collect();
        let bias = bias_vec(rows, seed);
        let mut want = w.matvec(&x).unwrap();
        for (r, v) in want.iter_mut().enumerate() {
            let mut y = *v + bias[r];
            if relu {
                y = if y > 0.0 { y } else { 0.0 };
            }
            *v = y;
        }
        let mut got = vec![0.0f32; rows];
        w.matvec_fused_into(&x, &mut got, Some(&bias), relu).unwrap();
        for (x, y) in want.iter().zip(got.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
