//! Scalar ↔ SIMD kernel parity suite.
//!
//! The dispatch contract (`cap_tensor::kernels`): every path except the
//! opt-in `avx2-fma` produces **bit-identical** outputs to the scalar
//! kernels — same `f32::to_bits` for every element, including NaN
//! payloads and signed zeros — across ragged shapes (`n` not a multiple
//! of the 8-wide panel, `k = 0`, single-row batch-1). The fused-FMA
//! path is held to a documented ULP-style relative bound instead.
//!
//! `kernels::force` is process-global, so every test that pins a path
//! serializes on one mutex; on hosts without AVX2, `available_paths()`
//! is just `[Scalar]` and each comparison degenerates to scalar vs
//! scalar — still a pass, never a skip.

use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{CsrMatrix, Matrix, PackedB, Pool2dParams, Tensor4};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Global serialization for tests that call `kernels::force`.
fn force_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    // A test that panicked while holding the lock already failed; the
    // poison flag carries no extra information for the next test.
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the dispatcher pinned to `path`, restoring auto after.
fn on_path<T>(path: KernelPath, f: impl FnOnce() -> T) -> T {
    kernels::force(Some(path));
    let out = f();
    kernels::force(None);
    out
}

/// Deterministic test matrix with awkward values: negatives, zeros and
/// fractions whose products round (so FMA vs mul+add differences are
/// visible if a kernel fuses when it must not).
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = r
            .wrapping_mul(131)
            .wrapping_add(c.wrapping_mul(31))
            .wrapping_add(seed as usize);
        match h % 11 {
            0 => 0.0,
            1 => -0.0,
            v => (v as f32 - 5.0) / 7.0,
        }
    })
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Bit-identical paths to compare against scalar (excludes `Avx2Fma`).
fn identical_paths() -> Vec<KernelPath> {
    kernels::available_paths()
        .into_iter()
        .filter(|p| p.is_bit_identical_to_scalar())
        .collect()
}

fn gemm_prepacked_on(path: KernelPath, a: &Matrix, b: &Matrix) -> Matrix {
    on_path(path, || {
        let packed = PackedB::pack(b);
        let mut c = Matrix::zeros(a.rows(), b.cols());
        cap_tensor::gemm_prepacked(a, &packed, &mut c).unwrap();
        c
    })
}

fn gemm_prealloc_on(path: KernelPath, a: &Matrix, b: &Matrix) -> Matrix {
    on_path(path, || {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        cap_tensor::gemm_prealloc(a, b, &mut c).unwrap();
        c
    })
}

fn spmm_on(path: KernelPath, w: &CsrMatrix, b: &Matrix) -> Matrix {
    on_path(path, || w.matmul_dense(b).unwrap())
}

#[test]
fn gemm_packed_bit_identical_ragged_shapes() {
    let _g = force_lock();
    // Ragged on purpose: n not a multiple of PANEL=8 (incl. n < 8),
    // k = 0, batch-1 single rows, and multi-band row counts.
    for (m, k, n) in [
        (1, 1, 1),
        (1, 7, 13),
        (1, 24, 96), // batch-1, panel-multiple n
        (3, 0, 5),   // k = 0: output must be all zeros on every path
        (4, 9, 8),
        (5, 16, 31),
        (33, 12, 17), // crosses the 32-row parallel band boundary
        (37, 19, 53),
    ] {
        let a = mat(m, k, 3);
        let b = mat(k, n, 4);
        let reference = gemm_prepacked_on(KernelPath::Scalar, &a, &b);
        if k == 0 {
            assert!(reference.as_slice().iter().all(|&v| v == 0.0));
        }
        for path in identical_paths() {
            let got = gemm_prepacked_on(path, &a, &b);
            assert_bits_eq(
                reference.as_slice(),
                got.as_slice(),
                &format!("gemm_prepacked {m}x{k}x{n} on {}", path.name()),
            );
        }
    }
}

#[test]
fn gemm_prealloc_axpy_bit_identical() {
    let _g = force_lock();
    // Exercises the unpacked GEMM whose inner loop is the axpy kernel,
    // including the zero-skip branch (mat() emits exact zeros).
    for (m, k, n) in [(1, 5, 9), (7, 13, 21), (40, 17, 33)] {
        let a = mat(m, k, 11);
        let b = mat(k, n, 12);
        let reference = gemm_prealloc_on(KernelPath::Scalar, &a, &b);
        for path in identical_paths() {
            let got = gemm_prealloc_on(path, &a, &b);
            assert_bits_eq(
                reference.as_slice(),
                got.as_slice(),
                &format!("gemm_prealloc {m}x{k}x{n} on {}", path.name()),
            );
        }
    }
}

#[test]
fn spmm_bit_identical_across_sparsity() {
    let _g = force_lock();
    for keep_every in [1, 2, 3, 7] {
        for (m, k, n) in [(1, 9, 13), (13, 17, 5), (9, 24, 40), (6, 8, 1)] {
            let dense = Matrix::from_fn(m, k, |r, c| {
                if (r * k + c).is_multiple_of(keep_every) {
                    (r as f32 - c as f32) / 3.0 + 0.25
                } else {
                    0.0
                }
            });
            let w = CsrMatrix::from_dense(&dense, 0.0);
            let b = mat(k, n, 21);
            let reference = spmm_on(KernelPath::Scalar, &w, &b);
            for path in identical_paths() {
                let got = spmm_on(path, &w, &b);
                assert_bits_eq(
                    reference.as_slice(),
                    got.as_slice(),
                    &format!("spmm {m}x{k}x{n} keep=1/{keep_every} on {}", path.name()),
                );
            }
        }
    }
}

#[test]
fn elementwise_bit_identical_including_nan_and_signed_zero() {
    let _g = force_lock();
    // 19 elements: exercises both the 8-wide SIMD body and the scalar
    // tail, with the edge values that broke lesser ReLUs.
    let src: Vec<f32> = vec![
        -1.5,
        -0.0,
        0.0,
        f32::NAN,
        2.5,
        -f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        1e-38,
        -1e-38,
        3.25,
        -7.0,
        0.5,
        -0.5,
        9.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1.0,
        -1.0,
    ];
    let reference_inplace = on_path(KernelPath::Scalar, || {
        let mut d = src.clone();
        cap_tensor::ops::relu_inplace(&mut d);
        d
    });
    let reference_into = on_path(KernelPath::Scalar, || {
        let mut d = vec![9.9f32; src.len()];
        cap_tensor::ops::relu_into(&src, &mut d);
        d
    });
    // relu_inplace keeps NaN and -0.0; relu_into flushes both to +0.0.
    assert!(reference_inplace[3].is_nan());
    assert_eq!(reference_inplace[1].to_bits(), (-0.0f32).to_bits());
    assert_eq!(reference_into[3].to_bits(), 0.0f32.to_bits());
    assert_eq!(reference_into[1].to_bits(), 0.0f32.to_bits());

    for path in identical_paths() {
        let got = on_path(path, || {
            let mut d = src.clone();
            cap_tensor::ops::relu_inplace(&mut d);
            d
        });
        assert_bits_eq(
            &reference_inplace,
            &got,
            &format!("relu_inplace on {}", path.name()),
        );

        let got = on_path(path, || {
            let mut d = vec![9.9f32; src.len()];
            cap_tensor::ops::relu_into(&src, &mut d);
            d
        });
        assert_bits_eq(
            &reference_into,
            &got,
            &format!("relu_into on {}", path.name()),
        );

        // bias broadcast + pairwise add, straight through the kernels API.
        let bias_ref = on_path(KernelPath::Scalar, || {
            let mut d = src.clone();
            kernels::bias_broadcast(&mut d, 0.7);
            d
        });
        let bias_got = on_path(path, || {
            let mut d = src.clone();
            kernels::bias_broadcast(&mut d, 0.7);
            d
        });
        assert_bits_eq(
            &bias_ref,
            &bias_got,
            &format!("bias_broadcast on {}", path.name()),
        );

        let add_ref = on_path(KernelPath::Scalar, || {
            let mut d = src.clone();
            kernels::vec_add(&mut d, &reference_into);
            d
        });
        let add_got = on_path(path, || {
            let mut d = src.clone();
            kernels::vec_add(&mut d, &reference_into);
            d
        });
        assert_bits_eq(&add_ref, &add_got, &format!("vec_add on {}", path.name()));
    }
}

#[test]
fn max_pool_bit_identical_with_padding_and_strides() {
    let _g = force_lock();
    // Geometries spanning: no-pad/pad, stride 1/2/3 (SIMD uses loadu
    // for stride 1, gather otherwise), interiors wider and narrower
    // than 8 lanes, and Caffenet's overlapping 3x3/2 window.
    let cases = [
        (4, 4, Pool2dParams::new(2, 0, 2)),
        (5, 5, Pool2dParams::new(2, 1, 1)),
        (7, 23, Pool2dParams::new(3, 1, 2)),
        (9, 40, Pool2dParams::new(3, 0, 1)),
        (6, 19, Pool2dParams::new(4, 2, 3)),
        (55, 55, Pool2dParams::new(3, 0, 2)),
        (2, 2, Pool2dParams::new(2, 1, 1)),
    ];
    for (h, w, p) in cases {
        let input = Tensor4::from_fn(2, 3, h, w, |ni, ci, y, x| {
            let v = ((ni * 7 + ci * 5 + y * 3 + x) % 13) as f32 - 6.0;
            // Sprinkle signed zeros and negatives to stress tie-breaking.
            if v == 0.0 {
                -0.0
            } else {
                v
            }
        });
        let reference = on_path(KernelPath::Scalar, || {
            cap_tensor::max_pool2d(&input, &p).unwrap()
        });
        for path in identical_paths() {
            let got = on_path(path, || cap_tensor::max_pool2d(&input, &p).unwrap());
            assert_bits_eq(
                reference.as_slice(),
                got.as_slice(),
                &format!(
                    "max_pool {h}x{w} k={} pad={} s={} on {}",
                    p.k,
                    p.pad,
                    p.stride,
                    path.name()
                ),
            );
        }
    }
}

#[test]
fn max_pool_all_negative_infinity_plane_matches_scalar_zero() {
    let _g = force_lock();
    // Every window cell is -inf: the scalar kernel's `hit` flag never
    // fires and the output is 0.0 — the SIMD path must agree.
    let input = Tensor4::from_fn(1, 1, 6, 16, |_, _, _, _| f32::NEG_INFINITY);
    let p = Pool2dParams::new(2, 0, 1);
    let reference = on_path(KernelPath::Scalar, || {
        cap_tensor::max_pool2d(&input, &p).unwrap()
    });
    assert!(reference.as_slice().iter().all(|&v| v.to_bits() == 0));
    for path in identical_paths() {
        let got = on_path(path, || cap_tensor::max_pool2d(&input, &p).unwrap());
        assert_bits_eq(reference.as_slice(), got.as_slice(), path.name());
    }
}

#[test]
fn avx2_fma_path_is_ulp_close_to_scalar() {
    if !KernelPath::Avx2Fma.is_available() {
        // Scalar-only host: the FMA contract is vacuous here; the
        // bit-identity tests above still ran in full.
        return;
    }
    let _g = force_lock();
    // Positive-valued operands (no catastrophic cancellation), so the
    // fused path's error stays within a small relative bound of the
    // twice-rounded scalar result: each of k fused steps differs from
    // mul+add by at most half an ulp of the partial sum.
    let (m, k, n) = (9, 33, 29);
    let a = Matrix::from_fn(m, k, |r, c| 0.1 + ((r * 31 + c * 17) % 23) as f32 / 23.0);
    let b = Matrix::from_fn(k, n, |r, c| 0.1 + ((r * 13 + c * 7) % 19) as f32 / 19.0);
    let reference = gemm_prepacked_on(KernelPath::Scalar, &a, &b);
    let fused = gemm_prepacked_on(KernelPath::Avx2Fma, &a, &b);
    for (i, (x, y)) in reference
        .as_slice()
        .iter()
        .zip(fused.as_slice().iter())
        .enumerate()
    {
        let rel = (x - y).abs() / x.abs().max(f32::MIN_POSITIVE);
        // k+1 roundings at epsilon/2 each, with slack for the panel sum.
        let bound = (k as f32 + 2.0) * f32::EPSILON;
        assert!(
            rel <= bound,
            "fma gemm element {i}: {x} vs {y}, rel err {rel:e} > bound {bound:e}"
        );
    }
}

#[test]
fn dispatch_override_is_honored() {
    let _g = force_lock();
    kernels::force(None);
    let selected = kernels::selected();
    // Whatever was selected must be runnable here.
    assert!(selected.is_available());
    match std::env::var("CAP_TENSOR_KERNEL").as_deref() {
        Ok("scalar") => assert_eq!(
            selected,
            KernelPath::Scalar,
            "CAP_TENSOR_KERNEL=scalar must pin the scalar path"
        ),
        Ok("avx2") if KernelPath::Avx2.is_available() => {
            assert_eq!(selected, KernelPath::Avx2)
        }
        Ok("avx2-fma") if KernelPath::Avx2Fma.is_available() => {
            assert_eq!(selected, KernelPath::Avx2Fma)
        }
        Ok("avx2") | Ok("avx2-fma") => assert_eq!(
            selected,
            KernelPath::Scalar,
            "unavailable request must fall back to scalar"
        ),
        // auto / unset / unknown: the default selection must keep the
        // bit-identity contract.
        _ => assert!(selected.is_bit_identical_to_scalar()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packed GEMM stays bit-identical across every available
    /// bit-identical path on arbitrary ragged shapes, k = 0 included.
    #[test]
    fn prop_gemm_packed_bit_identical(
        m in 1usize..20,
        k in 0usize..24,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let _g = force_lock();
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let reference = gemm_prepacked_on(KernelPath::Scalar, &a, &b);
        for path in identical_paths() {
            let got = gemm_prepacked_on(path, &a, &b);
            for (x, y) in reference.as_slice().iter().zip(got.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// SpMM stays bit-identical on arbitrary shapes and sparsity.
    #[test]
    fn prop_spmm_bit_identical(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..40,
        keep in 1usize..5,
        seed in 0u64..500,
    ) {
        let _g = force_lock();
        let dense = Matrix::from_fn(m, k, |r, c| {
            if (r * k + c).is_multiple_of(keep) {
                ((r * 31 + c * 17 + seed as usize) % 13) as f32 / 6.0 - 1.0
            } else {
                0.0
            }
        });
        let w = CsrMatrix::from_dense(&dense, 0.0);
        let b = mat(k, n, seed.wrapping_add(2));
        let reference = spmm_on(KernelPath::Scalar, &w, &b);
        for path in identical_paths() {
            let got = spmm_on(path, &w, &b);
            for (x, y) in reference.as_slice().iter().zip(got.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Max pooling stays bit-identical across geometry.
    #[test]
    fn prop_max_pool_bit_identical(
        h in 1usize..12,
        w in 1usize..30,
        k in 1usize..4,
        pad in 0usize..2,
        stride in 1usize..4,
        seed in 0u64..200,
    ) {
        let p = Pool2dParams::new(k, pad, stride);
        prop_assume!(k > pad); // valid geometry (out_spatial rejects k <= pad anyway)
        prop_assume!(p.out_shape(h, w).is_ok());
        let _g = force_lock();
        let input = Tensor4::from_fn(1, 2, h, w, |_, ci, y, x| {
            ((ci * 11 + y * 5 + x * 3 + seed as usize) % 9) as f32 - 4.0
        });
        let reference = on_path(KernelPath::Scalar, || {
            cap_tensor::max_pool2d(&input, &p).unwrap()
        });
        for path in identical_paths() {
            let got = on_path(path, || cap_tensor::max_pool2d(&input, &p).unwrap());
            for (x, y) in reference.as_slice().iter().zip(got.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
