//! Property-based parity suites for the zero-allocation steady-state
//! kernels: every packed/pooled variant must agree with the seed
//! implementation it replaces, across randomized shapes and contents.

use cap_tensor::{
    conv2d_gemm, conv2d_gemm_packed, conv2d_sparse, conv2d_sparse_packed, gemm, gemm_prealloc,
    gemm_prepacked, Conv2dParams, CsrMatrix, Matrix, PackedB, PackedConvWeights,
    PackedSparseConvWeights, Tensor4, WorkspacePool,
};
use proptest::prelude::*;

/// Deterministic pseudo-random fill that exercises positives, negatives
/// and exact zeros (zeros matter: they trigger the GEMM skip branch).
fn fill(seed: usize, zero_every: usize) -> impl Fn(usize) -> f32 {
    move |i: usize| {
        if zero_every > 0 && (i + seed).is_multiple_of(zero_every) {
            0.0
        } else {
            (((i * 31 + seed * 17) % 23) as f32 - 11.0) / 7.0
        }
    }
}

fn matrix(rows: usize, cols: usize, seed: usize, zero_every: usize) -> Matrix {
    let f = fill(seed, zero_every);
    Matrix::from_fn(rows, cols, |r, c| f(r * cols + c))
}

fn tensor(n: usize, c: usize, h: usize, w: usize, seed: usize) -> Tensor4 {
    let f = fill(seed, 5);
    Tensor4::from_fn(n, c, h, w, |ni, ci, hi, wi| {
        f(((ni * c + ci) * h + hi) * w + wi)
    })
}

proptest! {
    /// Panel-packed GEMM ≡ plain GEMM. Accumulation order is identical
    /// (kk-ascending per output element), so parity is near-bitwise; the
    /// tolerance only covers ±0.0 sign plus fused rounding differences.
    #[test]
    fn packed_gemm_matches_gemm(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0usize..1000,
        zero_every in 0usize..4,
    ) {
        let a = matrix(m, k, seed, zero_every);
        let b = matrix(k, n, seed + 1, 0);
        let expect = gemm(&a, &b).unwrap();
        let packed = PackedB::pack(&b);
        let mut got = Matrix::zeros(m, n);
        gemm_prepacked(&a, &packed, &mut got).unwrap();
        prop_assert!(expect.max_abs_diff(&got).unwrap() <= 1e-6);
    }

    /// The dense-zero skip probe must not change results relative to a
    /// fully dense multiply of the same values.
    #[test]
    fn sparse_rows_do_not_change_gemm(
        m in 1usize..16,
        k in 1usize..32,
        n in 1usize..24,
        seed in 0usize..1000,
    ) {
        // Half the rows of A fully zeroed: mixes skip-branch rows and
        // dense-branch rows in one multiply.
        let mut a = matrix(m, k, seed, 0);
        for r in (0..m).step_by(2) {
            a.row_mut(r).fill(0.0);
        }
        let b = matrix(k, n, seed + 2, 0);
        let expect = gemm(&a, &b).unwrap();
        let mut got = Matrix::zeros(m, n);
        gemm_prealloc(&a, &b, &mut got).unwrap();
        prop_assert!(expect.max_abs_diff(&got).unwrap() == 0.0);
        for r in (0..m).step_by(2) {
            prop_assert!(got.row(r).iter().all(|&v| v == 0.0));
        }
    }

    /// Workspace-pooled packed convolution ≡ seed convolution, including
    /// grouped (AlexNet-style) geometry, on a reused output tensor.
    #[test]
    fn packed_conv_matches_seed_conv(
        n in 1usize..3,
        groups in 1usize..3,
        cpg in 1usize..3,
        opg in 1usize..3,
        hw in 3usize..8,
        kpad in 0usize..2,
        seed in 0usize..1000,
    ) {
        let (in_c, out_c) = (groups * cpg, groups * opg);
        let params = Conv2dParams::grouped(in_c, out_c, 3, kpad, 1, groups);
        let weights = matrix(out_c, cpg * 9, seed, 3);
        let bias: Vec<f32> = (0..out_c).map(|i| i as f32 * 0.25 - 0.5).collect();
        let input = tensor(n, in_c, hw, hw, seed + 3);

        let expect = conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap();

        let packed = PackedConvWeights::pack(&weights, &params).unwrap();
        let pool = WorkspacePool::new();
        let mut got = Tensor4::zeros(0, 0, 0, 0);
        // Run twice into the same output: the second pass reuses every
        // buffer and must still agree.
        for _ in 0..2 {
            conv2d_gemm_packed(&input, &packed, Some(&bias), &params, &pool, &mut got).unwrap();
        }
        prop_assert_eq!(expect.shape(), got.shape());
        prop_assert!(expect.max_abs_diff(&got).unwrap() <= 1e-6);
    }

    /// Pre-split CSR convolution ≡ seed sparse convolution ≡ dense.
    #[test]
    fn packed_sparse_conv_matches_seed(
        groups in 1usize..3,
        cpg in 1usize..3,
        opg in 1usize..3,
        hw in 3usize..7,
        seed in 0usize..1000,
    ) {
        let (in_c, out_c) = (groups * cpg, groups * opg);
        let params = Conv2dParams::grouped(in_c, out_c, 3, 1, 1, groups);
        // Heavily pruned weights, as the sparse kernel would see.
        let weights = matrix(out_c, cpg * 9, seed, 2);
        let csr = CsrMatrix::from_dense(&weights, 0.0);
        let input = tensor(2, in_c, hw, hw, seed + 4);

        let expect = conv2d_sparse(&input, &csr, None, &params).unwrap();

        let packed = PackedSparseConvWeights::pack(&csr, &params).unwrap();
        let pool = WorkspacePool::new();
        let mut got = Tensor4::zeros(0, 0, 0, 0);
        for _ in 0..2 {
            conv2d_sparse_packed(&input, &packed, None, &params, &pool, &mut got).unwrap();
        }
        prop_assert!(expect.max_abs_diff(&got).unwrap() <= 1e-6);

        let dense = conv2d_gemm(&input, &weights, None, &params).unwrap();
        prop_assert!(dense.max_abs_diff(&got).unwrap() <= 1e-4);
    }

    /// A workspace checked out of a pool carries stale contents from
    /// earlier, differently-shaped work; results must not depend on them.
    #[test]
    fn workspace_reuse_is_stateless(
        m1 in 1usize..12, k1 in 1usize..12, n1 in 1usize..12,
        m2 in 1usize..12, k2 in 1usize..12, n2 in 1usize..12,
        seed in 0usize..1000,
    ) {
        let pool = WorkspacePool::new();
        // Dirty the pool with a first multiply of unrelated shape.
        {
            let mut ws = pool.checkout();
            let (cols, prod) = ws.conv_slots((k1, n1), (m1, n1));
            let f = fill(seed, 0);
            for (i, v) in cols.as_mut_slice().iter_mut().enumerate() { *v = f(i); }
            let a = matrix(m1, k1, seed + 5, 0);
            gemm_prealloc(&a, cols, prod).unwrap();
        }
        // Second checkout must produce results identical to fresh buffers.
        let a = matrix(m2, k2, seed + 6, 3);
        let b = matrix(k2, n2, seed + 7, 0);
        let expect = gemm(&a, &b).unwrap();
        let mut ws = pool.checkout();
        let (cols, prod) = ws.conv_slots((k2, n2), (m2, n2));
        cols.as_mut_slice().copy_from_slice(b.as_slice());
        gemm_prealloc(&a, cols, prod).unwrap();
        prop_assert!(expect.max_abs_diff(prod).unwrap() == 0.0);
    }
}
