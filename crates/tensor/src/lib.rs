//! # cap-tensor
//!
//! Dense and sparse linear-algebra substrate for the cost-accuracy
//! reproduction workspace.
//!
//! The paper's measurement substrate is a Caffe fork extended with sparse
//! matrix kernels so that pruned (sparsified) CNN layers actually run
//! faster. This crate is that substrate, built from scratch:
//!
//! * [`Matrix`] — row-major dense `f32` matrix with a blocked,
//!   rayon-parallel GEMM ([`gemm()`]).
//! * [`Tensor4`] — NCHW activation tensor used by the CNN layers.
//! * [`CsrMatrix`] — compressed sparse row matrix with sparse×dense
//!   multiplication ([`CsrMatrix::matmul_dense`]), the kernel that turns
//!   pruning ratios into wall-clock savings.
//! * [`im2col()`] / [`col2im`] — the lowering that expresses convolution as
//!   GEMM, exactly as Caffe does.
//! * [`conv`] and [`pool`] — convolution (im2col+GEMM and direct) and
//!   max/average pooling kernels.
//! * [`workspace`] — reusable scratch arenas ([`Workspace`],
//!   [`WorkspacePool`]) behind the zero-allocation steady-state kernels
//!   ([`conv2d_gemm_packed`], [`conv2d_sparse_packed`],
//!   [`gemm_prepacked`]).
//!
//! All kernels are deterministic given deterministic inputs; parallelism
//! via rayon never reorders reductions in a result-visible way (each
//! output element is owned by exactly one task).
//!
//! The hot inner loops run on runtime-dispatched SIMD microkernels
//! ([`kernels`]): AVX2 where the CPU has it, scalar everywhere else,
//! overridable via `CAP_TENSOR_KERNEL={auto,scalar,avx2,avx2-fma}`.
//! The default SIMD path is bit-identical to scalar, so determinism
//! holds across backends too.

#![warn(missing_docs)]

pub mod conv;
pub mod dense;
pub mod error;
pub mod gemm;
pub mod im2col;
pub mod init;
pub mod kernels;
pub mod ops;
pub mod pool;
pub mod precision;
pub mod quant;
pub mod sparse;
pub mod tensor4;
pub mod workspace;

pub use conv::{
    conv2d_direct, conv2d_gemm, conv2d_gemm_packed, conv2d_gemm_packed_fused, conv2d_sparse,
    conv2d_sparse_packed, conv2d_sparse_packed_fused, Conv2dParams, PackedConvWeights,
    PackedSparseConvWeights,
};
pub use dense::Matrix;
pub use error::{ShapeError, TensorResult};
pub use gemm::{
    gemm, gemm_packed_cols, gemm_packed_cols_fused, gemm_prealloc, gemm_prepacked,
    gemm_prepacked_slice, gemm_prepacked_slice_fused, pack_b_slice_into, PackedB,
};
pub use im2col::{col2im, im2col, im2col_packed_prealloc, im2col_prealloc};
pub use kernels::{EpiBias, Epilogue, KernelPath};
pub use pool::{
    avg_pool2d, avg_pool2d_into, max_pool2d, max_pool2d_indices, max_pool2d_into, Pool2dParams,
};
pub use precision::Precision;
pub use quant::{
    conv2d_i8_packed_fused, conv2d_i8_sparse_fused, gemm_i8, pack_b_i8_into, percentile_scale,
    quantize_i8, quantize_rows_into, symmetric_scale, CalibrationMethod, PackedBI8, QuantizedA,
    QuantizedConvWeights, QuantizedCsr, QuantizedSparseConvWeights,
};
pub use sparse::CsrMatrix;
pub use tensor4::Tensor4;
pub use workspace::{PooledWorkspace, Workspace, WorkspacePool};
