//! Row-major dense `f32` matrix.

use crate::error::{ShapeError, TensorResult};
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
///
/// The storage layout is `data[r * cols + c]`. All CNN weights and im2col
/// buffers in the workspace use this type; it is deliberately minimal and
/// allocation-transparent so kernels can reuse buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix where every element is `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> TensorResult<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "from_vec: data length {} != {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Reshape in place to `rows × cols`, reusing the existing allocation.
    ///
    /// All elements are reset to zero. The backing `Vec` only reallocates
    /// when the new size exceeds every size seen before, which is what
    /// makes a `Matrix` a reusable scratch slot in steady-state inference:
    /// after the first pass over each layer shape, no allocator calls
    /// remain.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Create a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor (debug-checked).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter (debug-checked).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Count of elements with magnitude strictly greater than `eps`.
    pub fn nnz(&self, eps: f32) -> usize {
        self.data.iter().filter(|v| v.abs() > eps).count()
    }

    /// Fraction of elements that are (near-)zero: `1 - nnz/len`.
    pub fn sparsity(&self, eps: f32) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz(eps) as f64 / self.data.len() as f64
    }

    /// Sum of absolute values (L1 norm over all elements).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Elementwise in-place scale.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// `self += alpha * other`, shape-checked.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> TensorResult<()> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "axpy: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> TensorResult<f32> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "max_abs_diff: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max))
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f32]) -> TensorResult<Vec<f32>> {
        let mut y = vec![0.0_f32; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product into a caller-provided slice.
    ///
    /// The zero-allocation variant of [`Matrix::matvec`] for
    /// steady-state inference loops; `y` must have exactly `rows`
    /// entries and is overwritten.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> TensorResult<()> {
        if x.len() != self.cols {
            return Err(ShapeError::new(format!(
                "matvec: {}x{} * len {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        if y.len() != self.rows {
            return Err(ShapeError::new(format!(
                "matvec: output len {}, expected {}",
                y.len(),
                self.rows
            )));
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0_f32;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yr = acc;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn nnz_and_sparsity() {
        let m = Matrix::from_vec(1, 4, vec![0.0, 1.0, 0.0, -2.0]).unwrap();
        assert_eq!(m.nnz(0.0), 2);
        assert!((m.sparsity(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b).unwrap();
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn axpy_shape_mismatch_errors() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]).unwrap();
        assert!((m.l1_norm() - 7.0).abs() < 1e-6);
        assert!((m.l2_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn matvec_rejects_bad_len() {
        let m = Matrix::zeros(2, 3);
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.3 - 1.0);
        let x = [0.5, -1.5, 2.0, 0.25];
        let alloc = m.matvec(&x).unwrap();
        let mut into = [f32::NAN; 3];
        m.matvec_into(&x, &mut into).unwrap();
        for (a, b) in alloc.iter().zip(&into) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(m.matvec_into(&x, &mut [0.0; 2]).is_err());
        assert!(m.matvec_into(&[0.0; 3], &mut [0.0; 3]).is_err());
    }
}
