//! Error types for shape-checked tensor operations.

use std::fmt;

/// Error raised when operand shapes are incompatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl ShapeError {
    /// Create a new shape error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// Result alias for fallible tensor operations.
pub type TensorResult<T> = Result<T, ShapeError>;

/// Internal helper: build a `ShapeError` from format arguments.
#[macro_export]
macro_rules! shape_err {
    ($($arg:tt)*) => {
        $crate::error::ShapeError::new(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ShapeError::new("2x3 vs 4x5");
        assert_eq!(e.to_string(), "shape error: 2x3 vs 4x5");
    }

    #[test]
    fn macro_formats() {
        let e = shape_err!("got {}x{}", 2, 3);
        assert_eq!(e.message, "got 2x3");
    }
}
