//! Compressed sparse row (CSR) matrices and sparse×dense kernels.
//!
//! Pruning in the paper turns CNN weight matrices sparse; the extended
//! Caffe framework the authors use [Wen et al., ICCV'17] exploits that
//! sparsity with dedicated kernels. `CsrMatrix` is that substrate: a
//! pruned weight matrix converted once to CSR then multiplied against
//! dense activation panels, skipping zero weights entirely.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use crate::kernels;
use crate::kernels::KernelPath;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Stored density above which the SpMM row kernel runs scalar even when
/// AVX2 was auto-selected.
///
/// The AVX2 SpMM kernel wins by amortizing each stored value over eight
/// output lanes, but its gather-free broadcast-multiply loop carries
/// fixed per-value overhead that only pays off when zeros are actually
/// skipped. BENCH_pr5 measured the crossover directly: at 60% sparsity
/// AVX2 does 60.63 GFLOPS vs 41.80 scalar, while at 0% sparsity (a
/// fully dense matrix stored as CSR) AVX2 drops to 10.11 GFLOPS vs
/// 11.76 scalar. Above this density the scalar row kernel is the faster
/// arm, so [`spmm_effective_path`] swaps to it.
pub const SPMM_DENSE_FALLBACK_DENSITY: f64 = 0.75;

/// Resolve the kernel path the SpMM row loop should actually run, given
/// the matrix density.
///
/// Swaps `path` to [`KernelPath::Scalar`] when `density` exceeds
/// [`SPMM_DENSE_FALLBACK_DENSITY`] — but **only** when the requested
/// path is bit-identical to scalar ([`KernelPath::Avx2`] or scalar
/// itself), so the swap is invisible in outputs. An explicitly forced
/// [`KernelPath::Avx2Fma`] is honored unchanged: substituting scalar
/// there would alter the numbers the caller opted into.
pub fn spmm_effective_path(path: KernelPath, density: f64) -> KernelPath {
    if density > SPMM_DENSE_FALLBACK_DENSITY && path.is_bit_identical_to_scalar() {
        KernelPath::Scalar
    } else {
        path
    }
}

/// Compressed sparse row matrix of `f32`.
///
/// Column indices are stored as `u32` (not `usize`): pruned CNN weight
/// matrices never approach 2³² columns, and halving the index width
/// halves the index bandwidth of the SpMM hot loop on 64-bit targets.
/// The serialized form is unchanged (plain JSON integers), so matrices
/// written before the narrowing deserialize identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, `rows + 1` entries.
    row_ptr: Vec<usize>,
    /// Column index of each stored value.
    col_idx: Vec<u32>,
    /// Stored values, aligned with `col_idx`.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build a CSR matrix from a dense matrix, dropping every element with
    /// magnitude `<= eps`.
    ///
    /// A first counting pass sizes `col_idx`/`values` exactly, so
    /// converting a large pruned layer performs one allocation per
    /// array instead of reallocation churn proportional to `log(nnz)`.
    pub fn from_dense(dense: &Matrix, eps: f32) -> Self {
        let (rows, cols) = dense.shape();
        assert!(
            cols <= u32::MAX as usize,
            "csr: {cols} columns exceed u32 index range"
        );
        let nnz = dense.as_slice().iter().filter(|v| v.abs() > eps).count();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v.abs() > eps {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from raw CSR arrays, validating the invariants.
    ///
    /// Indices are taken as `usize` for caller convenience and narrowed
    /// to the internal `u32` storage after validation; an index above
    /// `u32::MAX` is a [`ShapeError`] like any other out-of-range column.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> TensorResult<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(ShapeError::new(format!(
                "csr: row_ptr length {} != rows+1 {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(ShapeError::new("csr: col_idx/values length mismatch"));
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&values.len()) {
            return Err(ShapeError::new("csr: row_ptr endpoints invalid"));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(ShapeError::new("csr: row_ptr not monotone"));
        }
        if col_idx.iter().any(|&c| c >= cols) {
            return Err(ShapeError::new("csr: column index out of range"));
        }
        if col_idx.iter().any(|&c| c > u32::MAX as usize) {
            return Err(ShapeError::new("csr: column index exceeds u32 range"));
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx: col_idx.into_iter().map(|c| c as u32).collect(),
            values,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) values.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored density `nnz / (rows*cols)`; 0 for an empty matrix.
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Fraction of zero elements, `1 - density`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Expand back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                m.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        m
    }

    /// Sparse × dense multiplication: `self (m×k) * b (k×n) -> m×n`.
    ///
    /// Each output row is produced by one task (rayon over rows), walking
    /// only the stored values of the corresponding CSR row — cost is
    /// `O(nnz_row * n)` instead of `O(k * n)`.
    pub fn matmul_dense(&self, b: &Matrix) -> TensorResult<Matrix> {
        let mut c = Matrix::zeros(self.rows, b.cols());
        self.matmul_dense_into(b, &mut c)?;
        Ok(c)
    }

    /// Sparse × dense multiplication into a preallocated output.
    ///
    /// `c` must already have shape `(self.rows, b.cols)`; prior contents
    /// are overwritten. The zero-allocation variant of
    /// [`CsrMatrix::matmul_dense`] for steady-state inference loops.
    pub fn matmul_dense_into(&self, b: &Matrix, c: &mut Matrix) -> TensorResult<()> {
        self.matmul_dense_into_fused(b, c, None, false)
    }

    /// [`CsrMatrix::matmul_dense_into`] with a fused bias/ReLU epilogue.
    ///
    /// `row_bias`, when present, adds `row_bias[r]` to every element of
    /// output row `r` (CSR rows are conv output channels / FC output
    /// features), then `relu` applies the `forward_into`-flavor ReLU —
    /// both in the same pass that stores the row, saving two full
    /// round-trips of the output through memory. Bitwise identical to
    /// the unfused multiply + bias pass + ReLU pass on every
    /// bit-identical kernel path.
    pub fn matmul_dense_into_fused(
        &self,
        b: &Matrix,
        c: &mut Matrix,
        row_bias: Option<&[f32]>,
        relu: bool,
    ) -> TensorResult<()> {
        if self.cols != b.rows() {
            return Err(ShapeError::new(format!(
                "csr matmul: {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let n = b.cols();
        if c.shape() != (self.rows, n) {
            return Err(ShapeError::new(format!(
                "csr matmul: output {:?}, expected {:?}",
                c.shape(),
                (self.rows, n)
            )));
        }
        if let Some(bias) = row_bias {
            if bias.len() < self.rows {
                return Err(ShapeError::new(format!(
                    "csr matmul: row bias has {} entries, need {}",
                    bias.len(),
                    self.rows
                )));
            }
        }
        let b_data = b.as_slice();
        // Resolve the kernel path once, outside the parallel loop, and
        // pass it by value into the per-row tasks. Dense-stored matrices
        // fall back to the scalar row kernel (see `spmm_effective_path`).
        let path = spmm_effective_path(kernels::selected(), self.density());
        c.as_mut_slice()
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(r, c_row)| {
                let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                kernels::spmm_row_fused_with(
                    path,
                    &self.values[lo..hi],
                    &self.col_idx[lo..hi],
                    b_data,
                    n,
                    c_row,
                    row_bias.map(|bias| bias[r]),
                    relu,
                );
            });
        Ok(())
    }

    /// Split into consecutive row bands of `band_rows` each, without
    /// densifying. Used to pre-split grouped-convolution weights once at
    /// layer construction instead of rebuilding per call.
    ///
    /// `self.rows` must be a multiple of `band_rows`.
    pub fn split_rows(&self, band_rows: usize) -> TensorResult<Vec<CsrMatrix>> {
        if band_rows == 0 || !self.rows.is_multiple_of(band_rows) {
            return Err(ShapeError::new(format!(
                "csr split: {} rows not divisible into bands of {}",
                self.rows, band_rows
            )));
        }
        let bands = self.rows / band_rows;
        let mut out = Vec::with_capacity(bands);
        for band in 0..bands {
            let r0 = band * band_rows;
            let lo = self.row_ptr[r0];
            let hi = self.row_ptr[r0 + band_rows];
            let row_ptr = self.row_ptr[r0..=r0 + band_rows]
                .iter()
                .map(|p| p - lo)
                .collect();
            out.push(CsrMatrix {
                rows: band_rows,
                cols: self.cols,
                row_ptr,
                col_idx: self.col_idx[lo..hi].to_vec(),
                values: self.values[lo..hi].to_vec(),
            });
        }
        Ok(out)
    }

    /// Sparse matrix–vector product.
    pub fn matvec(&self, x: &[f32]) -> TensorResult<Vec<f32>> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Sparse matrix–vector product into a caller-provided slice.
    ///
    /// The zero-allocation variant of [`CsrMatrix::matvec`] for
    /// steady-state inference loops; `y` must have exactly `rows`
    /// entries and is overwritten.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> TensorResult<()> {
        self.matvec_fused_into(x, y, None, false)
    }

    /// [`CsrMatrix::matvec_into`] with a fused bias/ReLU epilogue:
    /// `y[r] = relu(Σ row_r · x + bias[r])`, each part optional and
    /// skipped (not zero-filled) when absent. The batch-1 path of a
    /// pruned fully-connected layer.
    pub fn matvec_fused_into(
        &self,
        x: &[f32],
        y: &mut [f32],
        bias: Option<&[f32]>,
        relu: bool,
    ) -> TensorResult<()> {
        if x.len() != self.cols {
            return Err(ShapeError::new(format!(
                "csr matvec: {}x{} * len {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        if y.len() != self.rows {
            return Err(ShapeError::new(format!(
                "csr matvec: output len {}, expected {}",
                y.len(),
                self.rows
            )));
        }
        if let Some(b) = bias {
            if b.len() < self.rows {
                return Err(ShapeError::new(format!(
                    "csr matvec: bias has {} entries, need {}",
                    b.len(),
                    self.rows
                )));
            }
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            *yr = kernels::spmv_fused(
                &self.values[lo..hi],
                &self.col_idx[lo..hi],
                x,
                bias.map(|b| b[r]),
                relu,
            );
        }
        Ok(())
    }

    /// Iterate over stored `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1])
                .map(move |i| (r, self.col_idx[i] as usize, self.values[i]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use proptest::prelude::*;

    fn sparse_dense_pair(rows: usize, cols: usize, keep_every: usize) -> (Matrix, CsrMatrix) {
        let dense = Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c).is_multiple_of(keep_every) {
                (r as f32 - c as f32) / 3.0 + 0.25
            } else {
                0.0
            }
        });
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        (dense, csr)
    }

    #[test]
    fn dense_roundtrip() {
        let (dense, csr) = sparse_dense_pair(7, 11, 3);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn nnz_matches_dense_count() {
        let (dense, csr) = sparse_dense_pair(9, 9, 4);
        assert_eq!(csr.nnz(), dense.nnz(0.0));
    }

    #[test]
    fn matmul_matches_dense_gemm() {
        let (dense, csr) = sparse_dense_pair(13, 17, 2);
        let b = Matrix::from_fn(17, 5, |r, c| ((r + 2 * c) % 7) as f32 - 3.0);
        let sparse_out = csr.matmul_dense(&b).unwrap();
        let dense_out = gemm(&dense, &b).unwrap();
        assert!(sparse_out.max_abs_diff(&dense_out).unwrap() < 1e-4);
    }

    #[test]
    fn matvec_matches_dense() {
        let (dense, csr) = sparse_dense_pair(6, 8, 3);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.5 - 2.0).collect();
        let ys = csr.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(yd.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let (_, csr) = sparse_dense_pair(3, 4, 2);
        assert!(csr.matmul_dense(&Matrix::zeros(5, 2)).is_err());
        assert!(csr.matvec(&[0.0; 3]).is_err());
    }

    #[test]
    fn from_raw_validates() {
        // Good.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
        // Bad row_ptr length.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Non-monotone row_ptr.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 2, 1], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 3], vec![1.0, 2.0]).is_err());
        // Endpoint mismatch.
        assert!(CsrMatrix::from_raw(2, 3, vec![1, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn eps_threshold_drops_small_values() {
        let dense = Matrix::from_vec(1, 3, vec![0.05, -0.5, 0.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense, 0.1);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().get(0, 1), -0.5);
    }

    #[test]
    fn iter_yields_row_major_triples() {
        let dense = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let triples: Vec<_> = csr.iter().collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(0, 0), 0.0);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.density(), 0.0);
    }

    #[test]
    fn dense_fallback_heuristic_per_arm() {
        // Sparse matrices keep whatever path was selected.
        assert_eq!(spmm_effective_path(KernelPath::Avx2, 0.4), KernelPath::Avx2);
        assert_eq!(
            spmm_effective_path(KernelPath::Scalar, 0.4),
            KernelPath::Scalar
        );
        // Dense-stored matrices swap bit-identical paths to scalar...
        assert_eq!(
            spmm_effective_path(KernelPath::Avx2, 1.0),
            KernelPath::Scalar
        );
        assert_eq!(
            spmm_effective_path(KernelPath::Scalar, 1.0),
            KernelPath::Scalar
        );
        // ...but never an explicitly requested FMA path (different
        // numerics — the caller opted into them).
        assert_eq!(
            spmm_effective_path(KernelPath::Avx2Fma, 1.0),
            KernelPath::Avx2Fma
        );
        // Boundary: exactly at the threshold keeps the requested path.
        assert_eq!(
            spmm_effective_path(KernelPath::Avx2, SPMM_DENSE_FALLBACK_DENSITY),
            KernelPath::Avx2
        );
    }

    #[test]
    fn dense_stored_matmul_matches_gemm_on_every_arm() {
        // A fully dense matrix stored as CSR (density 1.0) trips the
        // scalar fallback; a sparse one does not. Both arms must agree
        // with the dense GEMM oracle bitwise (bit-identical paths only).
        for keep_every in [1usize, 3] {
            let (dense, csr) = sparse_dense_pair(9, 14, keep_every);
            let b = Matrix::from_fn(14, 6, |r, c| ((r * 2 + c) % 9) as f32 - 4.0);
            let s = csr.matmul_dense(&b).unwrap();
            let d = gemm(&dense, &b).unwrap();
            assert!(s.max_abs_diff(&d).unwrap() < 1e-4);
        }
    }

    #[test]
    fn matmul_fused_matches_unfused_plus_epilogue_bitwise() {
        let (_, csr) = sparse_dense_pair(8, 12, 2);
        let b = Matrix::from_fn(12, 7, |r, c| ((r + 3 * c) % 5) as f32 - 2.0);
        let bias: Vec<f32> = (0..8).map(|r| r as f32 * 0.75 - 3.0).collect();

        let mut expect = csr.matmul_dense(&b).unwrap();
        for (r, &bv) in bias.iter().enumerate() {
            for v in expect.row_mut(r) {
                let y = *v + bv;
                *v = if y > 0.0 { y } else { 0.0 };
            }
        }

        let mut fused = Matrix::zeros(8, 7);
        csr.matmul_dense_into_fused(&b, &mut fused, Some(&bias), true)
            .unwrap();
        for (e, f) in expect.as_slice().iter().zip(fused.as_slice()) {
            assert_eq!(e.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let (_, csr) = sparse_dense_pair(6, 8, 3);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.5 - 2.0).collect();
        let alloc = csr.matvec(&x).unwrap();
        let mut into = vec![f32::NAN; 6];
        csr.matvec_into(&x, &mut into).unwrap();
        for (a, b) in alloc.iter().zip(&into) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Shape errors on the output side too.
        assert!(csr.matvec_into(&x, &mut [0.0; 5]).is_err());
    }

    #[test]
    fn matvec_fused_matches_manual_epilogue_bitwise() {
        let (_, csr) = sparse_dense_pair(6, 8, 2);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.25 - 1.0).collect();
        let bias: Vec<f32> = (0..6).map(|r| 1.5 - r as f32).collect();
        let plain = csr.matvec(&x).unwrap();
        let mut fused = vec![0.0; 6];
        csr.matvec_fused_into(&x, &mut fused, Some(&bias), true)
            .unwrap();
        for r in 0..6 {
            let y = plain[r] + bias[r];
            let y = if y > 0.0 { y } else { 0.0 };
            assert_eq!(y.to_bits(), fused[r].to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(rows in 1usize..12, cols in 1usize..12, keep in 1usize..5) {
            let (dense, csr) = sparse_dense_pair(rows, cols, keep);
            prop_assert_eq!(csr.to_dense(), dense);
        }

        #[test]
        fn prop_matmul_matches_gemm(rows in 1usize..10, k in 1usize..10, n in 1usize..10, keep in 1usize..4) {
            let (dense, csr) = sparse_dense_pair(rows, k, keep);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 3 + c) % 5) as f32 - 2.0);
            let s = csr.matmul_dense(&b).unwrap();
            let d = gemm(&dense, &b).unwrap();
            prop_assert!(s.max_abs_diff(&d).unwrap() < 1e-4);
        }

        #[test]
        fn prop_sparsity_in_unit_interval(rows in 1usize..10, cols in 1usize..10, keep in 1usize..6) {
            let (_, csr) = sparse_dense_pair(rows, cols, keep);
            prop_assert!(csr.sparsity() >= 0.0 && csr.sparsity() <= 1.0);
        }
    }
}
