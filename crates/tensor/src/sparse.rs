//! Compressed sparse row (CSR) matrices and sparse×dense kernels.
//!
//! Pruning in the paper turns CNN weight matrices sparse; the extended
//! Caffe framework the authors use [Wen et al., ICCV'17] exploits that
//! sparsity with dedicated kernels. `CsrMatrix` is that substrate: a
//! pruned weight matrix converted once to CSR then multiplied against
//! dense activation panels, skipping zero weights entirely.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use crate::kernels;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Compressed sparse row matrix of `f32`.
///
/// Column indices are stored as `u32` (not `usize`): pruned CNN weight
/// matrices never approach 2³² columns, and halving the index width
/// halves the index bandwidth of the SpMM hot loop on 64-bit targets.
/// The serialized form is unchanged (plain JSON integers), so matrices
/// written before the narrowing deserialize identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, `rows + 1` entries.
    row_ptr: Vec<usize>,
    /// Column index of each stored value.
    col_idx: Vec<u32>,
    /// Stored values, aligned with `col_idx`.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build a CSR matrix from a dense matrix, dropping every element with
    /// magnitude `<= eps`.
    ///
    /// A first counting pass sizes `col_idx`/`values` exactly, so
    /// converting a large pruned layer performs one allocation per
    /// array instead of reallocation churn proportional to `log(nnz)`.
    pub fn from_dense(dense: &Matrix, eps: f32) -> Self {
        let (rows, cols) = dense.shape();
        assert!(
            cols <= u32::MAX as usize,
            "csr: {cols} columns exceed u32 index range"
        );
        let nnz = dense.as_slice().iter().filter(|v| v.abs() > eps).count();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v.abs() > eps {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from raw CSR arrays, validating the invariants.
    ///
    /// Indices are taken as `usize` for caller convenience and narrowed
    /// to the internal `u32` storage after validation; an index above
    /// `u32::MAX` is a [`ShapeError`] like any other out-of-range column.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> TensorResult<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(ShapeError::new(format!(
                "csr: row_ptr length {} != rows+1 {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(ShapeError::new("csr: col_idx/values length mismatch"));
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&values.len()) {
            return Err(ShapeError::new("csr: row_ptr endpoints invalid"));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(ShapeError::new("csr: row_ptr not monotone"));
        }
        if col_idx.iter().any(|&c| c >= cols) {
            return Err(ShapeError::new("csr: column index out of range"));
        }
        if col_idx.iter().any(|&c| c > u32::MAX as usize) {
            return Err(ShapeError::new("csr: column index exceeds u32 range"));
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx: col_idx.into_iter().map(|c| c as u32).collect(),
            values,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) values.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored density `nnz / (rows*cols)`; 0 for an empty matrix.
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Fraction of zero elements, `1 - density`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Expand back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                m.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        m
    }

    /// Sparse × dense multiplication: `self (m×k) * b (k×n) -> m×n`.
    ///
    /// Each output row is produced by one task (rayon over rows), walking
    /// only the stored values of the corresponding CSR row — cost is
    /// `O(nnz_row * n)` instead of `O(k * n)`.
    pub fn matmul_dense(&self, b: &Matrix) -> TensorResult<Matrix> {
        let mut c = Matrix::zeros(self.rows, b.cols());
        self.matmul_dense_into(b, &mut c)?;
        Ok(c)
    }

    /// Sparse × dense multiplication into a preallocated output.
    ///
    /// `c` must already have shape `(self.rows, b.cols)`; prior contents
    /// are overwritten. The zero-allocation variant of
    /// [`CsrMatrix::matmul_dense`] for steady-state inference loops.
    pub fn matmul_dense_into(&self, b: &Matrix, c: &mut Matrix) -> TensorResult<()> {
        if self.cols != b.rows() {
            return Err(ShapeError::new(format!(
                "csr matmul: {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let n = b.cols();
        if c.shape() != (self.rows, n) {
            return Err(ShapeError::new(format!(
                "csr matmul: output {:?}, expected {:?}",
                c.shape(),
                (self.rows, n)
            )));
        }
        let b_data = b.as_slice();
        // Resolve the kernel path once, outside the parallel loop, and
        // pass it by value into the per-row tasks.
        let path = kernels::selected();
        c.as_mut_slice()
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(r, c_row)| {
                let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
                kernels::spmm_row_with(
                    path,
                    &self.values[lo..hi],
                    &self.col_idx[lo..hi],
                    b_data,
                    n,
                    c_row,
                );
            });
        Ok(())
    }

    /// Split into consecutive row bands of `band_rows` each, without
    /// densifying. Used to pre-split grouped-convolution weights once at
    /// layer construction instead of rebuilding per call.
    ///
    /// `self.rows` must be a multiple of `band_rows`.
    pub fn split_rows(&self, band_rows: usize) -> TensorResult<Vec<CsrMatrix>> {
        if band_rows == 0 || !self.rows.is_multiple_of(band_rows) {
            return Err(ShapeError::new(format!(
                "csr split: {} rows not divisible into bands of {}",
                self.rows, band_rows
            )));
        }
        let bands = self.rows / band_rows;
        let mut out = Vec::with_capacity(bands);
        for band in 0..bands {
            let r0 = band * band_rows;
            let lo = self.row_ptr[r0];
            let hi = self.row_ptr[r0 + band_rows];
            let row_ptr = self.row_ptr[r0..=r0 + band_rows]
                .iter()
                .map(|p| p - lo)
                .collect();
            out.push(CsrMatrix {
                rows: band_rows,
                cols: self.cols,
                row_ptr,
                col_idx: self.col_idx[lo..hi].to_vec(),
                values: self.values[lo..hi].to_vec(),
            });
        }
        Ok(out)
    }

    /// Sparse matrix–vector product.
    pub fn matvec(&self, x: &[f32]) -> TensorResult<Vec<f32>> {
        if x.len() != self.cols {
            return Err(ShapeError::new(format!(
                "csr matvec: {}x{} * len {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i] as usize];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Iterate over stored `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1])
                .map(move |i| (r, self.col_idx[i] as usize, self.values[i]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use proptest::prelude::*;

    fn sparse_dense_pair(rows: usize, cols: usize, keep_every: usize) -> (Matrix, CsrMatrix) {
        let dense = Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c).is_multiple_of(keep_every) {
                (r as f32 - c as f32) / 3.0 + 0.25
            } else {
                0.0
            }
        });
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        (dense, csr)
    }

    #[test]
    fn dense_roundtrip() {
        let (dense, csr) = sparse_dense_pair(7, 11, 3);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn nnz_matches_dense_count() {
        let (dense, csr) = sparse_dense_pair(9, 9, 4);
        assert_eq!(csr.nnz(), dense.nnz(0.0));
    }

    #[test]
    fn matmul_matches_dense_gemm() {
        let (dense, csr) = sparse_dense_pair(13, 17, 2);
        let b = Matrix::from_fn(17, 5, |r, c| ((r + 2 * c) % 7) as f32 - 3.0);
        let sparse_out = csr.matmul_dense(&b).unwrap();
        let dense_out = gemm(&dense, &b).unwrap();
        assert!(sparse_out.max_abs_diff(&dense_out).unwrap() < 1e-4);
    }

    #[test]
    fn matvec_matches_dense() {
        let (dense, csr) = sparse_dense_pair(6, 8, 3);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.5 - 2.0).collect();
        let ys = csr.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(yd.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let (_, csr) = sparse_dense_pair(3, 4, 2);
        assert!(csr.matmul_dense(&Matrix::zeros(5, 2)).is_err());
        assert!(csr.matvec(&[0.0; 3]).is_err());
    }

    #[test]
    fn from_raw_validates() {
        // Good.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
        // Bad row_ptr length.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Non-monotone row_ptr.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 2, 1], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 3], vec![1.0, 2.0]).is_err());
        // Endpoint mismatch.
        assert!(CsrMatrix::from_raw(2, 3, vec![1, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn eps_threshold_drops_small_values() {
        let dense = Matrix::from_vec(1, 3, vec![0.05, -0.5, 0.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense, 0.1);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.to_dense().get(0, 1), -0.5);
    }

    #[test]
    fn iter_yields_row_major_triples() {
        let dense = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let triples: Vec<_> = csr.iter().collect();
        assert_eq!(triples, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(0, 0), 0.0);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.density(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(rows in 1usize..12, cols in 1usize..12, keep in 1usize..5) {
            let (dense, csr) = sparse_dense_pair(rows, cols, keep);
            prop_assert_eq!(csr.to_dense(), dense);
        }

        #[test]
        fn prop_matmul_matches_gemm(rows in 1usize..10, k in 1usize..10, n in 1usize..10, keep in 1usize..4) {
            let (dense, csr) = sparse_dense_pair(rows, k, keep);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 3 + c) % 5) as f32 - 2.0);
            let s = csr.matmul_dense(&b).unwrap();
            let d = gemm(&dense, &b).unwrap();
            prop_assert!(s.max_abs_diff(&d).unwrap() < 1e-4);
        }

        #[test]
        fn prop_sparsity_in_unit_interval(rows in 1usize..10, cols in 1usize..10, keep in 1usize..6) {
            let (_, csr) = sparse_dense_pair(rows, cols, keep);
            prop_assert!(csr.sparsity() >= 0.0 && csr.sparsity() <= 1.0);
        }
    }
}
