//! Max and average pooling kernels.

use crate::error::{ShapeError, TensorResult};
use crate::im2col::out_spatial;
use crate::kernels;
use crate::tensor4::Tensor4;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D pooling window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2dParams {
    /// Window size (square).
    pub k: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Stride.
    pub stride: usize,
}

impl Pool2dParams {
    /// Construct a pooling geometry.
    pub fn new(k: usize, pad: usize, stride: usize) -> Self {
        Self { k, pad, stride }
    }

    /// Output spatial shape for an `h×w` input, using Caffe's **ceil**
    /// rounding: `ceil((dim + 2·pad − k) / stride) + 1`, with the last
    /// window clamped to start inside the (padded) input. Ceil mode is
    /// what makes Googlenet's 112→56→28→14→7 pooling chain come out.
    pub fn out_shape(&self, h: usize, w: usize) -> TensorResult<(usize, usize)> {
        // Validate via the floor-mode helper (catches stride 0 / oversize kernels).
        out_spatial(h, w, self.k, self.k, self.pad, self.stride)?;
        let dim = |d: usize| -> usize {
            let mut o = (d + 2 * self.pad - self.k).div_ceil(self.stride) + 1;
            // Caffe clamp: last pooling window must start strictly inside
            // the input plus left padding.
            if (o - 1) * self.stride >= d + self.pad {
                o -= 1;
            }
            o
        };
        Ok((dim(h), dim(w)))
    }
}

/// Max pooling. Padding cells never win (they are treated as `-inf`);
/// an all-padding window yields 0.
pub fn max_pool2d(input: &Tensor4, params: &Pool2dParams) -> TensorResult<Tensor4> {
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    max_pool2d_into(input, params, &mut out)?;
    Ok(out)
}

/// Max pooling into a reusable output tensor (reshaped in place; no
/// argmax map). The zero-allocation variant for inference loops.
pub fn max_pool2d_into(
    input: &Tensor4,
    params: &Pool2dParams,
    out: &mut Tensor4,
) -> TensorResult<()> {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    out.resize(n, c, oh, ow);
    // Resolve the kernel path once; the row kernel vectorizes interior
    // windows (one output column per SIMD lane) and replays the scalar
    // window walk on the borders — bit-identical on every path.
    let path = kernels::selected();
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    for plane in 0..n * c {
        let in_plane = &in_data[plane * h * w..(plane + 1) * h * w];
        let out_plane = &mut out_data[plane * oh * ow..(plane + 1) * oh * ow];
        for (oy, out_row) in out_plane.chunks_mut(ow.max(1)).enumerate() {
            kernels::max_pool_row_with(path, in_plane, h, w, params, oy, out_row);
        }
    }
    Ok(())
}

/// Max pooling that also returns, for each output cell, the flat NCHW index
/// of the winning input element (`usize::MAX` for all-padding windows).
/// The index map is what the backward pass routes gradients through.
pub fn max_pool2d_indices(
    input: &Tensor4,
    params: &Pool2dParams,
) -> TensorResult<(Tensor4, Vec<usize>)> {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    let mut out = Tensor4::zeros(n, c, oh, ow);
    let mut argmax = vec![usize::MAX; n * c * oh * ow];
    let mut oi = 0;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ky in 0..params.k {
                        let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..params.k {
                            let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            let v = input.get(ni, ci, iy as usize, ix as usize);
                            if v > best {
                                best = v;
                                best_idx = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            }
                        }
                    }
                    if best_idx == usize::MAX {
                        best = 0.0;
                    }
                    out.set(ni, ci, oy, ox, best);
                    argmax[oi] = best_idx;
                    oi += 1;
                }
            }
        }
    }
    Ok((out, argmax))
}

/// Average pooling over valid (non-padding) cells.
pub fn avg_pool2d(input: &Tensor4, params: &Pool2dParams) -> TensorResult<Tensor4> {
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    avg_pool2d_into(input, params, &mut out)?;
    Ok(out)
}

/// Average pooling into a reusable output tensor (reshaped in place).
pub fn avg_pool2d_into(
    input: &Tensor4,
    params: &Pool2dParams,
    out: &mut Tensor4,
) -> TensorResult<()> {
    let (n, c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    if params.k == 0 {
        return Err(ShapeError::new("avg_pool2d: window must be >= 1"));
    }
    out.resize(n, c, oh, ow);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    let mut count = 0usize;
                    for ky in 0..params.k {
                        let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..params.k {
                            let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            acc += input.get(ni, ci, iy as usize, ix as usize);
                            count += 1;
                        }
                    }
                    out.set(
                        ni,
                        ci,
                        oy,
                        ox,
                        if count > 0 { acc / count as f32 } else { 0.0 },
                    );
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_pool_known() {
        let input = Tensor4::from_vec(
            1,
            1,
            4,
            4,
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let out = max_pool2d(&input, &Pool2dParams::new(2, 0, 2)).unwrap();
        assert_eq!(out.shape(), (1, 1, 2, 2));
        assert_eq!(out.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_known() {
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let out = avg_pool2d(&input, &Pool2dParams::new(2, 0, 2)).unwrap();
        assert_eq!(out.as_slice(), &[4.0]);
    }

    #[test]
    fn max_pool_overlapping_caffenet_style() {
        // Caffenet uses 3x3 stride-2 overlapping pooling: 55 -> 27.
        let input = Tensor4::zeros(1, 1, 55, 55);
        let out = max_pool2d(&input, &Pool2dParams::new(3, 0, 2)).unwrap();
        assert_eq!(out.shape(), (1, 1, 27, 27));
    }

    #[test]
    fn argmax_routes_to_winner() {
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![0.0, 9.0, 1.0, 2.0]).unwrap();
        let (out, idx) = max_pool2d_indices(&input, &Pool2dParams::new(2, 0, 2)).unwrap();
        assert_eq!(out.as_slice(), &[9.0]);
        assert_eq!(idx, vec![1]);
    }

    #[test]
    fn padding_never_wins_max() {
        // Negative inputs with zero padding: the max must still be an
        // input element, not the padding zero.
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![-5.0, -4.0, -3.0, -2.0]).unwrap();
        let out = max_pool2d(&input, &Pool2dParams::new(2, 1, 1)).unwrap();
        assert!(out.as_slice().iter().all(|&v| v < 0.0));
    }

    #[test]
    fn avg_pool_ignores_padding_cells() {
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![4.0, 4.0, 4.0, 4.0]).unwrap();
        // 2x2 window with pad 1: corner windows see a single valid cell.
        let out = avg_pool2d(&input, &Pool2dParams::new(2, 1, 1)).unwrap();
        assert_eq!(out.get(0, 0, 0, 0), 4.0);
    }

    proptest! {
        #[test]
        fn prop_max_ge_avg(h in 2usize..8, w in 2usize..8, k in 1usize..3, stride in 1usize..3) {
            let input = Tensor4::from_fn(1, 2, h, w, |_, c, y, x| ((c * 3 + y * 2 + x) % 7) as f32);
            let p = Pool2dParams::new(k, 0, stride);
            if p.out_shape(h, w).is_ok() {
                let mx = max_pool2d(&input, &p).unwrap();
                let av = avg_pool2d(&input, &p).unwrap();
                for (m, a) in mx.as_slice().iter().zip(av.as_slice().iter()) {
                    prop_assert!(m >= a);
                }
            }
        }

        #[test]
        fn prop_max_pool_output_is_input_element(h in 2usize..6, w in 2usize..6) {
            let input = Tensor4::from_fn(1, 1, h, w, |_, _, y, x| (y * w + x) as f32 - 3.0);
            let p = Pool2dParams::new(2, 0, 1);
            if p.out_shape(h, w).is_ok() {
                let (out, idx) = max_pool2d_indices(&input, &p).unwrap();
                for (o, &i) in out.as_slice().iter().zip(idx.iter()) {
                    prop_assert!(i != usize::MAX);
                    prop_assert_eq!(*o, input.as_slice()[i]);
                }
            }
        }
    }
}
