//! Portable safe-Rust microkernels — the fallback path and the
//! correctness oracle every SIMD path is tested against.
//!
//! These are the original inner loops of `gemm.rs` / `sparse.rs` /
//! `ops.rs` / `pool.rs`, moved here verbatim so both dispatch targets
//! live side by side. The compiler autovectorizes the fixed-width
//! `PANEL` accumulator loops reasonably well; the explicit AVX2 path
//! exists to stop leaving the rest of the lanes on the table.

use super::{EpiBias, Epilogue, PANEL, ROW_BLOCK};
use crate::pool::Pool2dParams;

/// Apply a fused epilogue to the already-stored rows of a band: bias
/// first (per-row or per-column), then the `forward_into` ReLU flavor
/// (`v > 0.0` keeps `v`, everything else — negatives, `-0.0`, NaN —
/// becomes `+0.0`). `row0` is the absolute index of the band's first
/// row, used to index a per-row bias.
///
/// The scalar fused kernels run the plain kernel and then this pass
/// over the cache-resident band. That is bitwise identical to applying
/// the same operations in-register before the store (the AVX2 fused
/// path): an `f32` round-trip through memory is exact, and the
/// floating-point operation sequence per element is the same.
fn apply_epilogue(c_band: &mut [f32], n: usize, row0: usize, epi: Epilogue<'_>) {
    match epi.bias {
        Some(EpiBias::PerRow(b)) => {
            for (local_r, row) in c_band.chunks_mut(n.max(1)).enumerate() {
                let bv = b[row0 + local_r];
                for v in row {
                    *v += bv;
                }
            }
        }
        Some(EpiBias::PerCol(b)) => {
            for row in c_band.chunks_mut(n.max(1)) {
                for (v, &bv) in row.iter_mut().zip(b.iter()) {
                    *v += bv;
                }
            }
        }
        None => {}
    }
    if epi.relu {
        for v in c_band {
            *v = if *v > 0.0 { *v } else { 0.0 };
        }
    }
}

/// One row band of the packed-panel GEMM. See
/// [`super::gemm_packed_band_with`] for the contract.
pub fn gemm_packed_band(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
) {
    let panels = n.div_ceil(PANEL);
    let rows_here = c_band.len() / n.max(1);
    // Register-block ROW_BLOCK output rows against each panel:
    // every `kk` step issues ROW_BLOCK*PANEL independent
    // multiply-adds, hiding FMA latency that a single 8-wide
    // accumulator chain would expose. Each output element still
    // accumulates in ascending-`kk` order, so results are
    // bit-identical to the unblocked walk.
    let mut local_r = 0;
    while local_r + ROW_BLOCK <= rows_here {
        let r = row0 + local_r;
        let ar0 = &a_data[r * k..(r + 1) * k];
        let ar1 = &a_data[(r + 1) * k..(r + 2) * k];
        let ar2 = &a_data[(r + 2) * k..(r + 3) * k];
        let ar3 = &a_data[(r + 3) * k..(r + 4) * k];
        for p in 0..panels {
            let base = p * k * PANEL;
            let panel = &b_data[base..base + k * PANEL];
            let mut acc0 = [0.0f32; PANEL];
            let mut acc1 = [0.0f32; PANEL];
            let mut acc2 = [0.0f32; PANEL];
            let mut acc3 = [0.0f32; PANEL];
            for (((prow, &a0), (&a1, &a2)), &a3) in panel
                .chunks_exact(PANEL)
                .zip(ar0.iter())
                .zip(ar1.iter().zip(ar2.iter()))
                .zip(ar3.iter())
            {
                let prow: &[f32; PANEL] = prow.try_into().unwrap();
                for j in 0..PANEL {
                    let pv = prow[j];
                    acc0[j] += a0 * pv;
                    acc1[j] += a1 * pv;
                    acc2[j] += a2 * pv;
                    acc3[j] += a3 * pv;
                }
            }
            let c0 = p * PANEL;
            let width = PANEL.min(n - c0);
            for (i, accr) in [&acc0, &acc1, &acc2, &acc3].into_iter().enumerate() {
                let row = &mut c_band[(local_r + i) * n..(local_r + i + 1) * n];
                row[c0..c0 + width].copy_from_slice(&accr[..width]);
            }
        }
        local_r += ROW_BLOCK;
    }
    // Remaining rows one at a time through the dedicated GEMV kernel
    // (extracted from this loop, so the band result is unchanged).
    for local_r in local_r..rows_here {
        let r = row0 + local_r;
        gemv_packed(
            &a_data[r * k..(r + 1) * k],
            n,
            b_data,
            &mut c_band[local_r * n..(local_r + 1) * n],
        );
    }
}

/// One row-major matvec against the panel-packed `b_data`
/// (`k = a_row.len()`, `n.div_ceil(PANEL)` panels of `k × PANEL`):
/// the single-row trailing path of [`gemm_packed_band`], extracted so
/// batch-1 inference can call it directly without pretending to be a
/// degenerate GEMM. Blocks four panels per pass, so a lone row still
/// carries 32 independent accumulator chains while the packed weight
/// matrix streams through exactly once.
///
/// Each output element accumulates in ascending-`kk` order — panel
/// grouping only changes which elements are *concurrent*, never the
/// order within one element's sum — so results are bit-identical to
/// the band kernel (this *is* that code).
pub fn gemv_packed(a_row: &[f32], n: usize, b_data: &[f32], c_row: &mut [f32]) {
    let k = a_row.len();
    let panels = n.div_ceil(PANEL);
    let plen = k * PANEL;
    let mut p = 0;
    while p + 4 <= panels {
        let pn0 = &b_data[p * plen..(p + 1) * plen];
        let pn1 = &b_data[(p + 1) * plen..(p + 2) * plen];
        let pn2 = &b_data[(p + 2) * plen..(p + 3) * plen];
        let pn3 = &b_data[(p + 3) * plen..(p + 4) * plen];
        let mut acc0 = [0.0f32; PANEL];
        let mut acc1 = [0.0f32; PANEL];
        let mut acc2 = [0.0f32; PANEL];
        let mut acc3 = [0.0f32; PANEL];
        for ((((&aik, p0), p1), p2), p3) in a_row
            .iter()
            .zip(pn0.chunks_exact(PANEL))
            .zip(pn1.chunks_exact(PANEL))
            .zip(pn2.chunks_exact(PANEL))
            .zip(pn3.chunks_exact(PANEL))
        {
            let p0: &[f32; PANEL] = p0.try_into().unwrap();
            let p1: &[f32; PANEL] = p1.try_into().unwrap();
            let p2: &[f32; PANEL] = p2.try_into().unwrap();
            let p3: &[f32; PANEL] = p3.try_into().unwrap();
            for j in 0..PANEL {
                acc0[j] += aik * p0[j];
                acc1[j] += aik * p1[j];
                acc2[j] += aik * p2[j];
                acc3[j] += aik * p3[j];
            }
        }
        for (i, accr) in [&acc0, &acc1, &acc2, &acc3].into_iter().enumerate() {
            let c0 = (p + i) * PANEL;
            let width = PANEL.min(n - c0);
            c_row[c0..c0 + width].copy_from_slice(&accr[..width]);
        }
        p += 4;
    }
    for p in p..panels {
        let base = p * plen;
        let panel = &b_data[base..base + plen];
        let mut acc = [0.0f32; PANEL];
        for (&aik, prow) in a_row.iter().zip(panel.chunks_exact(PANEL)) {
            let prow: &[f32; PANEL] = prow.try_into().unwrap();
            for (av, pv) in acc.iter_mut().zip(prow.iter()) {
                *av += aik * pv;
            }
        }
        let c0 = p * PANEL;
        let width = PANEL.min(n - c0);
        c_row[c0..c0 + width].copy_from_slice(&acc[..width]);
    }
}

/// [`gemm_packed_band`] with a fused bias/ReLU epilogue. The scalar
/// flavor runs the plain band kernel and applies the epilogue over the
/// still-cache-resident band (`apply_epilogue`) — bitwise identical to
/// the in-register AVX2 variant.
pub fn gemm_packed_band_fused(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
    epi: Epilogue<'_>,
) {
    epi.check(row0 + c_band.len() / n.max(1), n);
    gemm_packed_band(a_data, k, n, b_data, c_band, row0);
    apply_epilogue(c_band, n, row0, epi);
}

/// [`gemv_packed`] with a fused bias/ReLU epilogue. A per-row bias
/// indexes `bias[0]` (the matvec output is row 0 of a 1×n result).
pub fn gemv_packed_fused(
    a_row: &[f32],
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
    epi: Epilogue<'_>,
) {
    epi.check(1, n);
    gemv_packed(a_row, n, b_data, c_row);
    apply_epilogue(&mut c_row[..n], n, 0, epi);
}

/// One CSR row of sparse×dense. See [`super::spmm_row_with`].
pub fn spmm_row(values: &[f32], col_idx: &[u32], b_data: &[f32], n: usize, c_row: &mut [f32]) {
    c_row.fill(0.0);
    for (&v, &c) in values.iter().zip(col_idx.iter()) {
        let b_row = &b_data[c as usize * n..(c as usize + 1) * n];
        for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
            *cv += v * bv;
        }
    }
}

/// [`spmm_row`] with a fused scalar-bias/ReLU epilogue (the bias of
/// one CSR output row is a single value — conv output channel or FC
/// output feature; `None` fuses ReLU alone). Bias adds first, then the
/// `forward_into` ReLU.
pub fn spmm_row_fused(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
    bias: Option<f32>,
    relu: bool,
) {
    spmm_row(values, col_idx, b_data, n, c_row);
    for v in c_row.iter_mut().take(n) {
        let mut y = *v;
        if let Some(b) = bias {
            y += b;
        }
        if relu {
            y = if y > 0.0 { y } else { 0.0 };
        }
        *v = y;
    }
}

/// Sparse dot product — one CSR row against a dense vector:
/// `Σ_i values[i] * x[col_idx[i]]`, accumulated in ascending-`i` order.
///
/// This is the matvec (`n = 1`) special case of [`spmm_row`] without
/// the output-slice plumbing; the summation order is identical, so the
/// result is bit-equal to routing through the SpMM kernel.
pub fn spmv(values: &[f32], col_idx: &[u32], x: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&v, &c) in values.iter().zip(col_idx.iter()) {
        acc += v * x[c as usize];
    }
    acc
}

/// [`spmv`] with a fused bias/ReLU epilogue (`None` skips the bias add
/// entirely — a literal `+0.0` is not bitwise neutral).
pub fn spmv_fused(
    values: &[f32],
    col_idx: &[u32],
    x: &[f32],
    bias: Option<f32>,
    relu: bool,
) -> f32 {
    let mut y = spmv(values, col_idx, x);
    if let Some(b) = bias {
        y += b;
    }
    if relu {
        y = if y > 0.0 { y } else { 0.0 };
    }
    y
}

/// `c_row[j] += a * b_row[j]`. See [`super::axpy_with`].
pub fn axpy(c_row: &mut [f32], a: f32, b_row: &[f32]) {
    for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
        *cv += a * bv;
    }
}

/// In-place ReLU. See [`super::relu_inplace_with`].
pub fn relu_inplace(data: &mut [f32]) {
    for v in data {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Out-of-place ReLU. See [`super::relu_into_with`].
pub fn relu_into(src: &[f32], dst: &mut [f32]) {
    for (o, &v) in dst.iter_mut().zip(src.iter()) {
        *o = if v > 0.0 { v } else { 0.0 };
    }
}

/// Broadcast-add a scalar bias. See [`super::bias_broadcast_with`].
pub fn bias_broadcast(data: &mut [f32], b: f32) {
    for v in data {
        *v += b;
    }
}

/// Pairwise `dst[i] += src[i]`. See [`super::vec_add_with`].
pub fn vec_add(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// One max-pool output cell over an `h×w` plane — the original
/// `max_pool2d_into` window walk (`ky` ascending, `kx` ascending,
/// strict `>` comparison, all-padding window yields `0.0`).
#[inline(always)]
pub(crate) fn max_pool_cell(
    plane: &[f32],
    h: usize,
    w: usize,
    params: &Pool2dParams,
    oy: usize,
    ox: usize,
) -> f32 {
    let mut best = f32::NEG_INFINITY;
    let mut hit = false;
    for ky in 0..params.k {
        let iy = (oy * params.stride + ky) as isize - params.pad as isize;
        if iy < 0 || iy as usize >= h {
            continue;
        }
        for kx in 0..params.k {
            let ix = (ox * params.stride + kx) as isize - params.pad as isize;
            if ix < 0 || ix as usize >= w {
                continue;
            }
            let v = plane[iy as usize * w + ix as usize];
            if v > best {
                best = v;
                hit = true;
            }
        }
    }
    if hit {
        best
    } else {
        0.0
    }
}

/// One output row of 2-D max pooling. See [`super::max_pool_row_with`].
pub fn max_pool_row(
    plane: &[f32],
    h: usize,
    w: usize,
    params: &Pool2dParams,
    oy: usize,
    out_row: &mut [f32],
) {
    for (ox, o) in out_row.iter_mut().enumerate() {
        *o = max_pool_cell(plane, h, w, params, oy, ox);
    }
}
